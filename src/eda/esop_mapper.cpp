#include "eda/esop_mapper.hpp"

#include <bit>
#include <stdexcept>

namespace cim::eda {

EsopProgram compile_esop(const Esop& esop, EsopLayout layout) {
  EsopProgram prog;
  prog.esop = esop;
  prog.layout = layout;
  const std::size_t vars = static_cast<std::size_t>(esop.vars());
  const std::size_t cubes = esop.cube_count();
  // Columns: one per variable plus one for the accumulator cell.
  prog.cols = std::max<std::size_t>(vars + 1, 2);

  if (layout == EsopLayout::kRowPerCube) {
    prog.rows = std::max<std::size_t>(cubes, 1) + 1;  // + accumulator row
    // Delay: one sense per cube, one (possible) toggle each, plus the
    // accumulator initialization.
    prog.delay = 1 + 2 * cubes;
  } else {
    prog.rows = 2;  // one mask row + one accumulator row
    // Each cube: rewrite the mask (vars writes, worst case), sense, toggle.
    prog.delay = 1 + cubes * (vars + 2);
  }
  prog.device_count = prog.rows * prog.cols;
  return prog;
}

namespace {

/// Writes cube `mask` into row `row` (cells 0..vars-1).
void write_mask(crossbar::Crossbar& xbar, std::size_t row, std::uint32_t mask,
                std::size_t vars) {
  for (std::size_t j = 0; j < vars; ++j)
    xbar.write_bit(row, j, (mask >> j) & 1u);
}

/// Cube-satisfaction check: senses the mask row with the *complement* of
/// the assignment on the bitlines. Current flows iff some masked variable
/// is 0, i.e. the cube is violated.
bool cube_satisfied(crossbar::Crossbar& xbar, std::size_t row,
                    std::uint64_t assignment, std::size_t vars) {
  std::vector<bool> active(xbar.cols(), false);
  for (std::size_t j = 0; j < vars; ++j)
    active[j] = ((assignment >> j) & 1ULL) == 0;
  const double i = xbar.wordline_sense(row, active);
  // Any conducting LRS cell carries ~v*g_on; threshold at half of one unit.
  const double unit = xbar.tech().v_read * xbar.tech().g_on_us();
  return i < 0.5 * unit;
}

}  // namespace

bool execute_esop(crossbar::Crossbar& xbar, const EsopProgram& prog,
                  std::uint64_t assignment) {
  const std::size_t vars = static_cast<std::size_t>(prog.esop.vars());
  if (xbar.rows() < prog.rows || xbar.cols() < prog.cols)
    throw std::invalid_argument("execute_esop: crossbar too small");

  const std::size_t acc_row = prog.rows - 1;
  const std::size_t acc_col = vars;  // accumulator cell (acc_row, acc_col)
  xbar.write_bit(acc_row, acc_col, false);

  const auto& cubes = prog.esop.cubes();
  for (std::size_t k = 0; k < cubes.size(); ++k) {
    std::size_t row;
    if (prog.layout == EsopLayout::kRowPerCube) {
      row = k;
      write_mask(xbar, row, cubes[k].mask, vars);
    } else {
      row = 0;
      write_mask(xbar, row, cubes[k].mask, vars);
    }
    if (cube_satisfied(xbar, row, assignment, vars)) {
      // XOR-accumulate: controller-mediated conditional toggle.
      const bool acc = xbar.read_bit(acc_row, acc_col);
      xbar.write_bit(acc_row, acc_col, !acc);
    }
  }
  return xbar.read_bit(acc_row, acc_col);
}

bool verify_esop(const EsopProgram& prog) {
  // HfOx: the large on/off ratio keeps the HRS leakage of unmasked cells
  // far below one LRS unit, which the sense threshold relies on.
  crossbar::CrossbarConfig cfg;
  cfg.rows = prog.rows;
  cfg.cols = prog.cols;
  cfg.tech = device::Technology::kReRamHfOx;
  cfg.levels = 2;
  cfg.model_ir_drop = false;
  cfg.verified_writes = true;
  cfg.seed = 11;

  const auto tt = prog.esop.to_truth_table();
  const std::uint64_t n = 1ULL << prog.esop.vars();
  for (std::uint64_t a = 0; a < n; ++a) {
    crossbar::Crossbar xbar(cfg);
    if (execute_esop(xbar, prog, a) != tt.get(a)) return false;
  }
  return true;
}

}  // namespace cim::eda
