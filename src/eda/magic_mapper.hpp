/// \file magic_mapper.hpp
/// \brief Technology mapping onto MAGIC (Memristor-Aided loGIC) crossbars
///        (Section IV.A/IV.C, refs [70]-[73]).
///
/// MAGIC executes multi-input NOR (and NOT) in place: input devices hold
/// their states, the pre-SET output device is conditionally RESET. The
/// single-row mapper of Ben-Hur et al. [70] places the whole computation in
/// one row so it can run SIMD-style across many rows; delay equals the
/// number of SET+NOR steps, area the number of row cells. The
/// area-constrained variant (CONTRA-flavoured [73]) recycles cells whose
/// fanouts are exhausted.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "crossbar/crossbar.hpp"
#include "eda/netlist.hpp"

namespace cim::eda {

/// One MAGIC-machine instruction on a row.
struct MagicInstr {
  enum class Kind { kSet, kNor };
  Kind kind = Kind::kSet;
  std::size_t out_cell = 0;
  std::vector<std::size_t> in_cells;  ///< kNor only
  /// IR introspection hook for the static verifier: the source-netlist node
  /// this instruction realizes (the SET preset and the NOR both carry the
  /// gate's id). SIZE_MAX when no source node is associated.
  std::size_t node = static_cast<std::size_t>(-1);
};

/// A compiled single-row MAGIC program.
struct MagicProgram {
  std::size_t num_inputs = 0;
  std::size_t num_cells = 0;  ///< row width used (area metric)
  std::vector<MagicInstr> instrs;
  std::vector<std::size_t> output_cells;
  std::vector<bool> output_is_const;  ///< constant outputs resolved statically
  std::vector<bool> const_values;

  std::size_t delay() const { return instrs.size(); }
  std::size_t nor_count() const;
};

/// Compiles a NOR-only netlist (see Netlist::to_nor_only). With
/// `reuse_cells` the mapper recycles dead cells (area-constrained mapping).
MagicProgram compile_magic(const Netlist& nor_netlist, bool reuse_cells = false);

/// Executes on row `row` of a crossbar for one assignment.
std::vector<bool> execute_magic(crossbar::Crossbar& xbar,
                                const MagicProgram& prog,
                                std::uint64_t assignment, std::size_t row = 0);

/// Exhaustive verification against the netlist's truth tables.
bool verify_magic(const MagicProgram& prog, const Netlist& nor_netlist);

}  // namespace cim::eda
