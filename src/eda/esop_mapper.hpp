/// \file esop_mapper.hpp
/// \brief ESOP-based crossbar technology mapping (Section IV.C,
///        Bhattacharjee et al., TC'20 [69]).
///
/// "A lower bound on the size of crossbar array (3 wordlines and 2
/// bitlines) required to map a Boolean function in Exclusive
/// Sum-of-Product representation was introduced [69]. Using this bound as
/// a building block, an LUT-based, area-constrained mapping approach was
/// proposed."
///
/// Realization: the function's PPRM cubes are stored as mask rows of a
/// crossbar (cell (k, j) = 1 iff cube k contains variable x_j). A cube is
/// satisfied iff none of its masked variables is 0, checked in one
/// wordline-sense step with the *complemented* input on the bitlines
/// (current flows only through mask cells whose variable is 0). The
/// controller XOR-accumulates satisfied cubes into an accumulator cell via
/// conditional RESET/SET toggles. Two layouts are provided:
///   - kRowPerCube: one row per cube — one sense per cube, maximal area;
///   - kTimeMultiplexed: a single mask row reprogrammed per cube — the
///     3x2-bound-style minimal-area layout, paying reprogramming writes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "crossbar/crossbar.hpp"
#include "eda/esop.hpp"

namespace cim::eda {

/// Crossbar layout strategy for the ESOP mapping.
enum class EsopLayout {
  kRowPerCube,       ///< area = cubes+1 rows, delay = cubes senses
  kTimeMultiplexed,  ///< area = 2 rows, delay includes mask reprogramming
};

/// A compiled ESOP crossbar program.
struct EsopProgram {
  Esop esop;
  EsopLayout layout = EsopLayout::kRowPerCube;
  std::size_t rows = 0;         ///< crossbar rows used
  std::size_t cols = 0;         ///< crossbar columns used
  std::size_t device_count = 0; ///< rows * cols (area metric)
  /// Steps: cube senses + accumulator toggles (worst case) + mask writes.
  std::size_t delay = 0;
};

/// Compiles an ESOP into a crossbar program.
EsopProgram compile_esop(const Esop& esop,
                         EsopLayout layout = EsopLayout::kRowPerCube);

/// Executes the program on a fresh crossbar for one input assignment.
bool execute_esop(crossbar::Crossbar& xbar, const EsopProgram& prog,
                  std::uint64_t assignment);

/// Exhaustive verification against the ESOP's truth table.
bool verify_esop(const EsopProgram& prog);

}  // namespace cim::eda
