#include "eda/esop.hpp"

#include <bit>

namespace cim::eda {

Esop Esop::from_truth_table(const TruthTable& tt) {
  Esop e;
  e.vars_ = tt.vars();
  const std::uint64_t n = tt.size();

  // Reed-Muller (binary Moebius) transform: butterfly over each variable.
  std::vector<std::uint8_t> coeff(n);
  for (std::uint64_t m = 0; m < n; ++m) coeff[m] = tt.get(m) ? 1 : 0;
  for (std::uint64_t stride = 1; stride < n; stride <<= 1)
    for (std::uint64_t block = 0; block < n; block += stride << 1)
      for (std::uint64_t i = block; i < block + stride; ++i)
        coeff[i + stride] = coeff[i + stride] ^ coeff[i];

  for (std::uint64_t m = 0; m < n; ++m)
    if (coeff[m]) e.cubes_.push_back({static_cast<std::uint32_t>(m)});
  return e;
}

std::size_t Esop::literal_count() const {
  std::size_t n = 0;
  for (const auto& c : cubes_)
    n += static_cast<std::size_t>(std::popcount(c.mask));
  return n;
}

bool Esop::eval(std::uint64_t assignment) const {
  bool acc = false;
  for (const auto& c : cubes_) acc ^= c.eval(assignment);
  return acc;
}

TruthTable Esop::to_truth_table() const {
  TruthTable tt(vars_);
  for (std::uint64_t m = 0; m < tt.size(); ++m)
    if (eval(m)) tt.set(m, true);
  return tt;
}

std::string Esop::to_string() const {
  if (cubes_.empty()) return "0";
  std::string s;
  for (std::size_t k = 0; k < cubes_.size(); ++k) {
    if (k) s += " ^ ";
    const auto mask = cubes_[k].mask;
    if (mask == 0) {
      s += "1";
      continue;
    }
    bool first = true;
    for (int v = 0; v < vars_; ++v) {
      if ((mask >> v) & 1u) {
        if (!first) s += ".";
        s += "x" + std::to_string(v);
        first = false;
      }
    }
  }
  return s;
}

}  // namespace cim::eda
