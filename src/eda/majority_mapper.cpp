#include "eda/majority_mapper.hpp"

#include <algorithm>
#include <array>
#include <map>
#include <stdexcept>

namespace cim::eda {

MajSchedule schedule_revamp(const Mig& mig) {
  MajSchedule sched;
  const auto levels = mig.levels();

  // Bucket majority nodes by level.
  std::map<std::size_t, std::vector<std::uint32_t>> by_level;
  for (std::uint32_t i = 1; i < mig.num_nodes(); ++i)
    if (mig.is_maj(i)) by_level[levels[i]].push_back(i);

  sched.num_levels = by_level.empty() ? 0 : by_level.rbegin()->first;
  sched.rows = by_level.size();

  std::map<std::uint32_t, std::pair<std::size_t, std::size_t>> placement;

  std::size_t row_index = 0;
  for (const auto& [level, nodes] : by_level) {
    sched.max_row_width = std::max(sched.max_row_width, nodes.size());
    sched.device_count += nodes.size();

    // READ: every distinct producer row below this level must be latched.
    // Conservatively: one read per earlier level row that feeds this level
    // (inputs ride the instruction register for free).
    std::vector<bool> needs_read(row_index, false);
    for (const auto n : nodes)
      for (const auto f : mig.node(n).fanin) {
        const auto fn = Mig::node_of(f);
        if (mig.is_maj(fn)) needs_read[placement.at(fn).first] = true;
      }
    for (const bool b : needs_read)
      if (b) ++sched.read_steps;

    // INIT: reset row + write preloads = 2 steps.
    sched.init_steps += 2;

    // Choose per node which fanin is preloaded and greedily group the
    // remaining pair by a shared literal for the apply steps.
    struct Pending {
      std::uint32_t node;
      Mig::Lit a, b, pre;
    };
    std::vector<Pending> pending;
    std::size_t col = 0;
    for (const auto n : nodes) {
      const auto& nd = mig.node(n);
      // Preload the fanin least shareable: heuristic — preload the fanin
      // that is a constant or complemented (drivers complement for free),
      // keeping plain literals available for grouping.
      std::array<Mig::Lit, 3> f = {nd.fanin[0], nd.fanin[1], nd.fanin[2]};
      // Count how often each literal occurs across this level (shareability).
      placement[n] = {row_index, col};
      pending.push_back({n, f[1], f[2], f[0]});
      ++col;
    }

    // Frequency of literals among remaining (a, b) pairs.
    auto group_pass = [&]() {
      std::size_t groups = 0;
      std::vector<bool> done(pending.size(), false);
      std::size_t remaining = pending.size();
      while (remaining > 0) {
        // Pick the literal covering the most unfinished nodes.
        std::map<Mig::Lit, std::size_t> freq;
        for (std::size_t k = 0; k < pending.size(); ++k) {
          if (done[k]) continue;
          ++freq[pending[k].a];
          ++freq[pending[k].b];
        }
        Mig::Lit best = freq.begin()->first;
        std::size_t best_n = 0;
        for (const auto& [lit, n] : freq)
          if (n > best_n) {
            best = lit;
            best_n = n;
          }
        // All nodes having `best` as one operand join this group.
        for (std::size_t k = 0; k < pending.size(); ++k) {
          if (done[k]) continue;
          if (pending[k].a == best || pending[k].b == best) {
            auto& plan_entry = pending[k];
            const Mig::Lit shared = best;
            const Mig::Lit per_col =
                (plan_entry.a == best) ? plan_entry.b : plan_entry.a;
            MajNodePlan p;
            p.node = plan_entry.node;
            p.level = level;
            p.row = placement.at(plan_entry.node).first;
            p.col = placement.at(plan_entry.node).second;
            p.preload = plan_entry.pre;
            p.shared = shared;
            p.per_column = per_col;
            sched.plan.push_back(p);
            done[k] = true;
            --remaining;
          }
        }
        ++groups;
      }
      return groups;
    };
    sched.maj_steps += group_pass();
    ++row_index;
  }

  for (const auto o : mig.outputs()) {
    const auto n = Mig::node_of(o);
    if (mig.is_maj(n)) {
      sched.output_cells.push_back(placement.at(n));
      sched.output_complemented.push_back(Mig::is_complemented(o));
    } else {
      // Constant or input output: encode as row SIZE_MAX with col = literal.
      sched.output_cells.push_back({SIZE_MAX, o});
      sched.output_complemented.push_back(false);
    }
  }
  return sched;
}

std::vector<bool> execute_revamp(const Mig& mig, const MajSchedule& sched,
                                 std::uint64_t assignment) {
  // Literal evaluation environment built up level by level, following the
  // hardware order: a node's value becomes readable only after its level's
  // apply step.
  std::map<std::uint32_t, bool> node_value;
  std::map<std::uint32_t, int> input_index;
  {
    int k = 0;
    for (const auto in : mig.input_nodes()) input_index[in] = k++;
  }

  auto lit_value = [&](Mig::Lit l) -> bool {
    const auto n = Mig::node_of(l);
    bool v;
    if (n == 0) {
      v = false;
    } else if (auto it = input_index.find(n); it != input_index.end()) {
      v = (assignment >> it->second) & 1ULL;
    } else {
      auto it2 = node_value.find(n);
      if (it2 == node_value.end())
        throw std::logic_error("execute_revamp: value used before computed");
      v = it2->second;
    }
    return Mig::is_complemented(l) ? !v : v;
  };

  // Plan entries are emitted level by level in schedule order.
  for (const auto& p : sched.plan) {
    // INIT: cell = preload value (row zeroed, V_wl=1, bl = !preload).
    bool s = lit_value(p.preload);
    // APPLY: S <- MAJ(S, shared, per_column).
    const bool a = lit_value(p.shared);
    const bool b = lit_value(p.per_column);
    const int votes =
        static_cast<int>(s) + static_cast<int>(a) + static_cast<int>(b);
    node_value[p.node] = votes >= 2;
  }

  // Outputs: every MIG output literal is now resolvable — majority nodes
  // from node_value (their cells), inputs/constants from the register file.
  std::vector<bool> out;
  out.reserve(mig.outputs().size());
  for (const auto o : mig.outputs()) out.push_back(lit_value(o));
  return out;
}

bool verify_revamp(const Mig& mig, const MajSchedule& sched) {
  const auto tts = mig.truth_tables();
  const std::uint64_t n = 1ULL << mig.num_inputs();
  for (std::uint64_t a = 0; a < n; ++a) {
    const auto out = execute_revamp(mig, sched, a);
    for (std::size_t o = 0; o < tts.size(); ++o)
      if (out[o] != tts[o].get(a)) return false;
  }
  return true;
}

std::vector<bool> execute_revamp_on_crossbar(crossbar::Crossbar& xbar,
                                             const Mig& mig,
                                             const MajSchedule& sched,
                                             std::uint64_t assignment) {
  if (xbar.rows() < std::max<std::size_t>(1, sched.rows) ||
      xbar.cols() < std::max<std::size_t>(1, sched.max_row_width))
    throw std::invalid_argument("execute_revamp_on_crossbar: array too small");

  std::map<std::uint32_t, std::pair<std::size_t, std::size_t>> placed;
  std::map<std::uint32_t, int> input_index;
  {
    int k = 0;
    for (const auto in : mig.input_nodes()) input_index[in] = k++;
  }

  // Resolves a literal to a logic value: constants and primary inputs from
  // the instruction register, computed nodes by reading their cells.
  auto lit_value = [&](Mig::Lit l) -> bool {
    const auto n = Mig::node_of(l);
    bool v;
    if (n == 0) {
      v = false;
    } else if (auto it = input_index.find(n); it != input_index.end()) {
      v = (assignment >> it->second) & 1ULL;
    } else {
      const auto [r, c] = placed.at(n);
      v = xbar.read_bit(r, c);
    }
    return Mig::is_complemented(l) ? !v : v;
  };

  // Plan entries are emitted level by level: every operand of a node lives
  // strictly below its level, so reads always hit settled cells.
  for (const auto& p : sched.plan) {
    // RESET the cell: MAJ(S, 0, !1) = 0.
    xbar.majority_write(p.row, p.col, false, true);
    // INIT with the preload value v: MAJ(0, v, v) = v.
    const bool v = lit_value(p.preload);
    xbar.majority_write(p.row, p.col, v, !v);
    // APPLY the remaining operands: S <- MAJ(v, a, b).
    const bool a = lit_value(p.shared);
    const bool b = lit_value(p.per_column);
    xbar.majority_write(p.row, p.col, a, !b);
    placed[p.node] = {p.row, p.col};
  }

  std::vector<bool> out;
  out.reserve(mig.outputs().size());
  for (const auto o : mig.outputs()) out.push_back(lit_value(o));
  return out;
}

bool verify_revamp_on_crossbar(const Mig& mig, const MajSchedule& sched) {
  crossbar::CrossbarConfig cfg;
  cfg.rows = std::max<std::size_t>(1, sched.rows);
  cfg.cols = std::max<std::size_t>(1, sched.max_row_width);
  cfg.tech = device::Technology::kSttMram;
  cfg.levels = 2;
  cfg.model_ir_drop = false;
  cfg.seed = 13;

  const auto tts = mig.truth_tables();
  const std::uint64_t n = 1ULL << mig.num_inputs();
  for (std::uint64_t a = 0; a < n; ++a) {
    crossbar::Crossbar xbar(cfg);
    const auto out = execute_revamp_on_crossbar(xbar, mig, sched, a);
    for (std::size_t o = 0; o < tts.size(); ++o)
      if (out[o] != tts[o].get(a)) return false;
  }
  return true;
}

}  // namespace cim::eda
