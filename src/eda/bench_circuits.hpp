/// \file bench_circuits.hpp
/// \brief Benchmark circuit generators for the EDA flow evaluation
///        (Section IV / Fig. 8 bench): arithmetic, control and random logic
///        in the spirit of the small ISCAS/EPFL suites the cited mapping
///        papers evaluate on.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "eda/netlist.hpp"
#include "util/rng.hpp"

namespace cim::eda {

/// A named benchmark circuit.
struct BenchmarkCircuit {
  std::string name;
  Netlist netlist;
};

/// n-bit ripple-carry adder: inputs a[0..n), b[0..n), cin; outputs
/// sum[0..n), cout.
Netlist ripple_carry_adder(int bits);

/// n x n array multiplier (small n): inputs a[0..n), b[0..n); 2n outputs.
Netlist array_multiplier(int bits);

/// n-input parity (XOR chain).
Netlist parity(int inputs);

/// 2^sel-to-1 multiplexer: inputs d[0..2^sel), s[0..sel); one output.
Netlist mux_tree(int sel_bits);

/// n-bit unsigned comparator, output = (A > B).
Netlist comparator_gt(int bits);

/// n-input majority (n odd) built from MAJ gates via a sorting-free
/// recursive construction.
Netlist majority_n(int inputs);

/// Random single-output function of `vars` variables (seeded netlist from a
/// random truth table's minterm cover; used as unstructured logic).
Netlist random_function(int vars, util::Rng& rng);

/// n-to-2^n one-hot address decoder.
Netlist address_decoder(int bits);

/// n-bit Gray-code to binary converter (XOR prefix chain).
Netlist gray_to_binary(int bits);

/// One-bit ALU slice: inputs a, b, cin, op[1:0]; output + cout.
/// op = 00: AND, 01: OR, 10: XOR, 11: full add (cout valid for add).
Netlist alu_slice();

/// The standard suite used by the Fig. 8 bench and the flow tests.
std::vector<BenchmarkCircuit> standard_suite(std::uint64_t seed = 7);

}  // namespace cim::eda
