/// \file aig.hpp
/// \brief And-Inverter Graph — the workhorse intermediate representation of
///        technology-independent synthesis (Section IV.B, [54]).
///
/// Nodes are 2-input ANDs; edges carry complement bits (literals). Creation
/// applies constant/trivial simplification and structural hashing, so the
/// graph is always reduced and shared. Functions enter either gate-by-gate
/// (land/lor/lxor) or via Shannon decomposition from a truth table.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "eda/netlist.hpp"
#include "eda/truth_table.hpp"

namespace cim::eda {

/// An And-Inverter Graph. Node 0 is constant 0; literal = 2*node + compl.
class Aig {
 public:
  using Lit = std::uint32_t;

  Aig();

  static Lit make_lit(std::uint32_t node, bool complemented) {
    return (node << 1) | static_cast<Lit>(complemented);
  }
  static std::uint32_t node_of(Lit l) { return l >> 1; }
  static bool is_complemented(Lit l) { return l & 1u; }
  static Lit lnot(Lit l) { return l ^ 1u; }

  Lit const0() const { return 0; }
  Lit const1() const { return 1; }

  /// Adds a primary input; returns its (positive) literal.
  Lit add_input();

  /// AND with simplification + structural hashing.
  Lit land(Lit a, Lit b);
  Lit lor(Lit a, Lit b) { return lnot(land(lnot(a), lnot(b))); }
  Lit lxor(Lit a, Lit b);
  Lit lmux(Lit sel, Lit t, Lit e);  ///< sel ? t : e
  Lit lmaj(Lit a, Lit b, Lit c);

  void mark_output(Lit l) { outputs_.push_back(l); }
  const std::vector<Lit>& outputs() const { return outputs_; }

  std::size_t num_inputs() const { return inputs_.size(); }
  /// Number of AND nodes (the classic AIG size metric).
  std::size_t num_ands() const;
  std::size_t num_nodes() const { return nodes_.size(); }
  /// Depth in AND levels over the most critical output.
  std::size_t depth() const;

  /// Truth tables of all outputs (inputs <= 16).
  std::vector<TruthTable> truth_tables() const;

  /// Builds a single-output AIG via Shannon decomposition with cofactor
  /// memoization.
  static Aig from_truth_table(const TruthTable& tt);

  /// Structurally converts a gate-level netlist (all gate types supported);
  /// preserves input and output order.
  static Aig from_netlist(const Netlist& nl);

  /// Converts to an AND/NOT netlist (complement edges become NOT gates).
  Netlist to_netlist() const;

  /// Node fanins (valid for AND nodes; inputs/const have none).
  struct Node {
    Lit fanin0 = 0;
    Lit fanin1 = 0;
    bool is_input = false;
  };
  const Node& node(std::uint32_t id) const { return nodes_.at(id); }
  bool is_and(std::uint32_t id) const {
    return id != 0 && !nodes_[id].is_input;
  }
  const std::vector<std::uint32_t>& input_nodes() const { return inputs_; }

 private:
  std::vector<Node> nodes_;
  std::vector<std::uint32_t> inputs_;
  std::vector<Lit> outputs_;
  std::unordered_map<std::uint64_t, std::uint32_t> strash_;
};

}  // namespace cim::eda
