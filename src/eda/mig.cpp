#include "eda/mig.hpp"

#include <algorithm>
#include <array>
#include <map>
#include <stdexcept>

namespace cim::eda {

Mig::Mig() {
  nodes_.push_back({});  // node 0 = constant 0
}

Mig::Lit Mig::add_input() {
  Node n;
  n.is_input = true;
  nodes_.push_back(n);
  const auto id = static_cast<std::uint32_t>(nodes_.size() - 1);
  inputs_.push_back(id);
  return make_lit(id, false);
}

Mig::Lit Mig::lmaj(Lit a, Lit b, Lit c) {
  std::array<Lit, 3> f = {a, b, c};
  std::sort(f.begin(), f.end());

  // Axiom M(x, x, y) = x.
  if (f[0] == f[1]) return f[0];
  if (f[1] == f[2]) return f[1];
  // Axiom M(x, !x, y) = y.
  if (f[0] == lnot(f[1])) return f[2];
  if (f[1] == lnot(f[2])) return f[0];
  if (f[0] == lnot(f[2])) return f[1];

  // Self-duality canonicalization: if two or more fanins are complemented,
  // flip all three and complement the output.
  const int n_compl = static_cast<int>(is_complemented(f[0])) +
                      static_cast<int>(is_complemented(f[1])) +
                      static_cast<int>(is_complemented(f[2]));
  bool out_compl = false;
  if (n_compl >= 2) {
    for (auto& l : f) l = lnot(l);
    std::sort(f.begin(), f.end());
    out_compl = true;
  }

  const std::uint64_t key = (static_cast<std::uint64_t>(f[0]) << 42) |
                            (static_cast<std::uint64_t>(f[1]) << 21) | f[2];
  std::uint32_t id;
  if (auto it = strash_.find(key); it != strash_.end()) {
    id = it->second;
  } else {
    Node n;
    n.fanin[0] = f[0];
    n.fanin[1] = f[1];
    n.fanin[2] = f[2];
    nodes_.push_back(n);
    id = static_cast<std::uint32_t>(nodes_.size() - 1);
    strash_.emplace(key, id);
  }
  return make_lit(id, out_compl);
}

Mig::Lit Mig::lxor(Lit a, Lit b) {
  // XOR(a,b) = M(!M(a,b,0), M(a,b,1), 0) = (a|b) & !(a&b)
  return land(lnot(land(a, b)), lor(a, b));
}

std::size_t Mig::num_majs() const {
  std::size_t n = 0;
  for (std::size_t i = 1; i < nodes_.size(); ++i)
    if (!nodes_[i].is_input) ++n;
  return n;
}

std::vector<std::size_t> Mig::levels() const {
  std::vector<std::size_t> d(nodes_.size(), 0);
  for (std::size_t i = 1; i < nodes_.size(); ++i) {
    if (nodes_[i].is_input) continue;
    std::size_t m = 0;
    for (const auto l : nodes_[i].fanin)
      m = std::max(m, d[node_of(l)]);
    d[i] = m + 1;
  }
  return d;
}

std::size_t Mig::depth() const {
  const auto d = levels();
  std::size_t best = 0;
  for (const auto o : outputs_) best = std::max(best, d[node_of(o)]);
  return best;
}

std::vector<TruthTable> Mig::truth_tables() const {
  if (num_inputs() > 16) throw std::invalid_argument("Mig: > 16 inputs");
  const int vars = static_cast<int>(num_inputs());
  std::vector<TruthTable> node_tt;
  node_tt.reserve(nodes_.size());
  node_tt.push_back(TruthTable::constant(false, vars));

  std::map<std::uint32_t, int> input_index;
  for (std::size_t k = 0; k < inputs_.size(); ++k)
    input_index[inputs_[k]] = static_cast<int>(k);

  auto value_of = [&](Lit l) {
    const auto& t = node_tt[node_of(l)];
    return is_complemented(l) ? ~t : t;
  };

  for (std::size_t i = 1; i < nodes_.size(); ++i) {
    if (nodes_[i].is_input) {
      node_tt.push_back(
          TruthTable::var(input_index.at(static_cast<std::uint32_t>(i)), vars));
      continue;
    }
    node_tt.push_back(TruthTable::maj(value_of(nodes_[i].fanin[0]),
                                      value_of(nodes_[i].fanin[1]),
                                      value_of(nodes_[i].fanin[2])));
  }

  std::vector<TruthTable> out;
  out.reserve(outputs_.size());
  for (const auto o : outputs_) out.push_back(value_of(o));
  return out;
}

Mig Mig::from_aig(const Aig& aig) {
  Mig mig;
  std::vector<Lit> map(aig.num_nodes(), 0);

  for (std::uint32_t i = 1; i < aig.num_nodes(); ++i) {
    const auto& n = aig.node(i);
    if (n.is_input) {
      map[i] = mig.add_input();
      continue;
    }
    auto xlate = [&](Aig::Lit l) {
      const auto base = map[Aig::node_of(l)];
      return Aig::is_complemented(l) ? lnot(base) : base;
    };
    map[i] = mig.land(xlate(n.fanin0), xlate(n.fanin1));
  }
  for (const auto o : aig.outputs()) {
    const auto base = map[Aig::node_of(o)];
    mig.mark_output(Aig::is_complemented(o) ? lnot(base) : base);
  }
  return mig;
}

}  // namespace cim::eda
