#include "eda/revamp_isa.hpp"

#include <map>
#include <sstream>
#include <stdexcept>

#include "obs/obs.hpp"

namespace cim::eda {

std::string RevampOperand::to_string() const {
  std::ostringstream os;
  switch (src) {
    case Src::kConst0: os << "0"; break;
    case Src::kConst1: os << "1"; break;
    case Src::kInput: os << "PI[" << input_index << "]"; break;
    case Src::kDmr: os << "DMR[r" << dmr_row << ",c" << dmr_col << "]"; break;
  }
  if (complemented) os << "'";
  return os.str();
}

std::string RevampInstruction::to_string() const {
  std::ostringstream os;
  if (kind == Kind::kRead) {
    os << "READ  r" << wordline;
    return os.str();
  }
  os << "APPLY r" << wordline << ", wl=" << wl.to_string() << ", bl:";
  for (std::size_t c = 0; c < columns.size(); ++c)
    if (columns[c]) os << " c" << c << "=" << columns[c]->to_string();
  return os.str();
}

std::size_t RevampProgram::read_count() const {
  std::size_t n = 0;
  for (const auto& ins : instrs)
    if (ins.kind == RevampInstruction::Kind::kRead) ++n;
  return n;
}

std::size_t RevampProgram::apply_count() const {
  return instrs.size() - read_count();
}

std::string RevampProgram::disassemble() const {
  std::ostringstream os;
  os << "; ReVAMP program: " << wordlines << " wordlines x " << bitlines
     << " bitlines, " << num_inputs << " primary inputs\n";
  for (std::size_t k = 0; k < instrs.size(); ++k)
    os << k << ":\t" << instrs[k].to_string() << "\n";
  os << "; outputs:";
  for (const auto& o : outputs) os << " " << o.to_string();
  os << "\n";
  return os.str();
}

namespace {

/// Maps an MIG literal to a ReVAMP operand, given the node placements.
RevampOperand operand_of(
    const Mig& /*mig*/, Mig::Lit lit,
    const std::map<std::uint32_t, std::pair<std::size_t, std::size_t>>& placed,
    const std::map<std::uint32_t, std::size_t>& input_index) {
  RevampOperand op;
  op.complemented = Mig::is_complemented(lit);
  const auto node = Mig::node_of(lit);
  if (node == 0) {
    op.src = op.complemented ? RevampOperand::Src::kConst1
                             : RevampOperand::Src::kConst0;
    op.complemented = false;
    return op;
  }
  if (auto it = input_index.find(node); it != input_index.end()) {
    op.src = RevampOperand::Src::kInput;
    op.input_index = it->second;
    return op;
  }
  const auto it = placed.find(node);
  if (it == placed.end())
    throw std::logic_error("assemble_revamp: operand not yet computed");
  op.src = RevampOperand::Src::kDmr;
  op.dmr_row = it->second.first;
  op.dmr_col = it->second.second;
  return op;
}

}  // namespace

RevampProgram assemble_revamp(const Mig& mig, const MajSchedule& sched) {
  RevampProgram prog;
  prog.wordlines = std::max<std::size_t>(1, sched.rows);
  prog.bitlines = std::max<std::size_t>(1, sched.max_row_width);
  prog.num_inputs = mig.num_inputs();

  std::map<std::uint32_t, std::size_t> input_index;
  {
    std::size_t k = 0;
    for (const auto in : mig.input_nodes()) input_index[in] = k++;
  }
  std::map<std::uint32_t, std::pair<std::size_t, std::size_t>> placed;

  // Group plan entries by row (the schedule emits them level by level).
  std::map<std::size_t, std::vector<const MajNodePlan*>> by_row;
  for (const auto& p : sched.plan) by_row[p.row].push_back(&p);


  for (const auto& [row, nodes] : by_row) {
    // READ every producer row this level consumes.
    std::vector<bool> needs_read(prog.wordlines, false);
    for (const auto* p : nodes) {
      for (const Mig::Lit lit : {p->preload, p->shared, p->per_column}) {
        const auto node = Mig::node_of(lit);
        if (auto it = placed.find(node); it != placed.end())
          needs_read[it->second.first] = true;
      }
    }
    for (std::size_t r = 0; r < prog.wordlines; ++r) {
      if (!needs_read[r]) continue;
      RevampInstruction read;
      read.kind = RevampInstruction::Kind::kRead;
      read.wordline = r;
      prog.instrs.push_back(read);
    }

    // APPLY #1: RESET the level's row (wl = 0, bl = 1 on active columns:
    // MAJ(S, 0, !1) = 0).
    RevampInstruction reset;
    reset.kind = RevampInstruction::Kind::kApply;
    reset.wordline = row;
    reset.wl = {RevampOperand::Src::kConst0, 0, 0, 0, false};
    reset.columns.assign(prog.bitlines, std::nullopt);
    for (const auto* p : nodes) {
      reset.columns[p->col] = RevampOperand{RevampOperand::Src::kConst1,
                                            0, 0, 0, false};
      reset.def_nodes.push_back(p->node);
    }
    prog.instrs.push_back(reset);

    // APPLY #2: PRELOAD (wl = 1, bl = !preload: MAJ(0, 1, preload)).
    RevampInstruction preload;
    preload.kind = RevampInstruction::Kind::kApply;
    preload.wordline = row;
    preload.wl = {RevampOperand::Src::kConst1, 0, 0, 0, false};
    preload.columns.assign(prog.bitlines, std::nullopt);
    for (const auto* p : nodes) {
      auto op = operand_of(mig, p->preload, placed, input_index);
      op.complemented = !op.complemented;  // drive V_bl = !preload
      if (op.src == RevampOperand::Src::kConst0 && op.complemented) {
        op.src = RevampOperand::Src::kConst1;
        op.complemented = false;
      } else if (op.src == RevampOperand::Src::kConst1 && op.complemented) {
        op.src = RevampOperand::Src::kConst0;
        op.complemented = false;
      }
      preload.columns[p->col] = op;
      preload.def_nodes.push_back(p->node);
    }
    prog.instrs.push_back(preload);

    // APPLY #3..: one instruction per shared-literal group.
    std::map<Mig::Lit, std::vector<const MajNodePlan*>> groups;
    for (const auto* p : nodes) groups[p->shared].push_back(p);
    for (const auto& [shared, members] : groups) {
      RevampInstruction apply;
      apply.kind = RevampInstruction::Kind::kApply;
      apply.wordline = row;
      apply.wl = operand_of(mig, shared, placed, input_index);
      apply.columns.assign(prog.bitlines, std::nullopt);
      for (const auto* p : members) {
        auto op = operand_of(mig, p->per_column, placed, input_index);
        op.complemented = !op.complemented;  // V_bl carries the complement
        if (op.src == RevampOperand::Src::kConst0 && op.complemented) {
          op.src = RevampOperand::Src::kConst1;
          op.complemented = false;
        } else if (op.src == RevampOperand::Src::kConst1 && op.complemented) {
          op.src = RevampOperand::Src::kConst0;
          op.complemented = false;
        }
        apply.columns[p->col] = op;
        apply.def_nodes.push_back(p->node);
      }
      prog.instrs.push_back(apply);
    }

    for (const auto* p : nodes) placed[p->node] = {p->row, p->col};
  }

  // Output taps.
  for (const auto o : mig.outputs())
    prog.outputs.push_back(operand_of(mig, o, placed, input_index));

  // Final READs so every DMR-sourced output is latched.
  std::vector<bool> need(prog.wordlines, false);
  for (const auto& o : prog.outputs)
    if (o.src == RevampOperand::Src::kDmr) need[o.dmr_row] = true;
  for (std::size_t r = 0; r < prog.wordlines; ++r) {
    if (!need[r]) continue;
    RevampInstruction read;
    read.kind = RevampInstruction::Kind::kRead;
    read.wordline = r;
    prog.instrs.push_back(read);
  }
  return prog;
}

std::vector<bool> execute_revamp_program(crossbar::Crossbar& xbar,
                                         const RevampProgram& prog,
                                         std::uint64_t assignment) {
  if (xbar.rows() < prog.wordlines || xbar.cols() < prog.bitlines)
    throw std::invalid_argument("execute_revamp_program: array too small");
  // The span mirrors the crossbar's own charge accounting so measured
  // program cost can be cross-checked against verify::estimate_cost.
  CIM_OBS_SPAN_NAMED(span, "eda.exec.revamp", obs::Component::kArray);
  const double t0 = xbar.stats().time_ns;
  const double e0 = xbar.stats().energy_pj;

  std::map<std::size_t, std::vector<bool>> dmr;

  auto resolve = [&](const RevampOperand& op) -> bool {
    bool v = false;
    switch (op.src) {
      case RevampOperand::Src::kConst0: v = false; break;
      case RevampOperand::Src::kConst1: v = true; break;
      case RevampOperand::Src::kInput:
        v = (assignment >> op.input_index) & 1ULL;
        break;
      case RevampOperand::Src::kDmr: {
        const auto it = dmr.find(op.dmr_row);
        if (it == dmr.end())
          throw std::logic_error("execute_revamp_program: DMR row not latched");
        v = it->second.at(op.dmr_col);
        break;
      }
    }
    return op.complemented ? !v : v;
  };

  for (const auto& ins : prog.instrs) {
    if (ins.kind == RevampInstruction::Kind::kRead) {
      std::vector<bool> word(prog.bitlines);
      for (std::size_t c = 0; c < prog.bitlines; ++c)
        word[c] = xbar.read_bit(ins.wordline, c);
      dmr[ins.wordline] = std::move(word);
      continue;
    }
    const bool v_wl = resolve(ins.wl);
    for (std::size_t c = 0; c < ins.columns.size(); ++c) {
      if (!ins.columns[c]) continue;
      const bool v_bl = resolve(*ins.columns[c]);
      xbar.majority_write(ins.wordline, c, v_wl, v_bl);
    }
  }

  std::vector<bool> out;
  out.reserve(prog.outputs.size());
  for (const auto& o : prog.outputs) out.push_back(resolve(o));
  if (obs::enabled()) {
    span.add_sim_time_ns(xbar.stats().time_ns - t0);
    span.add_energy_pj(xbar.stats().energy_pj - e0);
  }
  return out;
}

bool verify_revamp_program(const Mig& mig, const MajSchedule& sched) {
  const auto prog = assemble_revamp(mig, sched);
  crossbar::CrossbarConfig cfg;
  cfg.rows = prog.wordlines;
  cfg.cols = prog.bitlines;
  cfg.tech = device::Technology::kSttMram;
  cfg.levels = 2;
  cfg.model_ir_drop = false;
  cfg.seed = 17;

  const auto tts = mig.truth_tables();
  const std::uint64_t n = 1ULL << mig.num_inputs();
  for (std::uint64_t a = 0; a < n; ++a) {
    crossbar::Crossbar xbar(cfg);
    const auto out = execute_revamp_program(xbar, prog, a);
    for (std::size_t o = 0; o < tts.size(); ++o)
      if (out[o] != tts[o].get(a)) return false;
  }
  return true;
}

}  // namespace cim::eda
