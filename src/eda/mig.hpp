/// \file mig.hpp
/// \brief Majority-Inverter Graph (Section IV.B, Amaru et al. [55]) — the
///        natural representation for ReRAM majority logic (ReVAMP) since
///        the device's intrinsic operation is MAJ3 (Section IV.A).
///
/// Nodes are 3-input majorities with complement edges. Node creation applies
/// the majority axioms
///     M(x, x, y) = x          (majority)
///     M(x, !x, y) = y         (complement-pair)
///     M(!x, !y, !z) = !M(x,y,z)  (self-duality, used for canonicalization)
/// plus structural hashing. AND/OR enter as M(a,b,0) / M(a,b,1).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "eda/aig.hpp"
#include "eda/truth_table.hpp"

namespace cim::eda {

/// A Majority-Inverter Graph. Node 0 = constant 0; literal = 2*node+compl.
class Mig {
 public:
  using Lit = std::uint32_t;

  Mig();

  static Lit make_lit(std::uint32_t node, bool complemented) {
    return (node << 1) | static_cast<Lit>(complemented);
  }
  static std::uint32_t node_of(Lit l) { return l >> 1; }
  static bool is_complemented(Lit l) { return l & 1u; }
  static Lit lnot(Lit l) { return l ^ 1u; }

  Lit const0() const { return 0; }
  Lit const1() const { return 1; }

  Lit add_input();

  /// Majority with axiom-based simplification and canonicalization.
  Lit lmaj(Lit a, Lit b, Lit c);
  Lit land(Lit a, Lit b) { return lmaj(a, b, const0()); }
  Lit lor(Lit a, Lit b) { return lmaj(a, b, const1()); }
  Lit lxor(Lit a, Lit b);

  void mark_output(Lit l) { outputs_.push_back(l); }
  const std::vector<Lit>& outputs() const { return outputs_; }

  std::size_t num_inputs() const { return inputs_.size(); }
  /// Number of majority nodes (MIG size metric).
  std::size_t num_majs() const;
  /// Depth in majority levels over the most critical output.
  std::size_t depth() const;

  std::vector<TruthTable> truth_tables() const;

  /// Converts an AIG: AND(a,b) -> M(a,b,0); inverters ride the edges.
  static Mig from_aig(const Aig& aig);

  struct Node {
    Lit fanin[3] = {0, 0, 0};
    bool is_input = false;
  };
  const Node& node(std::uint32_t id) const { return nodes_.at(id); }
  bool is_maj(std::uint32_t id) const { return id != 0 && !nodes_[id].is_input; }
  std::size_t num_nodes() const { return nodes_.size(); }
  const std::vector<std::uint32_t>& input_nodes() const { return inputs_; }

  /// Per-node level (inputs at 0); index by node id.
  std::vector<std::size_t> levels() const;

 private:
  std::vector<Node> nodes_;
  std::vector<std::uint32_t> inputs_;
  std::vector<Lit> outputs_;
  std::unordered_map<std::uint64_t, std::uint32_t> strash_;
};

}  // namespace cim::eda
