#include "eda/netlist.hpp"

#include <algorithm>
#include <stdexcept>

namespace cim::eda {

std::string_view gate_type_name(GateType type) {
  switch (type) {
    case GateType::kInput: return "input";
    case GateType::kConst0: return "const0";
    case GateType::kConst1: return "const1";
    case GateType::kNot: return "NOT";
    case GateType::kAnd: return "AND";
    case GateType::kOr: return "OR";
    case GateType::kNand: return "NAND";
    case GateType::kNor: return "NOR";
    case GateType::kXor: return "XOR";
    case GateType::kXnor: return "XNOR";
    case GateType::kMaj: return "MAJ";
  }
  return "unknown";
}

std::size_t Netlist::add_input(std::string name) {
  gates_.push_back({GateType::kInput, {}});
  inputs_.push_back(gates_.size() - 1);
  if (name.empty()) name = "x" + std::to_string(inputs_.size() - 1);
  input_names_.push_back(std::move(name));
  return gates_.size() - 1;
}

std::size_t Netlist::add_const(bool value) {
  gates_.push_back({value ? GateType::kConst1 : GateType::kConst0, {}});
  return gates_.size() - 1;
}

std::size_t Netlist::add_gate(GateType type, std::vector<std::size_t> fanins) {
  switch (type) {
    case GateType::kInput:
    case GateType::kConst0:
    case GateType::kConst1:
      throw std::invalid_argument("add_gate: use add_input/add_const");
    case GateType::kNot:
      if (fanins.size() != 1) throw std::invalid_argument("NOT: 1 fanin");
      break;
    case GateType::kMaj:
      if (fanins.size() != 3) throw std::invalid_argument("MAJ: 3 fanins");
      break;
    case GateType::kXor:
    case GateType::kXnor:
      if (fanins.size() != 2) throw std::invalid_argument("XOR/XNOR: 2 fanins");
      break;
    case GateType::kNor:
      // Single-input NOR is a NOT — MAGIC's native inverter.
      if (fanins.empty()) throw std::invalid_argument("NOR: >= 1 fanin");
      break;
    default:
      if (fanins.size() < 2) throw std::invalid_argument("gate: >= 2 fanins");
      break;
  }
  const std::size_t id = gates_.size();
  for (const auto f : fanins)
    if (f >= id)
      throw std::invalid_argument(
          "add_gate: fanin " + std::to_string(f) +
          " does not precede the new gate (id " + std::to_string(id) +
          ") — netlists are built in topological order");
  gates_.push_back({type, std::move(fanins)});
  return id;
}

void Netlist::mark_output(std::size_t node) {
  if (node >= gates_.size()) throw std::out_of_range("mark_output");
  outputs_.push_back(node);
}

std::size_t Netlist::gate_count() const {
  std::size_t n = 0;
  for (const auto& g : gates_)
    if (g.type != GateType::kInput && g.type != GateType::kConst0 &&
        g.type != GateType::kConst1)
      ++n;
  return n;
}

std::size_t Netlist::count(GateType type) const {
  std::size_t n = 0;
  for (const auto& g : gates_)
    if (g.type == type) ++n;
  return n;
}

std::size_t Netlist::depth() const {
  std::vector<std::size_t> d(gates_.size(), 0);
  std::size_t best = 0;
  for (std::size_t i = 0; i < gates_.size(); ++i) {
    const auto& g = gates_[i];
    if (g.fanins.empty()) continue;
    std::size_t m = 0;
    for (const auto f : g.fanins) m = std::max(m, d[f]);
    d[i] = m + 1;
    best = std::max(best, d[i]);
  }
  return best;
}

std::vector<bool> Netlist::simulate(std::uint64_t assignment) const {
  std::vector<bool> value(gates_.size(), false);
  std::size_t input_idx = 0;
  for (std::size_t i = 0; i < gates_.size(); ++i) {
    const auto& g = gates_[i];
    switch (g.type) {
      case GateType::kInput:
        value[i] = (assignment >> input_idx++) & 1ULL;
        break;
      case GateType::kConst0:
        value[i] = false;
        break;
      case GateType::kConst1:
        value[i] = true;
        break;
      case GateType::kNot:
        value[i] = !value[g.fanins[0]];
        break;
      case GateType::kAnd: {
        bool v = true;
        for (const auto f : g.fanins) v = v && value[f];
        value[i] = v;
        break;
      }
      case GateType::kOr: {
        bool v = false;
        for (const auto f : g.fanins) v = v || value[f];
        value[i] = v;
        break;
      }
      case GateType::kNand: {
        bool v = true;
        for (const auto f : g.fanins) v = v && value[f];
        value[i] = !v;
        break;
      }
      case GateType::kNor: {
        bool v = false;
        for (const auto f : g.fanins) v = v || value[f];
        value[i] = !v;
        break;
      }
      case GateType::kXor:
        value[i] = value[g.fanins[0]] != value[g.fanins[1]];
        break;
      case GateType::kXnor:
        value[i] = value[g.fanins[0]] == value[g.fanins[1]];
        break;
      case GateType::kMaj: {
        const int votes = static_cast<int>(value[g.fanins[0]]) +
                          static_cast<int>(value[g.fanins[1]]) +
                          static_cast<int>(value[g.fanins[2]]);
        value[i] = votes >= 2;
        break;
      }
    }
  }
  std::vector<bool> out;
  out.reserve(outputs_.size());
  for (const auto o : outputs_) out.push_back(value[o]);
  return out;
}

std::vector<TruthTable> Netlist::truth_tables() const {
  if (num_inputs() > 16)
    throw std::invalid_argument("truth_tables: > 16 inputs");
  const int vars = static_cast<int>(num_inputs());
  std::vector<TruthTable> tts(outputs_.size(), TruthTable(vars));
  const std::uint64_t n = 1ULL << vars;
  for (std::uint64_t a = 0; a < n; ++a) {
    const auto vals = simulate(a);
    for (std::size_t o = 0; o < vals.size(); ++o)
      if (vals[o]) tts[o].set(a, true);
  }
  return tts;
}

Netlist Netlist::to_nor_only() const {
  Netlist out;
  std::vector<std::size_t> map(gates_.size());

  auto nor1 = [&out](std::size_t a) {
    return out.add_gate(GateType::kNor, {a});
  };
  auto nor2 = [&out](std::size_t a, std::size_t b) {
    return out.add_gate(GateType::kNor, {a, b});
  };

  for (std::size_t i = 0; i < gates_.size(); ++i) {
    const auto& g = gates_[i];
    switch (g.type) {
      case GateType::kInput:
        map[i] = out.add_input(input_names_[static_cast<std::size_t>(
            std::distance(inputs_.begin(),
                          std::find(inputs_.begin(), inputs_.end(), i)))]);
        break;
      case GateType::kConst0:
        map[i] = out.add_const(false);
        break;
      case GateType::kConst1:
        map[i] = out.add_const(true);
        break;
      case GateType::kNot:
        map[i] = nor1(map[g.fanins[0]]);
        break;
      case GateType::kNor: {
        std::vector<std::size_t> ins;
        for (const auto f : g.fanins) ins.push_back(map[f]);
        map[i] = out.add_gate(GateType::kNor, std::move(ins));
        break;
      }
      case GateType::kOr: {
        std::vector<std::size_t> ins;
        for (const auto f : g.fanins) ins.push_back(map[f]);
        map[i] = nor1(out.add_gate(GateType::kNor, std::move(ins)));
        break;
      }
      case GateType::kAnd: {
        // AND(a...) = NOR(!a...)
        std::vector<std::size_t> ins;
        for (const auto f : g.fanins) ins.push_back(nor1(map[f]));
        map[i] = out.add_gate(GateType::kNor, std::move(ins));
        break;
      }
      case GateType::kNand: {
        std::vector<std::size_t> ins;
        for (const auto f : g.fanins) ins.push_back(nor1(map[f]));
        map[i] = nor1(out.add_gate(GateType::kNor, std::move(ins)));
        break;
      }
      case GateType::kXor:
      case GateType::kXnor: {
        // n1 = NOR(a,b); n2 = NOR(a,n1) = !a b; n3 = NOR(b,n1) = a !b;
        // XNOR = NOR(n2,n3); XOR = NOT(XNOR).
        const std::size_t a = map[g.fanins[0]];
        const std::size_t b = map[g.fanins[1]];
        const std::size_t n1 = nor2(a, b);
        const std::size_t n2 = nor2(a, n1);
        const std::size_t n3 = nor2(b, n1);
        const std::size_t xnor = nor2(n2, n3);
        map[i] = (g.type == GateType::kXnor) ? xnor : nor1(xnor);
        break;
      }
      case GateType::kMaj: {
        const std::size_t na = nor1(map[g.fanins[0]]);
        const std::size_t nb = nor1(map[g.fanins[1]]);
        const std::size_t nc = nor1(map[g.fanins[2]]);
        const std::size_t ab = nor2(na, nb);  // a & b
        const std::size_t ac = nor2(na, nc);
        const std::size_t bc = nor2(nb, nc);
        map[i] = nor1(out.add_gate(GateType::kNor, {ab, ac, bc}));
        break;
      }
    }
  }
  for (const auto o : outputs_) out.mark_output(map[o]);
  return out;
}

}  // namespace cim::eda
