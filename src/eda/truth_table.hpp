/// \file truth_table.hpp
/// \brief Dense truth tables — the functional currency of the EDA flow
///        (Section IV / Fig. 8): every representation (AIG, MIG, BDD, ESOP)
///        and every technology mapping is verified against one.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cim::eda {

/// A completely specified Boolean function of up to 16 variables, stored as
/// a bit-packed table of 2^n entries (minterm i -> bit i).
class TruthTable {
 public:
  /// Constant-0 function of `vars` variables.
  explicit TruthTable(int vars = 0);

  /// Projection function x_i of `vars` variables.
  static TruthTable var(int i, int vars);
  static TruthTable constant(bool value, int vars);

  /// Parses a binary string, MSB = highest minterm ("0110" = XOR of 2 vars).
  static TruthTable from_binary_string(const std::string& bits);

  int vars() const { return vars_; }
  std::uint64_t size() const { return 1ULL << vars_; }

  bool get(std::uint64_t minterm) const;
  void set(std::uint64_t minterm, bool value);

  /// Evaluates under an input assignment packed as bits of `assignment`.
  bool eval(std::uint64_t assignment) const { return get(assignment); }

  TruthTable operator&(const TruthTable& other) const;
  TruthTable operator|(const TruthTable& other) const;
  TruthTable operator^(const TruthTable& other) const;
  TruthTable operator~() const;
  bool operator==(const TruthTable& other) const;

  /// Majority of three functions (bitwise).
  static TruthTable maj(const TruthTable& a, const TruthTable& b,
                        const TruthTable& c);

  /// Positive / negative cofactor with respect to variable i.
  TruthTable cofactor(int var, bool value) const;

  /// True iff the function depends on variable i.
  bool depends_on(int var) const;

  bool is_constant() const;
  std::uint64_t count_ones() const;

  /// Binary string, MSB first (inverse of from_binary_string).
  std::string to_binary_string() const;

 private:
  void check_compat(const TruthTable& other) const;
  void mask_tail();

  int vars_;
  std::vector<std::uint64_t> words_;
};

}  // namespace cim::eda
