/// \file revamp_isa.hpp
/// \brief The ReVAMP instruction set (Section II.C, Bhattacharjee et al.,
///        DATE'17 [35]): a ReRAM-based VLIW machine with two instruction
///        formats — `Read` latches a crossbar wordline into the data memory
///        register (DMR), `Apply` drives the wordline and per-column
///        bitlines with values drawn from the primary input register (PIR),
///        the DMR or constants, executing one in-array majority step per
///        cell: NS = MAJ3(S, V_wl, !V_bl).
///
/// The assembler lowers a scheduled MIG (majority_mapper) into an explicit
/// instruction stream; the executor runs the stream on the crossbar
/// simulator, modelling the register file; the disassembler prints the
/// program the way an ISA listing would.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "crossbar/crossbar.hpp"
#include "eda/majority_mapper.hpp"
#include "eda/mig.hpp"

namespace cim::eda {

/// Where an Apply operand's value comes from.
struct RevampOperand {
  enum class Src { kConst0, kConst1, kInput, kDmr };
  Src src = Src::kConst0;
  std::size_t input_index = 0;  ///< PIR bit (kInput)
  std::size_t dmr_row = 0;      ///< latched row (kDmr)
  std::size_t dmr_col = 0;      ///< column within the latched word (kDmr)
  bool complemented = false;    ///< driver inverts the value

  std::string to_string() const;
};

/// One ReVAMP instruction.
struct RevampInstruction {
  enum class Kind { kRead, kApply };
  Kind kind = Kind::kRead;
  std::size_t wordline = 0;
  /// kApply only: the shared wordline value.
  RevampOperand wl;
  /// kApply only: per-column bitline values (inactive columns disengaged).
  std::vector<std::optional<RevampOperand>> columns;
  /// IR introspection hook for the static verifier: the MIG nodes whose
  /// cells this Apply drives (RESET/PRELOAD list the level's nodes, a MAJ
  /// apply its group members). Empty for READ.
  std::vector<std::uint32_t> def_nodes;

  std::string to_string() const;
};

/// A complete ReVAMP program plus output bookkeeping.
struct RevampProgram {
  std::size_t wordlines = 0;
  std::size_t bitlines = 0;
  std::size_t num_inputs = 0;
  std::vector<RevampInstruction> instrs;
  /// Output taps: operands evaluated after the program ran.
  std::vector<RevampOperand> outputs;

  std::size_t read_count() const;
  std::size_t apply_count() const;
  std::string disassemble() const;
};

/// Lowers a scheduled MIG into a ReVAMP instruction stream.
RevampProgram assemble_revamp(const Mig& mig, const MajSchedule& sched);

/// Executes the program on a crossbar (sized >= wordlines x bitlines).
std::vector<bool> execute_revamp_program(crossbar::Crossbar& xbar,
                                         const RevampProgram& prog,
                                         std::uint64_t assignment);

/// Exhaustive check of assemble+execute against the MIG.
bool verify_revamp_program(const Mig& mig, const MajSchedule& sched);

}  // namespace cim::eda
