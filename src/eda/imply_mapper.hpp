/// \file imply_mapper.hpp
/// \brief Technology mapping onto material-implication (IMPLY) stateful
///        logic (Section IV.A/IV.C, refs [63]-[66]).
///
/// The paper's IMPLY convention: NS_p = S_p -> S_q — the *destination*
/// device p is overwritten with (p -> q) = !p | q. Together with the
/// unconditional FALSE (RESET) operation this is functionally complete.
/// Useful macros under this convention (z is a dedicated constant-0 cell):
///     TRUE(d)  : FALSE(d); IMPLY(d, z)          -- d = !0|0 = 1
///     COPY(x,d): TRUE(d); IMPLY(d, x)           -- d = !1|x = x
///     NOT(d)   : IMPLY(d, z)                    -- d = !d
///     AND(a,b,d): d = !(!a | !b) via COPY + IMPLY + NOT
/// The mapper compiles an AIG into a linear IMPLY program over one crossbar
/// row, optionally reusing work cells once their fanouts are consumed
/// (the two-working-memristor result [64] is the extreme of this reuse).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "crossbar/crossbar.hpp"
#include "eda/aig.hpp"

namespace cim::eda {

/// One IMPLY-machine instruction.
struct ImplyInstr {
  enum class Kind { kFalse, kImply };
  Kind kind = Kind::kFalse;
  std::size_t dest = 0;
  std::size_t src = 0;  ///< meaningful for kImply only
  /// IR introspection hook for the static verifier: the AIG node whose value
  /// this instruction *completes* in `dest` (the last micro-op of a COPY /
  /// NOT / AND macro sequence). SIZE_MAX on intermediate micro-ops. Node 0
  /// marks constant cells (the zero cell, the derived const-1 cell).
  std::size_t def_node = static_cast<std::size_t>(-1);
};

/// A compiled IMPLY program over cells of one row.
struct ImplyProgram {
  std::size_t num_inputs = 0;
  std::size_t zero_cell = 0;        ///< dedicated constant-0 cell
  std::size_t num_cells = 0;        ///< devices used (area metric)
  std::vector<ImplyInstr> instrs;   ///< delay metric = instrs.size()
  std::vector<std::size_t> output_cells;

  std::size_t delay() const { return instrs.size(); }
};

/// Compiles an AIG. With `reuse_cells`, work cells are recycled when all
/// fanouts of their node have been consumed (smaller area, same delay).
ImplyProgram compile_imply(const Aig& aig, bool reuse_cells = false);

/// Executes the program on row `row` of a crossbar for one input assignment
/// (bit i of `assignment` = input i); returns the output cell values.
std::vector<bool> execute_imply(crossbar::Crossbar& xbar,
                                const ImplyProgram& prog,
                                std::uint64_t assignment, std::size_t row = 0);

/// Exhaustively executes the program on a fresh ideal crossbar and compares
/// with the AIG's truth tables.
bool verify_imply(const ImplyProgram& prog, const Aig& aig);

}  // namespace cim::eda
