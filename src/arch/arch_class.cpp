#include "arch/arch_class.hpp"

namespace cim::arch {

std::string_view arch_class_name(ArchClass cls) {
  switch (cls) {
    case ArchClass::kCimArray: return "CIM-A";
    case ArchClass::kCimPeriphery: return "CIM-P";
    case ArchClass::kComNear: return "COM-N";
    case ArchClass::kComFar: return "COM-F";
  }
  return "unknown";
}

std::vector<ArchClass> all_arch_classes() {
  return {ArchClass::kCimArray, ArchClass::kCimPeriphery, ArchClass::kComNear,
          ArchClass::kComFar};
}

std::string_view level_name(Level level) {
  switch (level) {
    case Level::kLow: return "Low";
    case Level::kLowMedium: return "Low/medium";
    case Level::kMedium: return "Medium";
    case Level::kHigh: return "High";
    case Level::kHighMax: return "High-Max";
    case Level::kMax: return "Max";
    case Level::kNotRequired: return "NR";
  }
  return "unknown";
}

ClassTraits class_traits(ArchClass cls) {
  switch (cls) {
    case ArchClass::kCimArray:
      return {cls, false, true, "High latency", Level::kMax, Level::kHigh,
              Level::kLowMedium, Level::kHigh, Level::kLow};
    case ArchClass::kCimPeriphery:
      return {cls, false, true, "High cost", Level::kHighMax, Level::kLowMedium,
              Level::kHigh, Level::kMedium, Level::kMedium};
    case ArchClass::kComNear:
      return {cls, true, false, "Low cost", Level::kHigh, Level::kLow,
              Level::kLow, Level::kLow, Level::kMedium};
    case ArchClass::kComFar:
      return {cls, true, false, "Low cost", Level::kLow, Level::kLow,
              Level::kLow, Level::kLow, Level::kHigh};
  }
  return {};
}

ArchClass classify(const SystemDescription& sys) {
  if (sys.result_in_cell_array) return ArchClass::kCimArray;
  if (sys.result_in_periphery) return ArchClass::kCimPeriphery;
  if (sys.logic_inside_memory_sip) return ArchClass::kComNear;
  return ArchClass::kComFar;
}

std::vector<SystemDescription> example_systems() {
  return {
      {"ReVAMP (ReRAM VLIW, majority-in-array)", true, false, false},
      {"MAGIC crossbar", true, false, false},
      {"IMPLY stateful logic", true, false, false},
      {"ISAAC (analog VMM + ADC periphery)", false, true, false},
      {"Pinatubo (SA-based bulk bitwise)", false, true, false},
      {"Scouting logic (modified SA read)", false, true, false},
      {"DIVA PIM chip (logic near DRAM array)", false, false, true},
      {"HBM with base-die logic", false, false, true},
      {"CPU", false, false, false},
      {"GPU", false, false, false},
      {"TPU", false, false, false},
  };
}

}  // namespace cim::arch
