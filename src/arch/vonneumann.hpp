/// \file vonneumann.hpp
/// \brief Von-Neumann baseline machine for the Fig. 1 bottleneck experiment.
///
/// Fig. 1a depicts the memory-processor bus as *the* bottleneck of
/// conventional architectures. This model is a two-resource roofline
/// machine (compute pipeline + memory channel) with a small cache to model
/// reuse; the Fig. 1 bench sweeps VMM sizes and reports how the share of
/// time/energy spent moving data grows, then contrasts a CIM tile
/// (periphery::tile_vmm_*) executing the same VMM in place.
#pragma once

#include <cstddef>

namespace cim::arch {

/// Parameters of the baseline processor + memory system.
struct VonNeumannParams {
  double mac_per_ns = 64.0;         ///< MAC throughput (SIMD datapath)
  double mac_energy_pj = 0.5;       ///< energy per MAC (ALU + register file)
  double mem_bw_bytes_per_ns = 25.6;///< DRAM channel bandwidth (GB/s)
  double dram_energy_pj_per_byte = 20.0;  ///< end-to-end access energy
  double cache_bytes = 32 * 1024.0; ///< on-chip buffer for operand reuse
  double cache_energy_pj_per_byte = 1.0;  ///< SRAM access energy
};

/// Cost report for one dense m x n VMM (y = W x), operands in `bytes_per_el`.
struct VonNeumannReport {
  double time_ns = 0.0;
  double energy_pj = 0.0;
  double compute_time_ns = 0.0;
  double memory_time_ns = 0.0;
  double compute_energy_pj = 0.0;
  double movement_energy_pj = 0.0;
  double dram_bytes = 0.0;
  double movement_energy_fraction = 0.0;
  double movement_time_fraction = 0.0;
};

/// Executes an (m x n) * (n) VMM: the weight matrix streams from DRAM
/// (it exceeds the cache for all interesting sizes), the input vector is
/// cached and reused across rows.
VonNeumannReport run_vmm(const VonNeumannParams& p, std::size_t m,
                         std::size_t n, std::size_t bytes_per_el = 1);

}  // namespace cim::arch
