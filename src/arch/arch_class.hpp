/// \file arch_class.hpp
/// \brief Computer-architecture classification of Section II.A / Fig. 2 and
///        the qualitative comparison of Table I.
///
/// Architectures are classified by *where the computation result is
/// produced* (Nguyen et al., JETC'20 — reference [16]):
///
///   memory core:   (1) inside the cell array            -> CIM-A
///                  (2) inside the peripheral circuits   -> CIM-P
///   outside core:  (3) extra logic inside the memory SiP -> COM-N
///                  (4) traditional computational cores   -> COM-F
#pragma once

#include <string_view>
#include <vector>

namespace cim::arch {

/// The four classes of Fig. 2.
enum class ArchClass {
  kCimArray,      ///< CIM-A: result produced within the cell array
  kCimPeriphery,  ///< CIM-P: result produced in the memory periphery
  kComNear,       ///< COM-N: logic outside the core but inside the memory SiP
  kComFar,        ///< COM-F: conventional computational cores (CPU/GPU/TPU)
};

std::string_view arch_class_name(ArchClass cls);
std::vector<ArchClass> all_arch_classes();

/// Qualitative levels used by Table I.
enum class Level { kLow, kLowMedium, kMedium, kHigh, kHighMax, kMax, kNotRequired };
std::string_view level_name(Level level);

/// One row of Table I.
struct ClassTraits {
  ArchClass cls;
  bool moves_data_outside_core;    ///< "Data movement outside memory core"
  bool requires_data_alignment;    ///< "Computation requirements: alignment"
  std::string_view complex_function_cost;  ///< "High latency" / "High cost" / "Low cost"
  Level available_bandwidth;
  Level effort_cells_array;        ///< memory design effort: cells & array
  Level effort_periphery;
  Level effort_controller;
  Level scalability;
};

/// The traits Table I assigns to a class.
ClassTraits class_traits(ArchClass cls);

/// Where a system computes, for classification (Fig. 2 decision procedure).
struct SystemDescription {
  std::string_view name;
  bool result_in_cell_array = false;   ///< computation completes in the array
  bool result_in_periphery = false;    ///< completes in sense amps / ADC logic
  bool logic_inside_memory_sip = false;///< extra logic dies inside memory package
};

/// Classifies a system description into its Fig. 2 class.
ArchClass classify(const SystemDescription& sys);

/// The example systems the paper mentions, pre-described for classification
/// (DIVA, ReVAMP, ISAAC, Pinatubo, Scouting logic, HBM-PIM, CPU/GPU/TPU).
std::vector<SystemDescription> example_systems();

}  // namespace cim::arch
