#include "arch/vonneumann.hpp"

#include <algorithm>
#include <stdexcept>

namespace cim::arch {

VonNeumannReport run_vmm(const VonNeumannParams& p, std::size_t m,
                         std::size_t n, std::size_t bytes_per_el) {
  if (m == 0 || n == 0 || bytes_per_el == 0)
    throw std::invalid_argument("run_vmm: empty problem");
  VonNeumannReport r;

  const double macs = static_cast<double>(m) * static_cast<double>(n);
  const double weight_bytes = macs * static_cast<double>(bytes_per_el);
  const double vec_bytes =
      static_cast<double>(n) * static_cast<double>(bytes_per_el);
  const double out_bytes =
      static_cast<double>(m) * static_cast<double>(bytes_per_el);

  // Weights stream from DRAM once (no reuse within a single VMM). The input
  // vector is fetched once and then served from cache for every row; if it
  // does not fit, each row re-streams the non-resident remainder.
  double vector_dram_bytes = vec_bytes;
  if (vec_bytes > p.cache_bytes) {
    const double miss_fraction = 1.0 - p.cache_bytes / vec_bytes;
    vector_dram_bytes += (static_cast<double>(m) - 1.0) * vec_bytes * miss_fraction;
  }
  r.dram_bytes = weight_bytes + vector_dram_bytes + out_bytes;

  r.memory_time_ns = r.dram_bytes / p.mem_bw_bytes_per_ns;
  r.compute_time_ns = macs / p.mac_per_ns;
  r.time_ns = std::max(r.memory_time_ns, r.compute_time_ns);

  // Every operand also passes through the cache/register hierarchy.
  const double cache_traffic = weight_bytes + macs * static_cast<double>(bytes_per_el);
  r.compute_energy_pj = macs * p.mac_energy_pj;
  r.movement_energy_pj = r.dram_bytes * p.dram_energy_pj_per_byte +
                         cache_traffic * p.cache_energy_pj_per_byte;
  r.energy_pj = r.compute_energy_pj + r.movement_energy_pj;

  r.movement_energy_fraction = r.movement_energy_pj / r.energy_pj;
  r.movement_time_fraction =
      r.time_ns > 0.0 ? std::min(1.0, r.memory_time_ns / r.time_ns) : 0.0;
  return r;
}

}  // namespace cim::arch
