#include "arch/machine_model.hpp"

#include <algorithm>
#include <stdexcept>

namespace cim::arch {

std::string_view workload_kind_name(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kVmm: return "VMM";
    case WorkloadKind::kBulkBitwise: return "bulk-bitwise";
    case WorkloadKind::kComplexFunction: return "complex-function";
  }
  return "unknown";
}

MachineParams default_params(ArchClass cls) {
  MachineParams p;
  p.cls = cls;
  switch (cls) {
    case ArchClass::kCimArray:
      // Result forms inside the array: no boundary traffic, whole-array
      // parallelism, but each primitive is a device *write* (~10 ns) and
      // unsupported functions decompose into long stateful-logic sequences.
      p.boundary_bw_gbps = 1024.0;   // array-internal (max available)
      p.move_energy_pj_per_byte = 0.0;
      p.boundary_traffic_fraction = 0.0;
      p.op_latency_ns = 10.0;        // device write per logic step
      p.op_energy_pj = 0.1;
      p.parallelism = 65536.0;       // a 256x256 array switches concurrently
      p.complex_decomposition_factor = 40.0;  // "High latency"
      break;
    case ArchClass::kCimPeriphery:
      // Result forms in the periphery: operands stay in place, but every
      // result crosses the ADC (energy-expensive conversions), and complex
      // functions need many read passes ("High cost").
      p.boundary_bw_gbps = 512.0;
      p.move_energy_pj_per_byte = 0.5;  // S&H + mux, still on-core
      p.boundary_traffic_fraction = 0.05;  // only results leave the array
      p.op_latency_ns = 1.0;          // read + conversion, column-parallel
      p.op_energy_pj = 1.8;           // dominated by the ADC share
      p.parallelism = 2048.0;         // 16 arrays x 128 column ADCs in flight
      p.complex_decomposition_factor = 12.0;
      break;
    case ArchClass::kComNear:
      // Logic die in the memory SiP (HBM base die): all operands cross the
      // TSVs, at high bandwidth and moderate energy.
      p.boundary_bw_gbps = 256.0;
      p.move_energy_pj_per_byte = 4.0;
      p.boundary_traffic_fraction = 1.0;
      p.op_latency_ns = 0.2;
      p.op_energy_pj = 0.6;
      p.parallelism = 64.0;
      p.complex_decomposition_factor = 1.0;  // full ALUs: "Low cost"
      break;
    case ArchClass::kComFar:
      // Conventional core behind a DDR bus: all operands move off-package,
      // ~20 pJ/byte end to end, 25.6 GB/s channel.
      p.boundary_bw_gbps = 25.6;
      p.move_energy_pj_per_byte = 20.0;
      p.boundary_traffic_fraction = 1.0;
      p.op_latency_ns = 0.05;
      p.op_energy_pj = 0.5;
      p.parallelism = 32.0;
      p.complex_decomposition_factor = 1.0;
      break;
  }
  return p;
}

ExecutionReport execute(const MachineParams& m, const Workload& w) {
  if (w.ops == 0) throw std::invalid_argument("execute: empty workload");
  ExecutionReport r;
  r.cls = m.cls;

  r.bytes_moved = m.boundary_traffic_fraction *
                      static_cast<double>(w.input_bytes) +
                  static_cast<double>(w.output_bytes);
  // GB/s == bytes/ns.
  r.movement_time_ns = r.bytes_moved / m.boundary_bw_gbps;
  r.movement_energy_pj = r.bytes_moved * m.move_energy_pj_per_byte;

  double effective_ops = static_cast<double>(w.ops);
  if (w.kind == WorkloadKind::kComplexFunction)
    effective_ops *= m.complex_decomposition_factor;

  r.compute_time_ns = effective_ops * m.op_latency_ns / m.parallelism;
  r.compute_energy_pj = effective_ops * m.op_energy_pj;

  // Roofline: movement and compute pipelines overlap.
  r.time_ns = std::max(r.movement_time_ns, r.compute_time_ns);
  r.energy_pj = r.movement_energy_pj + r.compute_energy_pj;
  r.effective_bandwidth_gbps = static_cast<double>(w.input_bytes) / r.time_ns;
  r.movement_energy_fraction =
      r.energy_pj > 0.0 ? r.movement_energy_pj / r.energy_pj : 0.0;
  return r;
}

ExecutionReport execute(ArchClass cls, const Workload& w) {
  return execute(default_params(cls), w);
}

}  // namespace cim::arch
