/// \file machine_model.hpp
/// \brief Analytic execution models for the four architecture classes,
///        used to *derive* Table I's qualitative comparison from numbers.
///
/// Each class executes an abstract workload (VMM, bulk bitwise, or a
/// "complex function" such as division/exp that CIM fabrics must decompose)
/// under a roofline-style model: data movement across the class's boundary,
/// bounded bandwidth, per-op compute cost, and decomposition overhead for
/// operations the fabric does not support natively.
#pragma once

#include <cstddef>
#include <string_view>

#include "arch/arch_class.hpp"

namespace cim::arch {

/// Abstract workload kinds.
enum class WorkloadKind {
  kVmm,          ///< vector-matrix multiply (MAC-heavy, CIM's home turf)
  kBulkBitwise,  ///< AND/OR/XOR over long words (Pinatubo-style)
  kComplexFunction, ///< division / exp / sort step: no native CIM support
};

std::string_view workload_kind_name(WorkloadKind kind);

/// One workload instance.
struct Workload {
  WorkloadKind kind = WorkloadKind::kVmm;
  std::size_t input_bytes = 1 << 20;  ///< operand data resident in memory
  std::size_t ops = 1 << 20;          ///< primitive operations (MACs / bit-ops)
  std::size_t output_bytes = 1 << 12;
};

/// Machine parameters of one architecture class.
struct MachineParams {
  ArchClass cls = ArchClass::kComFar;
  double boundary_bw_gbps = 25.6;   ///< bandwidth across the data-movement boundary
  double move_energy_pj_per_byte = 0.0; ///< energy to move one byte across it
  double op_latency_ns = 0.1;       ///< amortized latency per primitive op
  double op_energy_pj = 0.5;
  double parallelism = 1.0;         ///< ops retired concurrently
  /// Multiplier on op count when the fabric must decompose a complex
  /// function into supported primitives (Table I: "complex function" cost).
  double complex_decomposition_factor = 1.0;
  /// Fraction of input bytes that must cross the boundary (CIM: only
  /// operands that are not already resident / aligned).
  double boundary_traffic_fraction = 1.0;
};

/// Representative parameters for a class (derivations documented in the cpp).
MachineParams default_params(ArchClass cls);

/// Result of executing a workload on a machine model.
struct ExecutionReport {
  ArchClass cls = ArchClass::kComFar;
  double time_ns = 0.0;
  double energy_pj = 0.0;
  double movement_energy_pj = 0.0;
  double compute_energy_pj = 0.0;
  double bytes_moved = 0.0;          ///< across the class boundary
  double movement_time_ns = 0.0;
  double compute_time_ns = 0.0;
  /// Achieved operand bandwidth (GB/s): input_bytes / time.
  double effective_bandwidth_gbps = 0.0;
  /// Fraction of energy spent on movement (the Fig. 1 bottleneck metric).
  double movement_energy_fraction = 0.0;
};

/// Executes `w` on the model `m` (roofline: movement and compute overlap).
ExecutionReport execute(const MachineParams& m, const Workload& w);

/// Convenience: default params for the class, then execute.
ExecutionReport execute(ArchClass cls, const Workload& w);

}  // namespace cim::arch
