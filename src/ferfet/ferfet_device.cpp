#include "ferfet/ferfet_device.hpp"

#include <algorithm>
#include <cmath>

namespace cim::ferfet {

std::string_view polarity_name(Polarity p) {
  return p == Polarity::kNType ? "n-type" : "p-type";
}

std::string_view vt_state_name(VtState s) {
  return s == VtState::kLrs ? "LRS" : "HRS";
}

FeRfet::FeRfet(FeRfetParams params, Polarity polarity, VtState vt)
    : params_(params), polarity_(polarity), vt_(vt) {}

bool FeRfet::program_polarity(double v_pg) {
  if (std::abs(v_pg) < params_.v_program) return false;
  const Polarity target = v_pg > 0 ? Polarity::kNType : Polarity::kPType;
  const bool switched = target != polarity_;
  polarity_ = target;
  return switched;
}

bool FeRfet::program_vt(double v_cg) {
  if (std::abs(v_cg) < params_.v_program) return false;
  const VtState target = v_cg > 0 ? VtState::kLrs : VtState::kHrs;
  const bool switched = target != vt_;
  vt_ = target;
  return switched;
}

double FeRfet::effective_vt() const {
  const double shift = (vt_ == VtState::kHrs) ? params_.fe_vt_shift : 0.0;
  if (polarity_ == Polarity::kNType) return params_.vt_n + shift;
  return params_.vt_p - shift;
}

double FeRfet::drain_current_ua(double v_cg, double v_ds) const {
  const double vt = effective_vt();
  // Overdrive in the conduction direction of the programmed polarity.
  const double overdrive =
      (polarity_ == Polarity::kNType) ? (v_cg - vt) : (vt - v_cg);
  // Logistic transfer: ~swing mV/decade in weak inversion, saturating at
  // i_on. ln(10)*kT-style slope derived from the swing parameter.
  const double slope_v = params_.swing_mv_dec * 1e-3 / std::log(10.0) * 2.3;
  const double x = overdrive / slope_v;
  const double sigmoid = 1.0 / (1.0 + std::exp(-4.0 * x));
  const double i_chan =
      params_.i_off_na * 1e-3 +
      (params_.i_on_ua - params_.i_off_na * 1e-3) * sigmoid;
  // First-order drain factor: linear up to vdd/2 then saturated.
  const double vds_eff = std::min(std::abs(v_ds), params_.vdd);
  const double drain_factor =
      std::min(1.0, vds_eff / (0.5 * params_.vdd));
  return i_chan * drain_factor * (v_ds >= 0 ? 1.0 : -1.0);
}

bool FeRfet::conducts(double v_gs) const {
  const double i = std::abs(drain_current_ua(v_gs, params_.vdd));
  return i >= 0.1 * params_.i_on_ua;
}

bool FeRfet::conducts_at_gate(double v_gate) const {
  const double v_gs =
      (polarity_ == Polarity::kNType) ? v_gate : v_gate - params_.vdd;
  return conducts(v_gs);
}

}  // namespace cim::ferfet
