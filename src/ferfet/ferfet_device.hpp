/// \file ferfet_device.hpp
/// \brief Compact model of the Ferroelectric Reconfigurable FET (FeRFET)
///        of Section V.A / Figs. 9-10.
///
/// An RFET is an ambipolar Schottky-barrier transistor with independent
/// gates: the *program* gate selects electron or hole conduction (n- or
/// p-type), the *control* gate modulates the current. Adding a ferroelectric
/// HfO2 layer to the gate stack (Fig. 9) makes both selections non-volatile:
///   - program-gate polarization  -> stored polarity (n/p)
///   - control-gate polarization  -> Vt shift: low-Vt = LRS, high-Vt = HRS
/// yielding the four operation states of Fig. 10(b). Programming requires
/// 2-3x the operating voltage ("inherent to the Fe storage mechanism, where
/// the same terminals are operated for storing a state and readout").
///
/// The I-V model is a logistic transfer curve (60-90 mV/dec style swing)
/// mirrored for p-type, scaled by a triode/saturation drain factor — enough
/// to reproduce the four separated branches of the TCAD data in Fig. 10(b).
#pragma once

#include <string_view>

namespace cim::ferfet {

/// Non-volatile polarity stored at the program gate.
enum class Polarity { kNType, kPType };
/// Non-volatile Vt state stored at the control gate.
enum class VtState { kLrs, kHrs };

std::string_view polarity_name(Polarity p);
std::string_view vt_state_name(VtState s);

/// Device parameters (24 nm gate length reference device of Fig. 10).
struct FeRfetParams {
  double gate_length_nm = 24.0;
  double i_on_ua = 10.0;        ///< on current at |Vcg| = vdd (uA)
  double i_off_na = 0.1;        ///< residual off current (nA)
  double vt_n = 0.4;            ///< n-branch threshold, LRS (V)
  double vt_p = -0.4;           ///< p-branch threshold, LRS (V)
  double fe_vt_shift = 0.8;     ///< HRS adds this to |Vt| (V): HRS is off at vdd
  double v_boost = 1.8;         ///< boosted WL read voltage that overcomes HRS
  double swing_mv_dec = 90.0;   ///< subthreshold swing
  double vdd = 1.0;             ///< operating voltage (V)
  double v_program = 2.5;       ///< min |V| to flip a Fe state (2-3x vdd)
  double t_program_ns = 10.0;
  double e_program_pj = 0.05;
  double t_switch_ns = 0.1;     ///< logic switching delay
  double e_switch_pj = 0.002;
};

/// One FeRFET device with two non-volatile Fe states.
class FeRfet {
 public:
  explicit FeRfet(FeRfetParams params = {}, Polarity polarity = Polarity::kNType,
                  VtState vt = VtState::kLrs);

  const FeRfetParams& params() const { return params_; }
  Polarity polarity() const { return polarity_; }
  VtState vt_state() const { return vt_; }

  /// Programs the polarity through the program gate; the write only takes
  /// effect when |v_pg| >= v_program (positive -> n-type, negative -> p).
  /// Returns true if the state actually switched domains.
  bool program_polarity(double v_pg);

  /// Programs the control-gate Fe layer: |v_cg| >= v_program required
  /// (positive -> LRS / low Vt, negative -> HRS / high Vt).
  bool program_vt(double v_cg);

  /// Effective threshold voltage of the current state (sign follows
  /// polarity: negative for p-type).
  double effective_vt() const;

  /// Drain current (uA) for a *gate-source* voltage and drain-source
  /// voltage: the n-branch conducts for v_gs above vt, the p-branch for
  /// v_gs below its (negative) vt — the Fig. 10(b) sweep convention.
  double drain_current_ua(double v_gs, double v_ds) const;

  /// Logic-level view at gate-source voltage v_gs (threshold ~10% of i_on).
  bool conducts(double v_gs) const;

  /// Circuit-level view: absolute gate voltage with the conventional source
  /// rail per polarity (n-type source at GND, p-type source at VDD), i.e.
  /// v_gs = v_gate for n and v_gate - vdd for p.
  bool conducts_at_gate(double v_gate) const;

 private:
  FeRfetParams params_;
  Polarity polarity_;
  VtState vt_;
};

}  // namespace cim::ferfet
