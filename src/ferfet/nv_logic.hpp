/// \file nv_logic.hpp
/// \brief Non-volatile FeFET building blocks the paper lists as already
///        demonstrated (Section V.D): look-up tables [100, 107] and
///        non-volatile flip-flops [106].
///
/// - `FerfetLut`: a 2^n-entry LUT whose truth table lives in the
///   control-gate ferroelectric of 2^n FeRFETs; evaluation one-hot selects
///   a single cell through its wired-AND input gates and senses it. The
///   configuration survives power-off — the FPGA-style use case of [100].
/// - `NvFlipFlop`: a D flip-flop with a ferroelectric shadow cell: normal
///   clocked operation is volatile; `checkpoint()` programs the state into
///   the Fe layer, `power_cycle()` destroys the volatile latch, `restore()`
///   brings the checkpointed state back [106].
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "eda/truth_table.hpp"
#include "ferfet/ferfet_device.hpp"

namespace cim::ferfet {

/// A FeRFET look-up table storing an n-input Boolean function (n <= 6).
class FerfetLut {
 public:
  explicit FerfetLut(int inputs, FeRfetParams params = {});

  int inputs() const { return inputs_; }
  std::size_t size() const { return cells_.size(); }

  /// Programs the LUT from a truth table (var count must match).
  void program(const eda::TruthTable& tt);

  /// Evaluates one input assignment (one-hot select + sense, 1 step).
  bool eval(std::uint64_t assignment);

  /// Reads the whole stored configuration back (non-volatility check).
  eda::TruthTable stored() const;

  /// Accounting.
  std::size_t programs() const { return programs_; }
  std::size_t evals() const { return evals_; }
  double energy_pj() const { return energy_pj_; }

 private:
  int inputs_;
  FeRfetParams params_;
  std::vector<FeRfet> cells_;
  std::size_t programs_ = 0;
  std::size_t evals_ = 0;
  double energy_pj_ = 0.0;
};

/// A D flip-flop with a ferroelectric shadow bit.
class NvFlipFlop {
 public:
  explicit NvFlipFlop(FeRfetParams params = {});

  /// Clock edge: captures d into the volatile master/slave latch.
  void clock(bool d);
  /// Current (volatile) output Q; throws if the latch is invalid after a
  /// power cycle without restore.
  bool q() const;
  bool valid() const { return valid_; }

  /// Programs the current Q into the ferroelectric shadow cell.
  void checkpoint();
  /// Supply loss: the volatile latch forgets; the shadow survives.
  void power_cycle();
  /// Recalls the shadow state into the latch.
  void restore();

  double energy_pj() const { return energy_pj_; }

 private:
  FeRfetParams params_;
  FeRfet shadow_;
  bool q_ = false;
  bool valid_ = true;
  double energy_pj_ = 0.0;
};

}  // namespace cim::ferfet
