#include "ferfet/bnn_engine.hpp"

#include <stdexcept>

namespace cim::ferfet {

FerfetBnnEngine::FerfetBnnEngine(const util::Matrix& weight_signs,
                                 FeRfetParams params)
    : in_(weight_signs.cols()),
      out_(weight_signs.rows()),
      array_(2 * weight_signs.cols(), weight_signs.rows(), params) {
  if (weight_signs.empty())
    throw std::invalid_argument("FerfetBnnEngine: empty weights");
  for (std::size_t o = 0; o < out_; ++o) {
    for (std::size_t i = 0; i < in_; ++i) {
      const bool w = weight_signs(o, i) >= 0.0;
      array_.store(2 * i, o, w);
      array_.store(2 * i + 1, o, !w);
    }
  }
  // Weight programming is a one-time (non-volatile) cost; inference costs
  // are measured from here.
  baseline_time_ns_ = array_.stats().time_ns;
  baseline_energy_pj_ = array_.stats().energy_pj;
  baseline_reads_ = array_.stats().reads;
}

std::vector<int> FerfetBnnEngine::forward(const std::vector<bool>& x) {
  if (x.size() != in_) throw std::invalid_argument("FerfetBnnEngine: dim");
  std::vector<int> y(out_);
  for (std::size_t o = 0; o < out_; ++o) {
    const auto matches = array_.read_match_count(o, x);
    y[o] = 2 * static_cast<int>(matches) - static_cast<int>(in_);
  }
  return y;
}

BnnEngineCosts FerfetBnnEngine::costs() const {
  BnnEngineCosts c;
  c.time_ns = array_.stats().time_ns - baseline_time_ns_;
  c.energy_pj = array_.stats().energy_pj - baseline_energy_pj_;
  c.sensing_steps = array_.stats().reads - baseline_reads_;
  return c;
}

void FerfetBnnEngine::reset_costs() {
  baseline_time_ns_ = array_.stats().time_ns;
  baseline_energy_pj_ = array_.stats().energy_pj;
  baseline_reads_ = array_.stats().reads;
}

}  // namespace cim::ferfet
