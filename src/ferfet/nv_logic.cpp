#include "ferfet/nv_logic.hpp"

#include <stdexcept>

namespace cim::ferfet {

FerfetLut::FerfetLut(int inputs, FeRfetParams params)
    : inputs_(inputs), params_(params) {
  if (inputs < 1 || inputs > 6)
    throw std::invalid_argument("FerfetLut: inputs in [1,6]");
  cells_.assign(1ULL << inputs, FeRfet(params, Polarity::kNType, VtState::kHrs));
}

void FerfetLut::program(const eda::TruthTable& tt) {
  if (tt.vars() != inputs_)
    throw std::invalid_argument("FerfetLut::program: var count mismatch");
  for (std::uint64_t m = 0; m < tt.size(); ++m) {
    cells_[m].program_vt(tt.get(m) ? params_.v_program : -params_.v_program);
    energy_pj_ += params_.e_program_pj;
  }
  ++programs_;
}

bool FerfetLut::eval(std::uint64_t assignment) {
  if (assignment >= cells_.size())
    throw std::out_of_range("FerfetLut::eval: assignment out of range");
  // One-hot select: the addressed cell is read at the nominal bias; a
  // stored 1 (LRS) conducts, a stored 0 (HRS) does not.
  const double v_mid = 0.5 * (params_.vdd + params_.fe_vt_shift);
  ++evals_;
  energy_pj_ += params_.e_switch_pj;
  return cells_[assignment].conducts(v_mid);
}

eda::TruthTable FerfetLut::stored() const {
  eda::TruthTable tt(inputs_);
  const double v_mid = 0.5 * (params_.vdd + params_.fe_vt_shift);
  for (std::uint64_t m = 0; m < tt.size(); ++m)
    if (cells_[m].conducts(v_mid)) tt.set(m, true);
  return tt;
}

NvFlipFlop::NvFlipFlop(FeRfetParams params)
    : params_(params), shadow_(params, Polarity::kNType, VtState::kHrs) {}

void NvFlipFlop::clock(bool d) {
  q_ = d;
  valid_ = true;
  energy_pj_ += params_.e_switch_pj;
}

bool NvFlipFlop::q() const {
  if (!valid_)
    throw std::logic_error("NvFlipFlop: latch invalid after power loss");
  return q_;
}

void NvFlipFlop::checkpoint() {
  if (!valid_) throw std::logic_error("NvFlipFlop: nothing to checkpoint");
  shadow_.program_vt(q_ ? params_.v_program : -params_.v_program);
  energy_pj_ += params_.e_program_pj;
}

void NvFlipFlop::power_cycle() {
  // The volatile latch loses its state; the ferroelectric shadow does not.
  q_ = false;
  valid_ = false;
}

void NvFlipFlop::restore() {
  const double v_mid = 0.5 * (params_.vdd + params_.fe_vt_shift);
  q_ = shadow_.conducts(v_mid);
  valid_ = true;
  energy_pj_ += params_.e_switch_pj;
}

}  // namespace cim::ferfet
