/// \file lim_array.hpp
/// \brief Logic-in-Memory cell topologies and arrays (Section V.C / Fig. 12).
///
/// Fig. 12(a) — AND-array-like cell: one FeRFET per crosspoint. Step 1: a
/// high set voltage on the wordline programs the control-gate Fe state; the
/// stored state is input A. Step 2: input B is applied on the same wordline
/// "using a distinctly smaller VDD" while the program line is biased for
/// dynamic readout. Encoding: B=0 drives the WL at a small read bias (above
/// the LRS threshold, below the HRS one), B=1 at the boosted level that
/// overcomes even the HRS threshold — so the cell conducts iff A OR B, and
/// the inverting sense amp on the bitline yields NOR(A, B).
///
/// Fig. 12(b) — NOR-array-like cell from a wired-AND RFET [102]: the
/// transistor conducts only when *all* its gates are asserted, so one cell
/// computes AND(stored S, applied X, select). A bitline with an inverting
/// pull-up across many rows then computes AND-OR-INVERT; pairs of rows
/// holding (w, !w) driven by (x, !x) yield XOR/XNOR in one dynamic step —
/// the primitive the FeRFET BNN engine builds on (Section V.D).
#pragma once

#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

#include "ferfet/ferfet_device.hpp"

namespace cim::ferfet {

/// Operation accounting shared by the LiM structures.
struct LimStats {
  std::size_t stores = 0;
  std::size_t reads = 0;
  double time_ns = 0.0;
  double energy_pj = 0.0;
};

/// Fig. 12(a): single-FeRFET AND-array-like cell computing (N)OR(A, B).
class AndArrayCell {
 public:
  explicit AndArrayCell(FeRfetParams params = {});

  /// Step 1: store A in the control-gate ferroelectric (A=1 -> LRS).
  void store(bool a);
  bool stored() const { return device_.vt_state() == VtState::kLrs; }

  /// Step 2: dynamic OR readout — applies B on the WL and senses the BL.
  bool read_or(bool b);
  /// Same step through the inverting sense amplifier: NOR(A, B).
  bool read_nor(bool b) { return !read_or(b); }

  const LimStats& stats() const { return stats_; }
  const FeRfet& device() const { return device_; }

 private:
  FeRfetParams params_;
  FeRfet device_;
  LimStats stats_;
};

/// Fig. 12(b): a grid of wired-AND FeRFET cells on shared bitlines.
class NorArray {
 public:
  NorArray(std::size_t rows, std::size_t cols, FeRfetParams params = {});

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  /// Stores one bit (non-volatile) at a crosspoint.
  void store(std::size_t row, std::size_t col, bool value);
  bool stored(std::size_t row, std::size_t col) const;

  /// Cell-level primitive: does the crosspoint conduct for (input, select)?
  bool cell_conducts(std::size_t row, std::size_t col, bool input,
                     bool select);

  /// AND-OR-INVERT over a column: !(OR over rows of (S & x_r & sel_r)).
  bool read_aoi(std::size_t col, const std::vector<bool>& inputs,
                const std::vector<bool>& select);

  /// Dynamic XNOR of the stored pair (rows 2k, 2k+1 holding w, !w) with the
  /// applied input x (applied as x, !x) — one sensing step.
  bool read_xnor(std::size_t pair, std::size_t col, bool x);

  /// Match count of a column of pairs against an input vector: the
  /// XNOR-popcount primitive (one integrating-sense step per column).
  std::size_t read_match_count(std::size_t col, const std::vector<bool>& x);

  const LimStats& stats() const { return stats_; }

 private:
  std::size_t index(std::size_t row, std::size_t col) const {
    if (row >= rows_ || col >= cols_) throw std::out_of_range("NorArray");
    return row * cols_ + col;
  }

  std::size_t rows_;
  std::size_t cols_;
  FeRfetParams params_;
  std::vector<FeRfet> cells_;
  LimStats stats_;
};

/// Result of an in-array adder sequence (Breyer et al. [103]).
struct AdderResult {
  bool sum = false;
  bool carry = false;
  std::size_t steps = 0;  ///< stores + dynamic reads used
};

/// Half adder executed in-array: carry by one wired-AND read, sum by one
/// XNOR read plus inversion.
AdderResult in_array_half_adder(NorArray& array, bool a, bool b);

/// Full adder: two chained XOR stages ("bit-passing" of the intermediate
/// back into the array) and a majority AOI read for the carry.
AdderResult in_array_full_adder(NorArray& array, bool a, bool b, bool cin);

}  // namespace cim::ferfet
