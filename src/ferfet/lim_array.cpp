#include "ferfet/lim_array.hpp"

namespace cim::ferfet {

AndArrayCell::AndArrayCell(FeRfetParams params)
    : params_(params), device_(params, Polarity::kNType, VtState::kHrs) {}

void AndArrayCell::store(bool a) {
  device_.program_vt(a ? params_.v_program : -params_.v_program);
  ++stats_.stores;
  stats_.time_ns += params_.t_program_ns;
  stats_.energy_pj += params_.e_program_pj;
}

bool AndArrayCell::read_or(bool b) {
  // B=0 -> small read bias (between LRS and HRS thresholds); B=1 -> boosted
  // level that overcomes HRS as well.
  const double v_low = 0.5 * (params_.vdd + params_.fe_vt_shift);  // mid-gap
  const double v_wl = b ? params_.v_boost : v_low;
  const bool conducts = device_.conducts(v_wl);
  ++stats_.reads;
  stats_.time_ns += params_.t_switch_ns;
  stats_.energy_pj += params_.e_switch_pj;
  return conducts;
}

NorArray::NorArray(std::size_t rows, std::size_t cols, FeRfetParams params)
    : rows_(rows), cols_(cols), params_(params) {
  if (rows == 0 || cols == 0) throw std::invalid_argument("NorArray: empty");
  cells_.assign(rows * cols, FeRfet(params, Polarity::kNType, VtState::kHrs));
}

void NorArray::store(std::size_t row, std::size_t col, bool value) {
  cells_[index(row, col)].program_vt(value ? params_.v_program
                                           : -params_.v_program);
  ++stats_.stores;
  stats_.time_ns += params_.t_program_ns;
  stats_.energy_pj += params_.e_program_pj;
}

bool NorArray::stored(std::size_t row, std::size_t col) const {
  return cells_[row * cols_ + col].vt_state() == VtState::kLrs;
}

bool NorArray::cell_conducts(std::size_t row, std::size_t col, bool input,
                             bool select) {
  // Wired-AND: the Fe-stored gate conducts only in LRS at the nominal read
  // bias; the input and select gates must both be asserted.
  const auto& dev = cells_[index(row, col)];
  const double v_low = 0.5 * (params_.vdd + params_.fe_vt_shift);
  const bool stored_ok = dev.conducts(v_low);
  return stored_ok && input && select;
}

bool NorArray::read_aoi(std::size_t col, const std::vector<bool>& inputs,
                        const std::vector<bool>& select) {
  if (inputs.size() != rows_ || select.size() != rows_)
    throw std::invalid_argument("read_aoi: need one input+select per row");
  bool any = false;
  std::size_t conducting = 0;
  for (std::size_t r = 0; r < rows_; ++r) {
    if (cell_conducts(r, col, inputs[r], select[r])) {
      any = true;
      ++conducting;
    }
  }
  ++stats_.reads;
  stats_.time_ns += params_.t_switch_ns;
  stats_.energy_pj +=
      params_.e_switch_pj * static_cast<double>(1 + conducting);
  return !any;  // inverting pull-up network (paper: response is inverted)
}

bool NorArray::read_xnor(std::size_t pair, std::size_t col, bool x) {
  const std::size_t r0 = 2 * pair;
  const std::size_t r1 = r0 + 1;
  if (r1 >= rows_) throw std::out_of_range("read_xnor: pair out of range");
  // Rows hold (w, !w); inputs applied as (x, !x). BL discharges iff
  // (w & x) | (!w & !x) = XNOR(w, x); the inverting sense yields XOR, so
  // XNOR is the complement output tap of the same sensing step.
  const bool c0 = cell_conducts(r0, col, x, true);
  const bool c1 = cell_conducts(r1, col, !x, true);
  ++stats_.reads;
  stats_.time_ns += params_.t_switch_ns;
  stats_.energy_pj += params_.e_switch_pj * 2.0;
  return c0 || c1;
}

std::size_t NorArray::read_match_count(std::size_t col,
                                       const std::vector<bool>& x) {
  if (x.size() * 2 != rows_)
    throw std::invalid_argument("read_match_count: rows must be 2*|x|");
  std::size_t matches = 0;
  for (std::size_t k = 0; k < x.size(); ++k)
    if (read_xnor(k, col, x[k])) ++matches;
  // The per-pair reads above already accounted energy; integrating all pair
  // currents in one sensing window collapses the time to a single step.
  stats_.time_ns -= params_.t_switch_ns * static_cast<double>(x.size() - 1);
  stats_.reads -= x.size() - 1;
  return matches;
}

AdderResult in_array_half_adder(NorArray& array, bool a, bool b) {
  AdderResult res;
  // carry = AND(a, b): store a, apply b on the input gate, sense one cell.
  array.store(0, 0, a);
  res.carry = array.cell_conducts(0, 0, b, true);
  // sum = XOR(a, b): store the (a, !a) pair, apply (b, !b), invert XNOR.
  array.store(0, 1, a);
  array.store(1, 1, !a);
  res.sum = !array.read_xnor(0, 1, b);
  res.steps = 3 /*stores*/ + 2 /*reads*/;
  return res;
}

AdderResult in_array_full_adder(NorArray& array, bool a, bool b, bool cin) {
  AdderResult res;
  // Stage 1: t = XOR(a, b).
  array.store(0, 0, a);
  array.store(1, 0, !a);
  const bool t = !array.read_xnor(0, 0, b);
  // Bit-passing: write t back as a stored pair.
  array.store(0, 1, t);
  array.store(1, 1, !t);
  res.sum = !array.read_xnor(0, 1, cin);
  // carry = MAJ(a,b,cin) = (a&b) | (cin & (a^b)): two wired-AND terms
  // sensed on one AOI bitline. Store a in row 0 and t in row 1 of col 2;
  // inputs b and cin drive the respective input gates.
  array.store(0, 2, a);
  array.store(1, 2, t);
  std::vector<bool> inputs(array.rows(), false);
  std::vector<bool> select(array.rows(), false);
  inputs[0] = b;
  inputs[1] = cin;
  select[0] = select[1] = true;
  res.carry = !array.read_aoi(2, inputs, select);
  res.steps = 6 /*stores*/ + 3 /*reads*/;
  return res;
}

}  // namespace cim::ferfet
