/// \file mil_cells.hpp
/// \brief Memory-in-Logic cell topologies (Section V.B / Fig. 11).
///
/// "FeFETs are implemented within an existing logic circuit to enhance the
/// functionality or locally store data." The flagship cell is the
/// programmable XOR/XNOR of Fig. 11: four FeRFETs with three gates each;
/// the ferroelectric sits only at the program gates, and the signals P/!P
/// configure the cell to compute XOR or XNOR of the volatile inputs A and B
/// in a static, pass-transistor style. "The big benefit of this cell is
/// that the data paths for programming and operation are completely
/// separated."
///
/// Structural realization (switch-level, conflict-checked):
///   T3/T4 form a complementary inverter producing NB = !B;
///   T1 (program P)  : gate A, passes B  to OUT;
///   T2 (program !P) : gate A, passes NB to OUT.
/// With P = n-type on T1: A=1 -> OUT=B, A=0 -> OUT=!B  => XNOR.
/// With P = p-type on T1 (reprogrammed): the roles swap  => XOR.
#pragma once

#include <cstddef>

#include "ferfet/ferfet_device.hpp"

namespace cim::ferfet {

/// Which function the Fig. 11 cell is programmed to compute.
enum class MilFunction { kXor, kXnor };

/// Accounting for one cell.
struct MilCellStats {
  std::size_t evaluations = 0;
  std::size_t reprograms = 0;
  double time_ns = 0.0;
  double energy_pj = 0.0;
};

/// The programmable XOR/XNOR Memory-in-Logic cell of Fig. 11.
class XorXnorCell {
 public:
  explicit XorXnorCell(FeRfetParams params = {},
                       MilFunction function = MilFunction::kXnor);

  /// Re-programs the stored function by driving the program gates with
  /// +/- v_program; the data path is untouched.
  void program(MilFunction function);
  MilFunction function() const { return function_; }

  /// Static evaluation of the pass-transistor network. Throws
  /// std::logic_error if the network would float or short (cell design
  /// invariant: exactly one pass branch conducts).
  bool eval(bool a, bool b);

  const MilCellStats& stats() const { return stats_; }
  /// Device count (the cell uses four transistors).
  static constexpr std::size_t transistor_count() { return 4; }

 private:
  FeRfetParams params_;
  MilFunction function_;
  FeRfet t1_;  ///< pass B, program P
  FeRfet t2_;  ///< pass NB, program !P
  FeRfet t3_;  ///< inverter pull-up (p)
  FeRfet t4_;  ///< inverter pull-down (n)
  MilCellStats stats_;
};

}  // namespace cim::ferfet
