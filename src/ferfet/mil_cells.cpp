#include "ferfet/mil_cells.hpp"

#include <stdexcept>

namespace cim::ferfet {

XorXnorCell::XorXnorCell(FeRfetParams params, MilFunction function)
    : params_(params),
      function_(function),
      t1_(params, Polarity::kNType, VtState::kLrs),
      t2_(params, Polarity::kPType, VtState::kLrs),
      t3_(params, Polarity::kPType, VtState::kLrs),
      t4_(params, Polarity::kNType, VtState::kLrs) {
  program(function);
  stats_.reprograms = 0;  // construction-time programming is free
  stats_.time_ns = 0.0;
  stats_.energy_pj = 0.0;
}

void XorXnorCell::program(MilFunction function) {
  // P rides t1's program gate, !P rides t2's: XNOR = (n, p), XOR = (p, n).
  const double vp = params_.v_program;
  if (function == MilFunction::kXnor) {
    t1_.program_polarity(+vp);
    t2_.program_polarity(-vp);
  } else {
    t1_.program_polarity(-vp);
    t2_.program_polarity(+vp);
  }
  function_ = function;
  ++stats_.reprograms;
  stats_.time_ns += params_.t_program_ns;
  stats_.energy_pj += 2.0 * params_.e_program_pj;
}

bool XorXnorCell::eval(bool a, bool b) {
  const double vdd = params_.vdd;
  const double va = a ? vdd : 0.0;
  const double vb_gate = b ? vdd : 0.0;

  // Inverter T3 (p, gate B, source VDD) / T4 (n, gate B, source GND).
  const bool t3_on = t3_.conducts_at_gate(vb_gate);  // p: conducts when B low
  const bool t4_on = t4_.conducts_at_gate(vb_gate);  // n: conducts when B high
  if (t3_on == t4_on)
    throw std::logic_error("XorXnorCell: inverter contention/float");
  const bool nb = t3_on;  // pulled to VDD when T3 conducts

  // Pass branches (gate = A on both; complementary polarities).
  const bool t1_on = t1_.conducts_at_gate(va);
  const bool t2_on = t2_.conducts_at_gate(va);
  if (t1_on == t2_on)
    throw std::logic_error("XorXnorCell: pass network contention/float");

  ++stats_.evaluations;
  stats_.time_ns += params_.t_switch_ns;
  stats_.energy_pj += 4.0 * params_.e_switch_pj;

  return t1_on ? b : nb;
}

}  // namespace cim::ferfet
