/// \file bnn_engine.hpp
/// \brief FeRFET binary-neural-network engine (Section V.D).
///
/// "One such target application are binary neural networks. Particularly
/// the very efficient XOR and XNOR implementation enabled by the RFET base
/// technology is suitable ... The Fe layer allows non-volatility which can
/// be used to store weights. In contrast to memristors, which carry out
/// computation in analog domain, FeRFETs can enable logic computation in
/// the digital domain without the need of extensive peripheral circuits."
///
/// The engine stores each binary weight as a (w, !w) row pair of a NorArray
/// column and computes a BNN dense layer as XNOR match counts:
///     y_o = 2 * matches(col o) - in_dim.
/// Costs are digital (no DAC/ADC); the Fig. 12 bench contrasts this with a
/// ReRAM analog mapping whose energy is ADC-dominated.
#pragma once

#include <cstddef>
#include <vector>

#include "ferfet/lim_array.hpp"
#include "util/matrix.hpp"

namespace cim::ferfet {

/// Cost summary of one inference pass.
struct BnnEngineCosts {
  double time_ns = 0.0;
  double energy_pj = 0.0;
  std::size_t sensing_steps = 0;
};

/// A binary dense layer on a FeRFET NOR array.
class FerfetBnnEngine {
 public:
  /// `weight_signs` is (out x in); entry >= 0 encodes +1, < 0 encodes -1.
  explicit FerfetBnnEngine(const util::Matrix& weight_signs,
                           FeRfetParams params = {});

  std::size_t in_dim() const { return in_; }
  std::size_t out_dim() const { return out_; }

  /// Integer layer output: y_o = 2 * popcount(XNOR(w_o, x)) - in_dim.
  /// `x` encodes +1 as true.
  std::vector<int> forward(const std::vector<bool>& x);

  /// Costs accumulated since construction / last reset.
  BnnEngineCosts costs() const;
  void reset_costs();

  const NorArray& array() const { return array_; }

 private:
  std::size_t in_;
  std::size_t out_;
  NorArray array_;
  double baseline_time_ns_ = 0.0;
  double baseline_energy_pj_ = 0.0;
  std::size_t baseline_reads_ = 0;
};

}  // namespace cim::ferfet
