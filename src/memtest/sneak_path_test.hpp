/// \file sneak_path_test.hpp
/// \brief Sneak-path parallel test (Section III.B, Kannan et al. [46]).
///
/// "Because of the resistive and bidirectional characteristics of ReRAM
/// cells, the current [flows] through both the targeted ReRAM cell and
/// adjacent unintended paths. In this way, when tests are applied to one
/// ReRAM cell, the defect information of the adjacent ReRAM cells in the
/// region of detection can be detected simultaneously."
///
/// The test programs a known background, probes a sparse grid of cells and
/// compares each measured current (target + sneak loops within the biasing
/// window) against the fault-free reference. A deviation flags the probe's
/// region of detection (ROD). Fewer probes than cells -> parallel speedup;
/// resolution is the ROD, not the cell.
#pragma once

#include <cstddef>
#include <vector>

#include "crossbar/crossbar.hpp"
#include "fault/fault_map.hpp"

namespace cim::memtest {

/// Configuration of the sneak-path test.
struct SneakTestConfig {
  std::size_t window = 2;          ///< ROD half-width (biasing window)
  double threshold_frac = 0.08;    ///< relative deviation that flags a ROD
  bool background_checkerboard = true;  ///< background pattern (vs all-LRS)
  /// Probe under both the background and its complement: a stuck cell whose
  /// stuck value matches the first background is invisible to that pass.
  bool complement_pass = true;
};

/// One flagged region of detection.
struct FlaggedRegion {
  std::size_t probe_row = 0;
  std::size_t probe_col = 0;
  double measured_ua = 0.0;
  double reference_ua = 0.0;
};

/// Result of a sneak-path test run.
struct SneakTestResult {
  std::vector<FlaggedRegion> flagged;
  std::size_t probes = 0;
  std::size_t setup_writes = 0;
  double time_ns = 0.0;
  double energy_pj = 0.0;
};

/// Runs the test: programs the background, probes a stride-`window` grid,
/// flags RODs whose current deviates beyond the threshold.
SneakTestResult run_sneak_path_test(crossbar::Crossbar& xbar,
                                    const SneakTestConfig& cfg = {});

/// Fraction of injected *stuck-at / over-forming* faults lying inside at
/// least one flagged ROD (the fault classes the method targets).
double sneak_coverage(const fault::FaultMap& injected,
                      const SneakTestResult& result, std::size_t window);

}  // namespace cim::memtest
