#include "memtest/wear_leveling.hpp"

#include <stdexcept>

namespace cim::memtest {

WearLeveledMemory::WearLeveledMemory(std::size_t rows, std::size_t bits,
                                     double endurance_mean,
                                     std::size_t rotate_every,
                                     std::uint64_t seed)
    : rows_(rows), bits_(bits), rotate_every_(rotate_every),
      shadow_(rows, 0) {
  if (rows == 0 || bits == 0 || bits > 64)
    throw std::invalid_argument("WearLeveledMemory: rows>=1, bits in [1,64]");
  crossbar::CrossbarConfig cfg;
  cfg.rows = rows;
  cfg.cols = bits;
  cfg.levels = 2;
  cfg.model_ir_drop = false;
  auto tech = device::technology_params(device::Technology::kReRamHfOx);
  tech.endurance_mean = endurance_mean;
  tech.endurance_sigma_log = 0.3;
  tech.read_disturb_prob = 0.0;
  tech.write_disturb_prob = 0.0;
  cfg.tech_override = tech;
  cfg.seed = seed;
  xbar_ = std::make_unique<crossbar::Crossbar>(cfg);
}

std::size_t WearLeveledMemory::physical_row(std::size_t logical_row) const {
  if (logical_row >= rows_) throw std::out_of_range("WearLeveledMemory");
  return (logical_row + offset_) % rows_;
}

void WearLeveledMemory::write(std::size_t logical_row, std::uint64_t value) {
  // Only `bits_` columns exist; mask so the read-back check is meaningful.
  if (bits_ < 64) value &= (1ULL << bits_) - 1;
  if (rotate_every_ > 0 && writes_ > 0 && writes_ % rotate_every_ == 0) {
    // Advance the mapping: relocate every logical row's content by one
    // physical row (simulated as a bulk copy from the shadow state).
    offset_ = (offset_ + 1) % rows_;
    for (std::size_t lr = 0; lr < rows_; ++lr) {
      const std::size_t pr = physical_row(lr);
      for (std::size_t b = 0; b < bits_; ++b)
        xbar_->write_bit(pr, b, (shadow_[lr] >> b) & 1ULL);
    }
  }

  const std::size_t pr = physical_row(logical_row);
  for (std::size_t b = 0; b < bits_; ++b)
    xbar_->write_bit(pr, b, (value >> b) & 1ULL);
  shadow_[logical_row] = value;
  ++writes_;

  // Read-back check: first mismatch = first data loss.
  if (!failed_) {
    std::uint64_t got = 0;
    for (std::size_t b = 0; b < bits_; ++b)
      if (xbar_->read_bit(pr, b)) got |= 1ULL << b;
    if (got != value)
      failed_ = true;
    else
      writes_survived_ = writes_;
  }
}

std::uint64_t WearLeveledMemory::read(std::size_t logical_row) {
  const std::size_t pr = physical_row(logical_row);
  std::uint64_t v = 0;
  for (std::size_t b = 0; b < bits_; ++b)
    if (xbar_->read_bit(pr, b)) v |= 1ULL << b;
  return v;
}

WearLevelingReport run_wear_leveling_experiment(std::size_t rows,
                                                double endurance_mean,
                                                double hot_fraction,
                                                std::uint64_t max_writes,
                                                util::Rng& rng) {
  WearLevelingReport rep;
  const std::uint64_t seed = rng();

  auto run = [&](std::size_t rotate_every) -> std::uint64_t {
    WearLeveledMemory mem(rows, 16, endurance_mean, rotate_every, seed);
    util::Rng wl(seed ^ 0xABCD);
    for (std::uint64_t w = 0; w < max_writes && !mem.failed(); ++w) {
      const std::size_t row =
          wl.bernoulli(hot_fraction) ? 0 : wl.uniform_int(rows);
      mem.write(row, wl());
    }
    return mem.writes_survived();
  };

  rep.static_lifetime = run(0);
  // Rotate roughly once per round of hot writes.
  rep.rotated_lifetime = run(std::max<std::size_t>(8, rows));
  rep.improvement = rep.static_lifetime
                        ? static_cast<double>(rep.rotated_lifetime) /
                              static_cast<double>(rep.static_lifetime)
                        : 0.0;
  return rep;
}

}  // namespace cim::memtest
