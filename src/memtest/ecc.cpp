#include "memtest/ecc.hpp"

#include <array>
#include <bit>
#include <cmath>
#include <stdexcept>

namespace cim::memtest {
namespace {

// Codeword bit layout (1-indexed Hamming positions 1..71):
//   positions 1,2,4,8,16,32,64 -> check bits c0..c6
//   remaining 64 positions     -> data bits d0..d63 in ascending order
// plus one overall parity bit outside the Hamming positions.

constexpr int kPositions = 71;  // Hamming positions (check + data)

constexpr bool is_power_of_two(int x) { return (x & (x - 1)) == 0; }

/// Maps data bit index (0..63) to its Hamming position (1..71).
constexpr std::array<int, 64> make_data_positions() {
  std::array<int, 64> map{};
  int d = 0;
  for (int pos = 1; pos <= kPositions; ++pos) {
    if (is_power_of_two(pos)) continue;
    map[static_cast<std::size_t>(d++)] = pos;
  }
  return map;
}

constexpr std::array<int, 64> kDataPos = make_data_positions();

/// Builds the 71-bit position vector from data + check bits.
std::array<bool, kPositions + 1> expand(const Codeword72& cw) {
  std::array<bool, kPositions + 1> bits{};  // index 1..71
  for (int d = 0; d < 64; ++d)
    bits[static_cast<std::size_t>(kDataPos[static_cast<std::size_t>(d)])] =
        (cw.data >> d) & 1ULL;
  int c = 0;
  for (int pos = 1; pos <= kPositions; pos <<= 1)
    bits[static_cast<std::size_t>(pos)] = (cw.check >> c++) & 1u;
  return bits;
}

/// Computes the syndrome (XOR of set positions) of a position vector.
int syndrome_of(const std::array<bool, kPositions + 1>& bits) {
  int s = 0;
  for (int pos = 1; pos <= kPositions; ++pos)
    if (bits[static_cast<std::size_t>(pos)]) s ^= pos;
  return s;
}

bool overall_parity_of(const std::array<bool, kPositions + 1>& bits) {
  bool p = false;
  for (int pos = 1; pos <= kPositions; ++pos)
    p ^= bits[static_cast<std::size_t>(pos)];
  return p;
}

}  // namespace

Codeword72 HammingSecDed::encode(std::uint64_t data) {
  Codeword72 cw;
  cw.data = data;
  cw.check = 0;
  // Check bit for position 2^k is the XOR of data positions with bit k set.
  auto bits = expand(cw);  // check bits zero for now
  const int s = syndrome_of(bits);
  int c = 0;
  for (int pos = 1; pos <= kPositions; pos <<= 1) {
    if (s & pos) cw.check |= static_cast<std::uint8_t>(1u << c);
    ++c;
  }
  bits = expand(cw);
  cw.parity = overall_parity_of(bits);
  return cw;
}

HammingSecDed::DecodeResult HammingSecDed::decode(const Codeword72& received) {
  DecodeResult res;
  auto bits = expand(received);
  const int s = syndrome_of(bits);
  const bool parity_mismatch = overall_parity_of(bits) != received.parity;

  if (s == 0 && !parity_mismatch) {
    res.data = received.data;
    res.status = EccStatus::kOk;
    return res;
  }
  if (s == 0 && parity_mismatch) {
    // Error on the parity bit itself: data is intact.
    res.data = received.data;
    res.status = EccStatus::kCorrected;
    return res;
  }
  if (parity_mismatch) {
    // Odd number of errors with nonzero syndrome: treat as single, correct.
    if (s <= kPositions) bits[static_cast<std::size_t>(s)] ^= true;
    std::uint64_t data = 0;
    for (int d = 0; d < 64; ++d)
      if (bits[static_cast<std::size_t>(kDataPos[static_cast<std::size_t>(d)])])
        data |= 1ULL << d;
    res.data = data;
    res.status = EccStatus::kCorrected;
    return res;
  }
  // Nonzero syndrome, parity matches: even error count >= 2 -> detected.
  res.data = received.data;
  res.status = EccStatus::kDetectedUncorrectable;
  return res;
}

void HammingSecDed::flip_bit(Codeword72& cw, int pos) {
  if (pos < 0 || pos > 71) throw std::out_of_range("flip_bit: pos in [0,71]");
  if (pos < 64) {
    cw.data ^= 1ULL << pos;
  } else if (pos < 71) {
    cw.check ^= static_cast<std::uint8_t>(1u << (pos - 64));
  } else {
    cw.parity = !cw.parity;
  }
}

EccStatus HammingSecDed::classify(const DecodeResult& result,
                                  std::uint64_t original, int errors_injected) {
  if (result.data == original) {
    if (errors_injected == 0) return EccStatus::kOk;
    if (result.status == EccStatus::kDetectedUncorrectable)
      return EccStatus::kDetectedUncorrectable;
    return EccStatus::kCorrected;
  }
  if (result.status == EccStatus::kDetectedUncorrectable)
    return EccStatus::kDetectedUncorrectable;
  return EccStatus::kMiscorrected;
}

double word_uncorrectable_probability(double ber) {
  if (ber < 0.0 || ber > 1.0)
    throw std::invalid_argument("word_uncorrectable_probability: ber in [0,1]");
  const double n = 72.0;
  const double p_ok = std::pow(1.0 - ber, n);
  const double p_one = n * ber * std::pow(1.0 - ber, n - 1.0);
  return 1.0 - p_ok - p_one;
}

double simulate_word_failure_rate(double ber, std::size_t words,
                                  util::Rng& rng) {
  if (words == 0) return 0.0;
  std::size_t failed = 0;
  for (std::size_t w = 0; w < words; ++w) {
    const std::uint64_t data = rng();
    auto cw = HammingSecDed::encode(data);
    int injected = 0;
    for (int bit = 0; bit < 72; ++bit) {
      if (rng.bernoulli(ber)) {
        HammingSecDed::flip_bit(cw, bit);
        ++injected;
      }
    }
    const auto dec = HammingSecDed::decode(cw);
    if (dec.data != data) ++failed;
  }
  return static_cast<double>(failed) / static_cast<double>(words);
}

}  // namespace cim::memtest
