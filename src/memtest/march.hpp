/// \file march.hpp
/// \brief March test engine and the March C* algorithm of Section III.B.
///
/// "A March test algorithm, named as March C*, was proposed for ReRAM fault
/// detection in [39]:
///     { up(r0, w1); up(r1, r1, w0); down(r0, w1); down(r1, w0); up(r0) }
/// By applying the test pattern in this designed order, each ReRAM cell
/// provides a six-bit signature from the six read operations."
///
/// The engine executes any march algorithm on a crossbar via its digital
/// bit interface, recording per-cell read signatures, mismatching reads,
/// operation counts and time/energy — the data behind the coverage/test-time
/// comparison bench.
#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "crossbar/crossbar.hpp"
#include "fault/fault_map.hpp"

namespace cim::memtest {

/// One march operation.
enum class MarchOp { kR0, kR1, kW0, kW1 };

/// Address order of a march element.
enum class AddressOrder { kUp, kDown };

/// One march element: an address order and a burst of operations applied to
/// each address before moving to the next.
struct MarchElement {
  AddressOrder order = AddressOrder::kUp;
  std::vector<MarchOp> ops;
};

/// A complete march algorithm.
struct MarchAlgorithm {
  std::string name;
  std::vector<MarchElement> elements;

  /// Total operations per cell (the 10N / 14N complexity figure).
  std::size_t ops_per_cell() const;
  /// Number of read operations per cell (signature length).
  std::size_t reads_per_cell() const;
};

/// March C* from the paper: 10N ops, six-bit signatures.
MarchAlgorithm march_cstar();
/// Classic March C- (reference point): {up(w0); up(r0,w1); up(r1,w0);
/// down(r0,w1); down(r1,w0); down(r0)}.
MarchAlgorithm march_cminus();
/// Trivial MATS+ (low coverage baseline): {up(w0); up(r0,w1); down(r1,w0)}.
MarchAlgorithm mats_plus();

/// A read that returned the wrong value.
struct MarchFailure {
  std::size_t row = 0;
  std::size_t col = 0;
  std::size_t element = 0;  ///< which march element
  std::size_t op = 0;       ///< which op within the element
  bool expected = false;
  bool observed = false;
};

/// Result of one march run.
struct MarchResult {
  bool pass = true;
  std::vector<MarchFailure> failures;
  /// Per-cell read signature, row-major; bit i = i-th read of the algorithm.
  std::vector<std::vector<bool>> signatures;
  std::size_t total_ops = 0;
  double time_ns = 0.0;
  double energy_pj = 0.0;
};

/// Executes the algorithm. The array is initialized to all-0 first (cost
/// excluded from the march op count, as is conventional).
MarchResult run_march(crossbar::Crossbar& xbar, const MarchAlgorithm& algo);

/// Fraction of the map's cell-level faults whose cell shows at least one
/// failing read; address-decoder faults count as covered when any failure
/// lands on either the logical or the aliased row.
double fault_coverage(const fault::FaultMap& injected, const MarchResult& result);

/// Diagnosis from a March C* six-bit signature (fault-free = 011010).
/// Returns a fault-kind name, "ok", or "unknown".
std::string diagnose_cstar_signature(const std::vector<bool>& signature);

}  // namespace cim::memtest
