#include "memtest/online_voltage_test.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "obs/obs.hpp"

namespace cim::memtest {
namespace {

/// Same live campaign counters the March scorer maintains (see march.cpp):
/// health.fault.{detected,escaped}.<Fig.-6-class>.
void count_fault_outcome(fault::FaultKind kind, bool detected) {
  const std::string name =
      std::string(detected ? "health.fault.detected." : "health.fault.escaped.") +
      std::string(fault::fault_name(kind));
  obs::Registry::global().counter(name).add(1);
}

/// Measures the column currents with the read voltage applied to rows
/// [lo, hi) only.
std::vector<double> measure_rows(crossbar::Crossbar& xbar, std::size_t lo,
                                 std::size_t hi, std::size_t* vmm_count) {
  std::vector<double> volts(xbar.rows(), 0.0);
  const double v = xbar.tech().v_read;
  for (std::size_t r = lo; r < hi; ++r) volts[r] = v;
  ++*vmm_count;
  return xbar.vmm(volts);
}

/// Reference currents for rows [lo, hi) from target conductances `g` (uS).
std::vector<double> reference_rows(const crossbar::Crossbar& xbar,
                                   const std::vector<std::vector<double>>& g,
                                   std::size_t lo, std::size_t hi) {
  std::vector<double> ref(xbar.cols(), 0.0);
  const double v = xbar.tech().v_read;
  for (std::size_t r = lo; r < hi; ++r)
    for (std::size_t c = 0; c < xbar.cols(); ++c) ref[c] += v * g[r][c];
  return ref;
}

}  // namespace

VoltageTestResult run_voltage_comparison_test(crossbar::Crossbar& xbar,
                                              const VoltageTestConfig& cfg) {
  if (cfg.group_rows == 0)
    throw std::invalid_argument("voltage test: group_rows >= 1");
  const std::size_t rows = xbar.rows();
  const std::size_t cols = xbar.cols();
  const auto& tech = xbar.tech();
  const auto& sch = xbar.scheme();
  const double delta_g = cfg.delta_levels * sch.step_us();

  VoltageTestResult res;
  const auto stats0 = xbar.stats();

  // Step 1: snapshot the current targets off-chip. We read the *target*
  // levels through noisy reads and quantize, emulating the stored copy.
  std::vector<std::vector<double>> g0(rows, std::vector<double>(cols, 0.0));
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c) {
      const int level = sch.nearest_level(xbar.read_conductance(r, c));
      g0[r][c] = sch.level_conductance_us(level);
    }

  // Threshold: per-cell programming spread of a group plus read noise, in
  // current. With program-and-verify each cell lands within the guard band,
  // so the per-cell error is bounded by ~guard/2; without verify it is the
  // technology's lognormal sigma around the mid conductance.
  const double v = tech.v_read;
  const double g_mid = 0.5 * (tech.g_on_us() + tech.g_off_us());
  const double cell_sigma_g = xbar.config().verified_writes
                                  ? 0.5 * sch.guard_band_us()
                                  : tech.write_sigma_log * g_mid;
  const double spread = cfg.sigma_multiplier * cell_sigma_g * v *
                        std::sqrt(static_cast<double>(cfg.group_rows));
  const double min_signal = 0.5 * v * delta_g;
  const double threshold = std::max(spread, min_signal);

  // One directional pass: shift all cells by +/- delta, then group-measure
  // and locate deviating cells by recursive halving.
  auto directional_pass = [&](bool increment) {
    std::vector<std::vector<double>> gt(rows, std::vector<double>(cols, 0.0));
    for (std::size_t r = 0; r < rows; ++r)
      for (std::size_t c = 0; c < cols; ++c) {
        const double target = increment ? g0[r][c] + delta_g : g0[r][c] - delta_g;
        gt[r][c] = std::clamp(target, tech.g_off_us(), tech.g_on_us());
        xbar.program_cell(r, c, gt[r][c]);
        ++res.cell_writes;
      }

    // Recursive localization of one flagged (row range, column).
    auto locate = [&](auto&& self, std::size_t lo, std::size_t hi,
                      std::size_t col) -> void {
      if (hi - lo == 1) {
        res.located.push_back({lo, col, increment});
        return;
      }
      const std::size_t mid = lo + (hi - lo) / 2;
      for (auto [a, b] : {std::pair{lo, mid}, std::pair{mid, hi}}) {
        const auto meas = measure_rows(xbar, a, b, &res.vmm_measurements);
        const auto ref = reference_rows(xbar, gt, a, b);
        if (std::abs(meas[col] - ref[col]) > threshold) self(self, a, b, col);
      }
    };

    for (std::size_t lo = 0; lo < rows; lo += cfg.group_rows) {
      const std::size_t hi = std::min(rows, lo + cfg.group_rows);
      const auto meas = measure_rows(xbar, lo, hi, &res.vmm_measurements);
      const auto ref = reference_rows(xbar, gt, lo, hi);
      for (std::size_t c = 0; c < cols; ++c)
        if (std::abs(meas[c] - ref[c]) > threshold) locate(locate, lo, hi, c);
    }
  };

  // Step 2-4 for SA0 (cells that cannot increment), then SA1.
  directional_pass(/*increment=*/true);
  directional_pass(/*increment=*/false);

  // Restore the original contents.
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c) {
      xbar.program_cell(r, c, g0[r][c]);
      ++res.cell_writes;
    }

  // De-duplicate cells located by both passes.
  std::sort(res.located.begin(), res.located.end(),
            [](const LocatedFault& a, const LocatedFault& b) {
              return std::tie(a.row, a.col, a.stuck_low) <
                     std::tie(b.row, b.col, b.stuck_low);
            });
  res.located.erase(std::unique(res.located.begin(), res.located.end(),
                                [](const LocatedFault& a, const LocatedFault& b) {
                                  return a.row == b.row && a.col == b.col;
                                }),
                    res.located.end());

  const auto stats1 = xbar.stats();
  res.time_ns = stats1.time_ns - stats0.time_ns;
  res.energy_pj = stats1.energy_pj - stats0.energy_pj;
  return res;
}

DetectionQuality voltage_test_quality(const fault::FaultMap& injected,
                                      const VoltageTestResult& result) {
  DetectionQuality q;
  std::size_t stuck_total = 0;
  std::size_t found = 0;
  for (const auto& fd : injected.all()) {
    const bool stuck = fd.kind == fault::FaultKind::kStuckAtZero ||
                       fd.kind == fault::FaultKind::kStuckAtOne ||
                       fd.kind == fault::FaultKind::kOverForming;
    if (!stuck) continue;
    ++stuck_total;
    bool hit = false;
    for (const auto& loc : result.located)
      if (loc.row == fd.row && loc.col == fd.col) {
        hit = true;
        break;
      }
    if (hit) ++found;
    if (obs::health_enabled()) count_fault_outcome(fd.kind, hit);
  }
  q.recall = stuck_total ? static_cast<double>(found) /
                               static_cast<double>(stuck_total)
                         : 1.0;

  std::size_t true_pos = 0;
  for (const auto& loc : result.located) {
    const auto fd = injected.cell_fault(loc.row, loc.col);
    if (fd && (fd->kind == fault::FaultKind::kStuckAtZero ||
               fd->kind == fault::FaultKind::kStuckAtOne ||
               fd->kind == fault::FaultKind::kOverForming))
      ++true_pos;
  }
  q.precision = result.located.empty()
                    ? 1.0
                    : static_cast<double>(true_pos) /
                          static_cast<double>(result.located.size());
  return q;
}

}  // namespace cim::memtest
