/// \file power_monitor.hpp
/// \brief On-line fault detection by monitoring dynamic power consumption
///        (Section III.C / Fig. 7, Liu et al. ITC'20 [52]).
///
/// "This method exploits the fact that ReRAM faults affect the dynamic power
/// consumption of ReRAM crossbars; it monitors the dynamic power of each
/// crossbar and determines the occurrence of faults when a changepoint is
/// detected in the monitored power-consumption time series. Moreover, when
/// faults are detected, it estimates the percentage of faulty cells by
/// training a machine-learning-based estimation model [on] the statistics of
/// the power-consumption profile."
///
/// Realization: a workload stream of random VMMs runs on the crossbar; each
/// cycle's array energy is one sample. A CUSUM detector flags the
/// changepoint; post-change power statistics feed a ridge-regression
/// estimator of the faulty-cell fraction, trained on synthetically faulted
/// arrays.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "crossbar/crossbar.hpp"
#include "fault/fault_map.hpp"
#include "util/changepoint.hpp"
#include "util/regression.hpp"
#include "util/rng.hpp"

namespace cim::memtest {

/// Configuration of a monitored workload run.
struct MonitorConfig {
  std::size_t cycles = 1200;            ///< total workload cycles
  double input_density = 0.5;           ///< probability a row is driven
  /// The workload repeats a fixed schedule of this many input vectors, so
  /// the power baseline is stationary and fault-induced shifts stand out
  /// (monitoring raw random workloads would bury the shift in input-driven
  /// variance).
  std::size_t workload_period = 16;
  /// Relative noise of the on-chip power sensor. Without it the simulated
  /// power would be numerically exact and the detector would alarm on any
  /// single disturb event — no physical sensor is that clean.
  double sensor_noise_frac = 0.005;
  util::CusumDetector::Config cusum{};  ///< detector tuning
};

/// Result of a monitored run.
struct MonitorRun {
  std::vector<double> power_mw;     ///< per-cycle dynamic power (raw)
  /// Seasonally adjusted residuals (raw minus per-phase baseline), starting
  /// at cycle `calibration_cycles` — the series the detector and the
  /// fault-rate estimator actually consume.
  std::vector<double> residual_mw;
  std::size_t calibration_cycles = 0;
  std::optional<std::size_t> alarm_cycle;     ///< CUSUM alarm position (cycles)
  std::optional<std::size_t> located_changepoint;  ///< offline estimate (cycles)
};

/// Drives `cycles` random VMMs through the crossbar, sampling per-cycle
/// dynamic power. If `inject` is set, the fault map is applied right after
/// cycle `inject_at_cycle` (Fig. 7 inserts faults after cycle 600).
MonitorRun run_monitored_workload(crossbar::Crossbar& xbar,
                                  const MonitorConfig& cfg, util::Rng& rng,
                                  const fault::FaultMap* inject = nullptr,
                                  std::size_t inject_at_cycle = 0);

/// Statistics of the power profile used as estimator features.
struct PowerFeatures {
  double post_mean = 0.0;
  double post_stddev = 0.0;
  double post_max = 0.0;
  double delta_mean = 0.0;     ///< post-change minus pre-change mean
  double delta_stddev = 0.0;
  /// Standardized shift: delta_mean over the pre-change noise level (works
  /// for zero-mean residual series where a ratio of means is meaningless).
  double relative_shift = 0.0;

  std::vector<double> to_vector() const;
  static std::size_t dim() { return 6; }
};

/// Extracts features around a changepoint (pre = [0, cp), post = [cp, end)).
PowerFeatures extract_features(const std::vector<double>& power,
                               std::size_t changepoint);

/// Ridge-regression estimator of the faulty-cell fraction.
class FaultRateEstimator {
 public:
  /// One training example.
  struct Example {
    PowerFeatures features;
    double fault_fraction = 0.0;
  };

  /// Fits on collected examples.
  void train(const std::vector<Example>& examples, double lambda = 1e-3);

  /// Estimated faulty-cell fraction, clamped to [0, 1].
  double estimate(const PowerFeatures& features) const;

  bool trained() const { return reg_.fitted(); }
  double r2(const std::vector<Example>& examples) const;

  /// Generates training data by faulting fresh arrays at random fractions,
  /// running the monitored workload and extracting features. The fault mix
  /// should match the field failure mode being estimated (power shifts are
  /// signed: SA0 lowers conductance, SA1 raises it).
  static std::vector<Example> generate_training_data(
      const crossbar::CrossbarConfig& array_cfg, const MonitorConfig& mon_cfg,
      std::size_t examples, util::Rng& rng,
      const fault::FaultMix& mix = fault::FaultMix{});

 private:
  util::RidgeRegression reg_;
};

}  // namespace cim::memtest
