#include "memtest/sneak_path_test.hpp"

#include <cmath>
#include <cstdint>

namespace cim::memtest {

SneakTestResult run_sneak_path_test(crossbar::Crossbar& xbar,
                                    const SneakTestConfig& cfg) {
  SneakTestResult res;
  const std::size_t rows = xbar.rows();
  const std::size_t cols = xbar.cols();

  const auto stats0 = xbar.stats();

  // One pass: program a background pattern, probe a stride grid such that
  // every cell lies inside some probe's window. A checkerboard keeps sneak
  // loops conductive enough to carry defect information while avoiding the
  // all-LRS worst-case current.
  auto pass = [&](bool invert) {
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t c = 0; c < cols; ++c) {
        bool bit = cfg.background_checkerboard ? (((r + c) & 1u) == 0) : true;
        if (invert) bit = !bit;
        xbar.write_bit(r, c, bit);
        ++res.setup_writes;
      }
    }
    const std::size_t stride = std::max<std::size_t>(1, 2 * cfg.window + 1);
    for (std::size_t r = cfg.window; r < rows + cfg.window; r += stride) {
      const std::size_t pr = std::min(r, rows - 1);
      for (std::size_t c = cfg.window; c < cols + cfg.window; c += stride) {
        const std::size_t pc = std::min(c, cols - 1);
        const double measured =
            xbar.read_current_with_sneak(pr, pc, cfg.window);
        const double reference =
            xbar.ideal_current_with_sneak(pr, pc, cfg.window);
        ++res.probes;
        if (reference > 0.0 &&
            std::abs(measured - reference) / reference > cfg.threshold_frac) {
          res.flagged.push_back({pr, pc, measured, reference});
        }
      }
    }
  };

  pass(false);
  if (cfg.complement_pass) pass(true);

  const auto stats1 = xbar.stats();
  res.time_ns = stats1.time_ns - stats0.time_ns;
  res.energy_pj = stats1.energy_pj - stats0.energy_pj;
  return res;
}

double sneak_coverage(const fault::FaultMap& injected,
                      const SneakTestResult& result, std::size_t window) {
  std::size_t total = 0;
  std::size_t covered = 0;
  for (const auto& fd : injected.all()) {
    const bool targeted = fd.kind == fault::FaultKind::kStuckAtZero ||
                          fd.kind == fault::FaultKind::kStuckAtOne ||
                          fd.kind == fault::FaultKind::kOverForming;
    if (!targeted) continue;
    ++total;
    for (const auto& region : result.flagged) {
      const std::size_t dr = region.probe_row > fd.row
                                 ? region.probe_row - fd.row
                                 : fd.row - region.probe_row;
      const std::size_t dc = region.probe_col > fd.col
                                 ? region.probe_col - fd.col
                                 : fd.col - region.probe_col;
      if (dr <= window && dc <= window) {
        ++covered;
        break;
      }
    }
  }
  if (total == 0) return 1.0;
  return static_cast<double>(covered) / static_cast<double>(total);
}

}  // namespace cim::memtest
