/// \file xabft.hpp
/// \brief X-ABFT: checksum-based algorithmic fault tolerance for crossbar
///        matrix operations (Section III.C, Liu et al. ITC'18 / TODAES'20).
///
/// "The basic idea of the X-ABFT method is to encode matrices with checksums
/// (the sum of each row or column) and compute using both original and
/// encoded data. Faults can be detected when discrepancies exist between the
/// checksums and the sum of the cells. Moreover, this method periodically
/// applies test-input vectors to extract signatures, and uses signatures for
/// fault localization and correction."
///
/// Realization: the weight matrix is stored on the crossbar in the *level*
/// domain (integer conductance levels); exact row/column checksums are kept
/// digitally at encode time.
///   - In-line detection: each MAC result is checked against the digital
///     checksum product (sum of outputs vs checksum-weighted input).
///   - Scrub: unit test-input signatures flag rows/columns; candidate cells
///     are read precisely, corrected from the row checksum and reprogrammed.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "crossbar/crossbar.hpp"
#include "fault/fault_map.hpp"
#include "util/matrix.hpp"

namespace cim::memtest {

/// Result of one checksum-verified MAC (binary input vector).
struct CheckedMac {
  std::vector<double> level_sums;  ///< per-column sum of x-selected levels
  bool checksum_ok = true;
  double residual_levels = 0.0;    ///< |analog sum - digital checksum|
};

/// One corrected (or uncorrectable) cell from a scrub pass.
struct CellCorrection {
  std::size_t row = 0;
  std::size_t col = 0;
  int observed_level = 0;
  int corrected_level = 0;
  bool reprogram_succeeded = false;  ///< false: hard fault, needs remap
};

/// Scrub outcome.
struct ScrubReport {
  std::vector<std::size_t> suspect_rows;
  std::vector<std::size_t> suspect_cols;
  std::vector<CellCorrection> corrections;
  std::size_t reads = 0;
  std::size_t writes = 0;
};

/// A level-domain matrix protected by X-ABFT checksums on a crossbar.
class XabftProtected {
 public:
  /// `levels` is (n x m) with integer entries in [0, levels-1]; the array
  /// configuration's rows/cols are overridden to n x m.
  XabftProtected(const util::Matrix& levels, crossbar::CrossbarConfig cfg,
                 double detect_threshold_levels = 4.0);

  std::size_t rows() const { return n_; }
  std::size_t cols() const { return m_; }

  /// MAC with binary input x (entries 0/1): per-column level sums decoded
  /// from the analog currents, verified against the digital row checksums.
  CheckedMac multiply(std::span<const double> x01);

  /// Localizes deviations via signatures, corrects soft errors by
  /// reprogramming the checksum-implied level, flags hard faults.
  ScrubReport scrub();

  /// Injects faults into the underlying array.
  void apply_faults(const fault::FaultMap& map);

  const crossbar::Crossbar& array() const { return xbar_; }
  /// Mutable access for error-injection experiments (soft upsets etc.).
  crossbar::Crossbar& array_mutable() { return xbar_; }
  /// Digital (exact) checksums captured at encode time.
  const std::vector<long>& row_checksums() const { return row_sums_; }
  const std::vector<long>& col_checksums() const { return col_sums_; }

  /// The ideal level-sum result for input x (test oracle).
  std::vector<double> ideal_multiply(std::span<const double> x01) const;

 private:
  /// Decodes a column current into a sum of levels given active-input count.
  double decode_level_sum(double current_ua, double active_inputs) const;

  std::size_t n_;
  std::size_t m_;
  double threshold_;
  util::Matrix stored_levels_;  ///< encode-time copy (for oracle only)
  std::vector<long> row_sums_;
  std::vector<long> col_sums_;
  crossbar::Crossbar xbar_;
};

}  // namespace cim::memtest
