/// \file ecc_memory.hpp
/// \brief ECC-protected ReRAM memory and the endurance-lifetime experiment
///        of Section III.C: "due to the limited endurance, more devices
///        will be worn out over time and eventually the number of hard
///        faults will exceed the ECC's correction capability."
///
/// Each 64-bit data word is stored as a Hamming (72,64) SEC-DED codeword in
/// one crossbar row. As write cycles accumulate, cells wear out into hard
/// stuck faults; single stuck bits per word stay correctable, but the
/// second stuck bit in the same word defeats the code.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "crossbar/crossbar.hpp"
#include "memtest/ecc.hpp"
#include "util/rng.hpp"

namespace cim::memtest {

/// A bank of ECC-protected 64-bit words on a crossbar (one word per row).
class EccMemory {
 public:
  /// `words` rows of 72 cells on the given technology. The base config's
  /// rows/cols are overridden.
  EccMemory(std::size_t words, crossbar::CrossbarConfig base);

  std::size_t words() const { return words_; }

  /// Encodes and stores `data` at `word`.
  void write(std::size_t word, std::uint64_t data);

  struct ReadResult {
    std::uint64_t data = 0;
    EccStatus status = EccStatus::kOk;  ///< the decoder's own verdict
    bool data_correct = false;          ///< ground truth vs shadow copy
  };
  /// Reads, decodes and classifies against the shadow copy.
  ReadResult read(std::size_t word);

  /// Lifetime counters since construction.
  struct Counters {
    std::uint64_t writes = 0;
    std::uint64_t reads = 0;
    std::uint64_t corrected = 0;
    std::uint64_t detected_uncorrectable = 0;
    std::uint64_t silent_corruptions = 0;  ///< wrong data, not flagged
  };
  const Counters& counters() const { return counters_; }

  const crossbar::Crossbar& array() const { return *xbar_; }
  /// Mutable access for post-mortem probing (bypasses the ECC layer).
  crossbar::Crossbar& array_mutable() { return *xbar_; }

 private:
  std::size_t words_;
  std::unique_ptr<crossbar::Crossbar> xbar_;
  std::vector<std::uint64_t> shadow_;
  Counters counters_;
};

/// Wear-out lifetime experiment: repeatedly rewrite random data into every
/// word of a low-endurance array and scrub-read; report when ECC first
/// corrects, first detects an uncorrectable word, and first returns silent
/// wrong data.
struct LifetimeReport {
  std::uint64_t cycles_run = 0;
  std::uint64_t first_correction_cycle = 0;        ///< 0 = never
  std::uint64_t first_uncorrectable_cycle = 0;     ///< 0 = never
  std::uint64_t first_silent_corruption_cycle = 0; ///< 0 = never
  double final_stuck_cell_fraction = 0.0;
};

LifetimeReport run_ecc_lifetime(std::size_t words, double endurance_mean,
                                std::uint64_t max_cycles, util::Rng& rng);

}  // namespace cim::memtest
