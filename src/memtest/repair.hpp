/// \file repair.hpp
/// \brief Redundancy repair: spare-row/column allocation from located
///        faults. Section III motivates the pipeline "fault detection ->
///        fault localization -> error recovery"; for hard faults the
///        recovery step is the classic memory repair: replace failing rows
///        and columns with spares.
///
/// The allocator runs must-repair analysis (a row with more faults than the
/// remaining column spares *must* take a row spare, and vice versa) followed
/// by a greedy most-faults-first assignment — the standard heuristic for
/// the NP-complete spare-allocation problem.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <vector>

#include "crossbar/crossbar.hpp"
#include "memtest/march.hpp"

namespace cim::memtest {

/// A faulty cell coordinate.
struct FaultSite {
  std::size_t row = 0;
  std::size_t col = 0;
};

/// Result of spare allocation.
struct RepairPlan {
  bool feasible = false;
  std::vector<std::size_t> repaired_rows;  ///< logical rows mapped to spares
  std::vector<std::size_t> repaired_cols;
  std::size_t spare_rows_used = 0;
  std::size_t spare_cols_used = 0;
};

/// Deduplicates march failures into fault sites.
std::vector<FaultSite> sites_from_march(const MarchResult& result);

/// Allocates spares to cover every fault site.
RepairPlan allocate_redundancy(const std::vector<FaultSite>& sites,
                               std::size_t spare_rows, std::size_t spare_cols);

/// A logical rows x cols array backed by a physical array with spare lines;
/// reads/writes are redirected through the repair plan.
class RepairedArray {
 public:
  /// Builds the physical array (rows+spare_rows x cols+spare_cols).
  RepairedArray(std::size_t rows, std::size_t cols, std::size_t spare_rows,
                std::size_t spare_cols, crossbar::CrossbarConfig base);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  /// Injects faults into the physical array (logical coordinates map 1:1
  /// onto the main region; spares can carry faults of their own).
  void apply_faults(const fault::FaultMap& physical_map);

  /// Installs a repair plan (logical rows/cols -> spare lines).
  /// Throws if the plan needs more spares than available.
  void install(const RepairPlan& plan);

  void write_bit(std::size_t row, std::size_t col, bool value);
  bool read_bit(std::size_t row, std::size_t col);

  crossbar::Crossbar& physical() { return *xbar_; }

 private:
  std::size_t physical_row(std::size_t r) const;
  std::size_t physical_col(std::size_t c) const;

  std::size_t rows_;
  std::size_t cols_;
  std::size_t spare_rows_;
  std::size_t spare_cols_;
  std::map<std::size_t, std::size_t> row_map_;  ///< logical -> spare physical
  std::map<std::size_t, std::size_t> col_map_;
  std::unique_ptr<crossbar::Crossbar> xbar_;
};

}  // namespace cim::memtest
