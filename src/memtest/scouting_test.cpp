#include "memtest/scouting_test.hpp"

namespace cim::memtest {

ScoutingTestResult run_scouting_test(crossbar::Crossbar& xbar,
                                     const ScoutingTestConfig& cfg) {
  ScoutingTestResult res;
  const std::size_t rows = xbar.rows();
  const std::size_t cols = xbar.cols();
  const std::size_t stride = std::max<std::size_t>(1, cfg.pair_stride);
  const auto stats0 = xbar.stats();

  for (std::size_t r = 0; r + 1 < rows; r += stride) {
    const std::size_t r1 = r;
    const std::size_t r2 = r + 1;
    for (std::size_t c = 0; c < cols; ++c) {
      for (int pattern = 0; pattern < 4; ++pattern) {
        const bool a = pattern & 1;
        const bool b = pattern & 2;
        xbar.write_bit(r1, c, a);
        xbar.write_bit(r2, c, b);
        res.writes += 2;

        struct Check {
          crossbar::ScoutOp op;
          bool expected;
        };
        const Check checks[] = {{crossbar::ScoutOp::kOr, a || b},
                                {crossbar::ScoutOp::kAnd, a && b},
                                {crossbar::ScoutOp::kXor, a != b}};
        for (const auto& chk : checks) {
          const bool observed = xbar.scout_read(r1, r2, c, chk.op);
          ++res.checks;
          if (observed != chk.expected)
            res.mismatches.push_back({r1, r2, c, chk.op, a, b, observed});
        }
      }
    }
  }

  const auto stats1 = xbar.stats();
  res.time_ns = stats1.time_ns - stats0.time_ns;
  res.energy_pj = stats1.energy_pj - stats0.energy_pj;
  return res;
}

double scouting_coverage(const fault::FaultMap& injected,
                         const ScoutingTestResult& result,
                         const ScoutingTestConfig& cfg, std::size_t rows) {
  const std::size_t stride = std::max<std::size_t>(1, cfg.pair_stride);
  auto tested_row = [&](std::size_t r) {
    // Row r is tested if it is the first or second element of some pair.
    if (r + 1 < rows && r % stride == 0) return true;
    return r >= 1 && (r - 1) % stride == 0 && (r - 1) + 1 < rows;
  };

  std::size_t total = 0;
  std::size_t covered = 0;
  for (const auto& fd : injected.all()) {
    if (fault::is_array_level(fd.kind)) continue;
    if (!tested_row(fd.row)) continue;
    ++total;
    for (const auto& mm : result.mismatches) {
      if (mm.col == fd.col && (mm.r1 == fd.row || mm.r2 == fd.row)) {
        ++covered;
        break;
      }
    }
  }
  if (total == 0) return 1.0;
  return static_cast<double>(covered) / static_cast<double>(total);
}

}  // namespace cim::memtest
