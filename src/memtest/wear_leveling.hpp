/// \file wear_leveling.hpp
/// \brief Wear leveling for write-endurance-limited arrays (Section III.C
///        cites i2WAP [48]: "improving non-volatile cache lifetime by
///        reducing inter- and intra-set write variations").
///
/// Hot rows wear out orders of magnitude before the array average when the
/// write stream is skewed. A rotating logical-to-physical row remap (start-
/// gap style) spreads the hot traffic across all physical rows, pushing the
/// first wear-out failure out by up to the skew factor. The experiment
/// compares static mapping against rotation under a hot-row workload.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "crossbar/crossbar.hpp"
#include "util/rng.hpp"

namespace cim::memtest {

/// A row-addressable bit memory with optional rotating wear leveling.
class WearLeveledMemory {
 public:
  /// `rows` logical rows of `bits` columns on a low-endurance array.
  /// When `rotate_every` > 0, the logical->physical mapping advances by one
  /// row after that many writes (start-gap without the gap row, since the
  /// simulator can remap atomically).
  WearLeveledMemory(std::size_t rows, std::size_t bits,
                    double endurance_mean, std::size_t rotate_every,
                    std::uint64_t seed);

  std::size_t rows() const { return rows_; }

  /// Writes a word to a logical row.
  void write(std::size_t logical_row, std::uint64_t value);
  /// Reads a logical row back.
  std::uint64_t read(std::size_t logical_row);

  /// True once any *written-back* readback mismatches (first data loss).
  bool failed() const { return failed_; }
  std::uint64_t writes_survived() const { return writes_survived_; }

  /// Physical row currently backing a logical row.
  std::size_t physical_row(std::size_t logical_row) const;

 private:
  std::size_t rows_;
  std::size_t bits_;
  std::size_t rotate_every_;
  std::size_t offset_ = 0;
  std::uint64_t writes_ = 0;
  std::uint64_t writes_survived_ = 0;
  bool failed_ = false;
  std::unique_ptr<crossbar::Crossbar> xbar_;
  std::vector<std::uint64_t> shadow_;
};

/// Hot-row lifetime experiment: a write stream hits row 0 with probability
/// `hot_fraction` (rest uniform); returns writes survived until the first
/// data loss, with and without rotation.
struct WearLevelingReport {
  std::uint64_t static_lifetime = 0;
  std::uint64_t rotated_lifetime = 0;
  double improvement = 0.0;
};

WearLevelingReport run_wear_leveling_experiment(std::size_t rows,
                                                double endurance_mean,
                                                double hot_fraction,
                                                std::uint64_t max_writes,
                                                util::Rng& rng);

}  // namespace cim::memtest
