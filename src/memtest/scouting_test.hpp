/// \file scouting_test.hpp
/// \brief Testing Scouting-logic-based CIM (Section III references Fieback
///        et al., ETS'20 [40]).
///
/// Scouting logic computes OR/AND/XOR by activating two rows at once and
/// comparing the summed bitline current against references. A cell that
/// passes normal single-cell read tests can still break scouting: its
/// conductance may sit inside the single-read guard band yet shift the
/// two-cell sum across a reference. This test writes all four input
/// combinations into sampled row pairs and checks every scouting op
/// against its Boolean expectation.
#pragma once

#include <cstddef>
#include <vector>

#include "crossbar/crossbar.hpp"
#include "fault/fault_map.hpp"

namespace cim::memtest {

/// One failing scouting check.
struct ScoutMismatch {
  std::size_t r1 = 0;
  std::size_t r2 = 0;
  std::size_t col = 0;
  crossbar::ScoutOp op = crossbar::ScoutOp::kOr;
  bool a = false;
  bool b = false;
  bool observed = false;
};

/// Result of a scouting-logic test run.
struct ScoutingTestResult {
  std::vector<ScoutMismatch> mismatches;
  std::size_t checks = 0;
  std::size_t writes = 0;
  double time_ns = 0.0;
  double energy_pj = 0.0;
};

/// Configuration: which row pairs to exercise.
struct ScoutingTestConfig {
  /// Pair stride: rows (r, r+1) for r in steps of `pair_stride`.
  std::size_t pair_stride = 2;
};

/// Runs the test: for each sampled row pair and every column, writes the
/// four (a, b) combinations and checks OR, AND and XOR reads.
ScoutingTestResult run_scouting_test(crossbar::Crossbar& xbar,
                                     const ScoutingTestConfig& cfg = {});

/// Fraction of injected cell faults on *tested* cells that produced at
/// least one mismatch.
double scouting_coverage(const fault::FaultMap& injected,
                         const ScoutingTestResult& result,
                         const ScoutingTestConfig& cfg, std::size_t rows);

}  // namespace cim::memtest
