#include "memtest/power_monitor.hpp"

#include <algorithm>
#include <cmath>

#include "util/stats.hpp"

namespace cim::memtest {

MonitorRun run_monitored_workload(crossbar::Crossbar& xbar,
                                  const MonitorConfig& cfg, util::Rng& rng,
                                  const fault::FaultMap* inject,
                                  std::size_t inject_at_cycle) {
  MonitorRun run;
  run.power_mw.reserve(cfg.cycles);
  util::CusumDetector detector(cfg.cusum);

  const double v = xbar.tech().v_read;

  // Fixed periodic input schedule (see MonitorConfig::workload_period).
  const std::size_t period = std::max<std::size_t>(1, cfg.workload_period);
  std::vector<std::vector<double>> schedule(period,
                                            std::vector<double>(xbar.rows()));
  for (auto& volts : schedule)
    for (double& vr : volts) vr = rng.bernoulli(cfg.input_density) ? v : 0.0;

  // The monitor first calibrates the per-phase power baseline over a few
  // periods, then applies CUSUM to the seasonally adjusted residuals —
  // otherwise the workload's own periodic variation buries the fault shift.
  const std::size_t calib_cycles = 4 * period;
  run.calibration_cycles = calib_cycles;
  std::vector<double> phase_sum(period, 0.0);
  std::vector<std::size_t> phase_n(period, 0);
  run.residual_mw.reserve(cfg.cycles);

  for (std::size_t cycle = 0; cycle < cfg.cycles; ++cycle) {
    if (inject && cycle == inject_at_cycle) xbar.apply_faults(*inject);

    const std::size_t phase = cycle % period;
    (void)xbar.vmm(schedule[phase]);

    // Dynamic power of the cycle: array energy over the read window, as
    // seen through the (noisy) power sensor.
    const double power_true =
        xbar.last_op_energy_pj() / xbar.tech().t_read_ns;  // pJ/ns = mW
    const double power =
        power_true * (1.0 + rng.normal(0.0, cfg.sensor_noise_frac));
    run.power_mw.push_back(power);

    if (cycle < calib_cycles) {
      phase_sum[phase] += power;
      ++phase_n[phase];
      continue;
    }
    const double baseline =
        phase_n[phase] ? phase_sum[phase] / static_cast<double>(phase_n[phase])
                       : power;
    const double residual = power - baseline;
    run.residual_mw.push_back(residual);
    if (detector.update(residual) && !run.alarm_cycle)
      run.alarm_cycle = calib_cycles + *detector.alarm_index();
  }

  if (const auto cp = util::locate_mean_shift(run.residual_mw))
    run.located_changepoint = calib_cycles + *cp;
  return run;
}

std::vector<double> PowerFeatures::to_vector() const {
  return {post_mean, post_stddev, post_max, delta_mean, delta_stddev,
          relative_shift};
}

PowerFeatures extract_features(const std::vector<double>& power,
                               std::size_t changepoint) {
  PowerFeatures f;
  if (power.empty()) return f;
  changepoint = std::min(changepoint, power.size() - 1);

  util::RunningStats pre, post;
  for (std::size_t i = 0; i < power.size(); ++i)
    (i < changepoint ? pre : post).add(power[i]);
  if (post.count() == 0) return f;

  f.post_mean = post.mean();
  f.post_stddev = post.stddev();
  f.post_max = post.max();
  f.delta_mean = post.mean() - pre.mean();
  f.delta_stddev = post.stddev() - pre.stddev();
  const double noise = pre.stddev();
  f.relative_shift = noise > 0.0 ? f.delta_mean / noise : 0.0;
  return f;
}

void FaultRateEstimator::train(const std::vector<Example>& examples,
                               double lambda) {
  std::vector<double> features;
  std::vector<double> targets;
  features.reserve(examples.size() * PowerFeatures::dim());
  targets.reserve(examples.size());
  for (const auto& ex : examples) {
    const auto row = ex.features.to_vector();
    features.insert(features.end(), row.begin(), row.end());
    targets.push_back(ex.fault_fraction);
  }
  reg_ = util::RidgeRegression(lambda);
  reg_.fit(features, targets, PowerFeatures::dim());
}

double FaultRateEstimator::estimate(const PowerFeatures& features) const {
  const auto row = features.to_vector();
  return std::clamp(reg_.predict(row), 0.0, 1.0);
}

double FaultRateEstimator::r2(const std::vector<Example>& examples) const {
  std::vector<double> features;
  std::vector<double> targets;
  for (const auto& ex : examples) {
    const auto row = ex.features.to_vector();
    features.insert(features.end(), row.begin(), row.end());
    targets.push_back(ex.fault_fraction);
  }
  return reg_.r2(features, targets);
}

std::vector<FaultRateEstimator::Example>
FaultRateEstimator::generate_training_data(
    const crossbar::CrossbarConfig& array_cfg, const MonitorConfig& mon_cfg,
    std::size_t examples, util::Rng& rng, const fault::FaultMix& mix) {
  std::vector<Example> out;
  out.reserve(examples);
  const std::size_t inject_at = mon_cfg.cycles / 2;

  for (std::size_t e = 0; e < examples; ++e) {
    auto cfg = array_cfg;
    cfg.seed = rng();
    crossbar::Crossbar xbar(cfg);

    // A random data pattern so the power baseline varies across examples.
    util::Matrix levels(cfg.rows, cfg.cols);
    for (double& v : levels.flat())
      v = static_cast<double>(rng.uniform_int(
          static_cast<std::uint64_t>(xbar.scheme().levels())));
    xbar.program_levels(levels);

    const double fraction = rng.uniform(0.005, 0.25);
    const auto n_faults = static_cast<std::size_t>(
        fraction * static_cast<double>(cfg.rows * cfg.cols));
    const auto map = fault::FaultMap::with_fault_count(
        cfg.rows, cfg.cols, std::max<std::size_t>(1, n_faults), mix, rng);

    auto run = run_monitored_workload(xbar, mon_cfg, rng, &map, inject_at);

    // Features come from the seasonally adjusted residuals, around the
    // located (or known) changepoint.
    const std::size_t cp_cycles = run.located_changepoint.value_or(inject_at);
    const std::size_t cp_res =
        cp_cycles > run.calibration_cycles ? cp_cycles - run.calibration_cycles
                                           : 0;
    Example ex;
    ex.features = extract_features(run.residual_mw, cp_res);
    ex.fault_fraction = map.faulty_cell_fraction();
    out.push_back(ex);
  }
  return out;
}

}  // namespace cim::memtest
