#include "memtest/march.hpp"

#include <stdexcept>
#include <string>

#include "obs/obs.hpp"

namespace cim::memtest {

namespace {

/// Live per-fault-class campaign coverage: every scored injected fault
/// bumps health.fault.detected.<class> or health.fault.escaped.<class>
/// (class names from fault_name(), the Fig. 6 taxonomy), so a long test
/// campaign can be scraped mid-run. Health-tier gated — coverage scoring
/// is off the hot path, but campaign loops call it millions of times.
void count_fault_outcome(fault::FaultKind kind, bool detected) {
  const std::string name =
      std::string(detected ? "health.fault.detected." : "health.fault.escaped.") +
      std::string(fault::fault_name(kind));
  obs::Registry::global().counter(name).add(1);
}

}  // namespace

std::size_t MarchAlgorithm::ops_per_cell() const {
  std::size_t n = 0;
  for (const auto& e : elements) n += e.ops.size();
  return n;
}

std::size_t MarchAlgorithm::reads_per_cell() const {
  std::size_t n = 0;
  for (const auto& e : elements)
    for (const auto op : e.ops)
      if (op == MarchOp::kR0 || op == MarchOp::kR1) ++n;
  return n;
}

MarchAlgorithm march_cstar() {
  using enum MarchOp;
  return {"March C*",
          {{AddressOrder::kUp, {kR0, kW1}},
           {AddressOrder::kUp, {kR1, kR1, kW0}},
           {AddressOrder::kDown, {kR0, kW1}},
           {AddressOrder::kDown, {kR1, kW0}},
           {AddressOrder::kUp, {kR0}}}};
}

MarchAlgorithm march_cminus() {
  using enum MarchOp;
  return {"March C-",
          {{AddressOrder::kUp, {kW0}},
           {AddressOrder::kUp, {kR0, kW1}},
           {AddressOrder::kUp, {kR1, kW0}},
           {AddressOrder::kDown, {kR0, kW1}},
           {AddressOrder::kDown, {kR1, kW0}},
           {AddressOrder::kDown, {kR0}}}};
}

MarchAlgorithm mats_plus() {
  using enum MarchOp;
  return {"MATS+",
          {{AddressOrder::kUp, {kW0}},
           {AddressOrder::kUp, {kR0, kW1}},
           {AddressOrder::kDown, {kR1, kW0}}}};
}

MarchResult run_march(crossbar::Crossbar& xbar, const MarchAlgorithm& algo) {
  const std::size_t rows = xbar.rows();
  const std::size_t cols = xbar.cols();
  const std::size_t n = rows * cols;

  MarchResult res;
  res.signatures.assign(n, {});

  const auto stats_before_init = xbar.stats();
  // Conventional pre-march initialization to the all-0 background.
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c) xbar.write_bit(r, c, false);
  const auto stats_after_init = xbar.stats();

  for (std::size_t ei = 0; ei < algo.elements.size(); ++ei) {
    const auto& elem = algo.elements[ei];
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t addr =
          (elem.order == AddressOrder::kUp) ? k : n - 1 - k;
      const std::size_t r = addr / cols;
      const std::size_t c = addr % cols;
      for (std::size_t oi = 0; oi < elem.ops.size(); ++oi) {
        switch (elem.ops[oi]) {
          case MarchOp::kW0:
            xbar.write_bit(r, c, false);
            break;
          case MarchOp::kW1:
            xbar.write_bit(r, c, true);
            break;
          case MarchOp::kR0:
          case MarchOp::kR1: {
            const bool expected = elem.ops[oi] == MarchOp::kR1;
            const bool observed = xbar.read_bit(r, c);
            res.signatures[addr].push_back(observed);
            if (observed != expected) {
              res.pass = false;
              res.failures.push_back({r, c, ei, oi, expected, observed});
            }
            break;
          }
        }
        ++res.total_ops;
      }
    }
  }

  const auto stats_end = xbar.stats();
  res.time_ns = stats_end.time_ns - stats_after_init.time_ns;
  res.energy_pj = stats_end.energy_pj - stats_after_init.energy_pj;
  (void)stats_before_init;
  return res;
}

double fault_coverage(const fault::FaultMap& injected, const MarchResult& result) {
  const auto faults = injected.all();
  if (faults.empty()) return 1.0;

  const bool health = obs::health_enabled();
  std::size_t covered = 0;
  for (const auto& fd : faults) {
    bool hit = false;
    for (const auto& f : result.failures) {
      if (fd.kind == fault::FaultKind::kAddressDecoder) {
        if (f.row == fd.row || f.row == fd.aux_row) {
          hit = true;
          break;
        }
      } else if (fd.kind == fault::FaultKind::kCoupling) {
        if ((f.row == fd.aux_row && f.col == fd.aux_col) ||
            (f.row == fd.row && f.col == fd.col)) {
          hit = true;
          break;
        }
      } else {
        if (f.row == fd.row && f.col == fd.col) {
          hit = true;
          break;
        }
      }
    }
    if (hit) ++covered;
    if (health) count_fault_outcome(fd.kind, hit);
  }
  return static_cast<double>(covered) / static_cast<double>(faults.size());
}

std::string diagnose_cstar_signature(const std::vector<bool>& signature) {
  if (signature.size() != 6) return "unknown";
  // Reads of March C*: r0 r1 r1 r0 r1 r0 -> fault-free 0 1 1 0 1 0.
  const std::vector<bool> ok = {false, true, true, false, true, false};
  if (signature == ok) return "ok";
  const std::vector<bool> all0(6, false);
  const std::vector<bool> all1(6, true);
  if (signature == all0) return "SA0/TF-up";
  if (signature == all1) return "SA1";
  // TF-down: first w0 fails, reads after the failed w0 see 1.
  const std::vector<bool> tfd = {false, true, true, true, true, true};
  if (signature == tfd) return "TF-down";
  return "unknown";
}

}  // namespace cim::memtest
