/// \file online_voltage_test.hpp
/// \brief On-line voltage-comparison stuck-at test (Section III.C, Xia et
///        al., DAC'17 [38]).
///
/// The four steps the paper describes:
///   1. read and store the crossbar conductances off-chip;
///   2. write a fixed increment (decrement) to all cells — stuck-at-0
///      (stuck-at-1) cells cannot follow;
///   3. apply test voltages to a group of rows at a time and capture all
///      column outputs concurrently;
///   4. compare each output voltage with the reference computed under the
///      assumption that every cell was tuned successfully — a discrepancy
///      means at least one stuck cell in the selected rows/column.
/// "By carrying out this fault-detection method bidirectionally, faults can
/// be located" — realized here by recursive halving of a flagged row group.
#pragma once

#include <cstddef>
#include <vector>

#include "crossbar/crossbar.hpp"
#include "fault/fault_map.hpp"

namespace cim::memtest {

/// Configuration of the on-line voltage-comparison test.
struct VoltageTestConfig {
  std::size_t group_rows = 8;   ///< rows driven concurrently in step 3
  double delta_levels = 4.0;    ///< conductance shift in level steps (step 2)
  double sigma_multiplier = 4.0;///< threshold in units of the expected spread
};

/// One located stuck cell.
struct LocatedFault {
  std::size_t row = 0;
  std::size_t col = 0;
  bool stuck_low = false;  ///< true: SA0-like (cannot increment)
};

/// Result of one test run.
struct VoltageTestResult {
  std::vector<LocatedFault> located;
  std::size_t vmm_measurements = 0;
  std::size_t cell_writes = 0;
  double time_ns = 0.0;
  double energy_pj = 0.0;
};

/// Runs the full bidirectional test and restores the original conductance
/// targets afterwards.
VoltageTestResult run_voltage_comparison_test(crossbar::Crossbar& xbar,
                                              const VoltageTestConfig& cfg = {});

/// Precision/recall of located faults against the injected stuck-at faults.
struct DetectionQuality {
  double recall = 0.0;     ///< injected stuck-at faults that were located
  double precision = 0.0;  ///< located faults that match an injected one
};
DetectionQuality voltage_test_quality(const fault::FaultMap& injected,
                                      const VoltageTestResult& result);

}  // namespace cim::memtest
