#include "memtest/repair.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace cim::memtest {

std::vector<FaultSite> sites_from_march(const MarchResult& result) {
  std::set<std::pair<std::size_t, std::size_t>> seen;
  std::vector<FaultSite> sites;
  for (const auto& f : result.failures)
    if (seen.insert({f.row, f.col}).second) sites.push_back({f.row, f.col});
  return sites;
}

RepairPlan allocate_redundancy(const std::vector<FaultSite>& sites,
                               std::size_t spare_rows,
                               std::size_t spare_cols) {
  RepairPlan plan;
  // Working copy of uncovered sites.
  std::vector<FaultSite> open = sites;
  std::size_t rows_left = spare_rows;
  std::size_t cols_left = spare_cols;

  auto count_by = [&](bool by_row) {
    std::map<std::size_t, std::size_t> counts;
    for (const auto& s : open) ++counts[by_row ? s.row : s.col];
    return counts;
  };
  auto cover_row = [&](std::size_t r) {
    plan.repaired_rows.push_back(r);
    --rows_left;
    open.erase(std::remove_if(open.begin(), open.end(),
                              [&](const FaultSite& s) { return s.row == r; }),
               open.end());
  };
  auto cover_col = [&](std::size_t c) {
    plan.repaired_cols.push_back(c);
    --cols_left;
    open.erase(std::remove_if(open.begin(), open.end(),
                              [&](const FaultSite& s) { return s.col == c; }),
               open.end());
  };

  // Must-repair passes: a line with more faults than the other dimension's
  // remaining spares can only be covered by its own spare.
  bool changed = true;
  while (changed && !open.empty()) {
    changed = false;
    for (const auto& [r, n] : count_by(true)) {
      if (n > cols_left) {
        if (rows_left == 0) return plan;  // infeasible
        cover_row(r);
        changed = true;
        break;
      }
    }
    if (changed) continue;
    for (const auto& [c, n] : count_by(false)) {
      if (n > rows_left) {
        if (cols_left == 0) return plan;
        cover_col(c);
        changed = true;
        break;
      }
    }
  }

  // Greedy: repeatedly cover the line with the most uncovered faults.
  while (!open.empty()) {
    const auto rows = count_by(true);
    const auto cols = count_by(false);
    std::size_t best_row = 0, best_row_n = 0;
    for (const auto& [r, n] : rows)
      if (n > best_row_n) {
        best_row = r;
        best_row_n = n;
      }
    std::size_t best_col = 0, best_col_n = 0;
    for (const auto& [c, n] : cols)
      if (n > best_col_n) {
        best_col = c;
        best_col_n = n;
      }
    const bool use_row =
        (best_row_n >= best_col_n && rows_left > 0) || cols_left == 0;
    if (use_row && rows_left > 0) {
      cover_row(best_row);
    } else if (cols_left > 0) {
      cover_col(best_col);
    } else {
      return plan;  // out of spares
    }
  }

  plan.feasible = true;
  plan.spare_rows_used = plan.repaired_rows.size();
  plan.spare_cols_used = plan.repaired_cols.size();
  return plan;
}

RepairedArray::RepairedArray(std::size_t rows, std::size_t cols,
                             std::size_t spare_rows, std::size_t spare_cols,
                             crossbar::CrossbarConfig base)
    : rows_(rows), cols_(cols), spare_rows_(spare_rows),
      spare_cols_(spare_cols) {
  if (rows == 0 || cols == 0)
    throw std::invalid_argument("RepairedArray: empty array");
  base.rows = rows + spare_rows;
  base.cols = cols + spare_cols;
  xbar_ = std::make_unique<crossbar::Crossbar>(base);
}

void RepairedArray::apply_faults(const fault::FaultMap& physical_map) {
  xbar_->apply_faults(physical_map);
}

void RepairedArray::install(const RepairPlan& plan) {
  if (plan.repaired_rows.size() > spare_rows_ ||
      plan.repaired_cols.size() > spare_cols_)
    throw std::invalid_argument("RepairedArray: plan exceeds spares");
  row_map_.clear();
  col_map_.clear();
  std::size_t next_spare_row = rows_;
  for (const auto r : plan.repaired_rows) row_map_[r] = next_spare_row++;
  std::size_t next_spare_col = cols_;
  for (const auto c : plan.repaired_cols) col_map_[c] = next_spare_col++;
}

std::size_t RepairedArray::physical_row(std::size_t r) const {
  if (r >= rows_) throw std::out_of_range("RepairedArray: row");
  const auto it = row_map_.find(r);
  return it == row_map_.end() ? r : it->second;
}

std::size_t RepairedArray::physical_col(std::size_t c) const {
  if (c >= cols_) throw std::out_of_range("RepairedArray: col");
  const auto it = col_map_.find(c);
  return it == col_map_.end() ? c : it->second;
}

void RepairedArray::write_bit(std::size_t row, std::size_t col, bool value) {
  xbar_->write_bit(physical_row(row), physical_col(col), value);
}

bool RepairedArray::read_bit(std::size_t row, std::size_t col) {
  return xbar_->read_bit(physical_row(row), physical_col(col));
}

}  // namespace cim::memtest
