/// \file ecc.hpp
/// \brief Hamming SEC-DED error-correcting code for ReRAM memory words.
///
/// Section III.C: "Error-correction codes (ECC) can also be used in ReRAM
/// memory, when the bit error rate (BER) is small (e.g., < 1e-5). However,
/// due to the limited endurance, more devices will be worn out over time and
/// eventually the number of hard faults will exceed the ECC's correction
/// capability." The (72,64) SEC-DED code here corrects one bit and detects
/// two per word; the analytic + Monte-Carlo failure models show exactly the
/// break-down the paper describes as the fault count grows.
#pragma once

#include <cstdint>

#include "util/rng.hpp"

namespace cim::memtest {

/// A (72,64) codeword: 64 data bits + 7 Hamming check bits + overall parity.
struct Codeword72 {
  std::uint64_t data = 0;   ///< systematic data bits
  std::uint8_t check = 0;   ///< 7 Hamming bits (low) — bit 7 unused
  bool parity = false;      ///< overall parity bit
};

/// Decode outcome.
enum class EccStatus {
  kOk,                ///< no error detected
  kCorrected,         ///< single-bit error corrected
  kDetectedUncorrectable,  ///< double-bit error detected, not correctable
  kMiscorrected,      ///< >=3 errors aliased to a "corrected" state (silent)
};

/// Hamming (72,64) SEC-DED codec.
class HammingSecDed {
 public:
  static Codeword72 encode(std::uint64_t data);

  struct DecodeResult {
    std::uint64_t data = 0;
    EccStatus status = EccStatus::kOk;
  };
  /// Decodes; `status` is the codec's own verdict (it cannot see kMiscorrected
  /// — use `classify` with the ground truth for that).
  static DecodeResult decode(const Codeword72& received);

  /// Flips bit `pos` (0..71) of a codeword: 0..63 data, 64..70 check, 71 parity.
  static void flip_bit(Codeword72& cw, int pos);

  /// Ground-truth classification of a decode against the original data.
  static EccStatus classify(const DecodeResult& result, std::uint64_t original,
                            int errors_injected);
};

/// Analytic probability that a 72-bit word has >= 2 bit errors at raw BER p
/// (i.e., exceeds SEC capability).
double word_uncorrectable_probability(double ber);

/// Monte-Carlo: fraction of words not correctly recovered when each of the
/// 72 bits flips independently with probability `ber`.
double simulate_word_failure_rate(double ber, std::size_t words, util::Rng& rng);

}  // namespace cim::memtest
