#include "memtest/xabft.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cim::memtest {

XabftProtected::XabftProtected(const util::Matrix& levels,
                               crossbar::CrossbarConfig cfg,
                               double detect_threshold_levels)
    : n_(levels.rows()),
      m_(levels.cols()),
      threshold_(detect_threshold_levels),
      stored_levels_(levels),
      row_sums_(levels.rows(), 0),
      col_sums_(levels.cols(), 0),
      xbar_((cfg.rows = levels.rows(), cfg.cols = levels.cols(),
             cfg.verified_writes = true, cfg)) {
  if (levels.empty()) throw std::invalid_argument("XabftProtected: empty matrix");
  const int max_level = xbar_.scheme().levels() - 1;
  for (std::size_t r = 0; r < n_; ++r) {
    for (std::size_t c = 0; c < m_; ++c) {
      const int lvl = static_cast<int>(levels(r, c));
      if (lvl < 0 || lvl > max_level)
        throw std::invalid_argument("XabftProtected: level out of range");
      row_sums_[r] += lvl;
      col_sums_[c] += lvl;
    }
  }
  xbar_.program_levels(levels);
}

double XabftProtected::decode_level_sum(double current_ua,
                                        double active_inputs) const {
  // I = V * sum(g_off + level*step) over active rows
  //   = V * (active * g_off + step * level_sum)
  const auto& tech = xbar_.tech();
  const auto& sch = xbar_.scheme();
  const double v = tech.v_read;
  return (current_ua / v - active_inputs * tech.g_off_us()) / sch.step_us();
}

CheckedMac XabftProtected::multiply(std::span<const double> x01) {
  if (x01.size() != n_) throw std::invalid_argument("XabftProtected: dim mismatch");
  std::vector<double> volts(n_);
  const double v = xbar_.tech().v_read;
  double active = 0.0;
  double digital_checksum = 0.0;
  for (std::size_t r = 0; r < n_; ++r) {
    const bool on = x01[r] >= 0.5;
    volts[r] = on ? v : 0.0;
    if (on) {
      active += 1.0;
      digital_checksum += static_cast<double>(row_sums_[r]);
    }
  }

  const auto currents = xbar_.vmm(volts);
  CheckedMac res;
  res.level_sums.resize(m_);
  double analog_total = 0.0;
  for (std::size_t c = 0; c < m_; ++c) {
    res.level_sums[c] = decode_level_sum(currents[c], active);
    analog_total += res.level_sums[c];
  }
  res.residual_levels = std::abs(analog_total - digital_checksum);
  // Tolerance grows with the number of contributing cells.
  const double tol =
      threshold_ * std::sqrt(std::max(1.0, active * static_cast<double>(m_)) / 64.0 + 1.0);
  res.checksum_ok = res.residual_levels <= tol;
  return res;
}

std::vector<double> XabftProtected::ideal_multiply(
    std::span<const double> x01) const {
  if (x01.size() != n_) throw std::invalid_argument("ideal_multiply: dim mismatch");
  std::vector<double> y(m_, 0.0);
  for (std::size_t r = 0; r < n_; ++r) {
    if (x01[r] < 0.5) continue;
    for (std::size_t c = 0; c < m_; ++c) y[c] += stored_levels_(r, c);
  }
  return y;
}

ScrubReport XabftProtected::scrub() {
  ScrubReport rep;

  // Signature extraction: precise per-cell level reads, compared against the
  // digital checksums row-wise and column-wise.
  util::Matrix observed(n_, m_);
  for (std::size_t r = 0; r < n_; ++r)
    for (std::size_t c = 0; c < m_; ++c) {
      const double g = xbar_.read_conductance(r, c);
      observed(r, c) = xbar_.scheme().nearest_level(g);
      ++rep.reads;
    }

  for (std::size_t r = 0; r < n_; ++r) {
    long sum = 0;
    for (std::size_t c = 0; c < m_; ++c)
      sum += static_cast<long>(observed(r, c));
    if (sum != row_sums_[r]) rep.suspect_rows.push_back(r);
  }
  for (std::size_t c = 0; c < m_; ++c) {
    long sum = 0;
    for (std::size_t r = 0; r < n_; ++r)
      sum += static_cast<long>(observed(r, c));
    if (sum != col_sums_[c]) rep.suspect_cols.push_back(c);
  }

  // Candidate cells: intersection of suspect rows and columns. For each,
  // the checksum-implied correct level is row_sum - sum(other cells in row).
  for (const std::size_t r : rep.suspect_rows) {
    for (const std::size_t c : rep.suspect_cols) {
      long others = 0;
      for (std::size_t cc = 0; cc < m_; ++cc)
        if (cc != c) others += static_cast<long>(observed(r, cc));
      const long implied = row_sums_[r] - others;
      const int observed_level = static_cast<int>(observed(r, c));
      if (implied == observed_level) continue;  // this (r,c) pair is clean
      const int max_level = xbar_.scheme().levels() - 1;
      const int corrected =
          std::clamp(static_cast<int>(implied), 0, max_level);

      CellCorrection fix;
      fix.row = r;
      fix.col = c;
      fix.observed_level = observed_level;
      fix.corrected_level = corrected;

      xbar_.program_cell(r, c,
                         xbar_.scheme().level_conductance_us(corrected));
      ++rep.writes;
      const double g_after = xbar_.read_conductance(r, c);
      ++rep.reads;
      fix.reprogram_succeeded =
          xbar_.scheme().nearest_level(g_after) == corrected;
      rep.corrections.push_back(fix);
    }
  }
  return rep;
}

void XabftProtected::apply_faults(const fault::FaultMap& map) {
  xbar_.apply_faults(map);
}

}  // namespace cim::memtest
