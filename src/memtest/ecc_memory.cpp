#include "memtest/ecc_memory.hpp"

#include <stdexcept>

namespace cim::memtest {

EccMemory::EccMemory(std::size_t words, crossbar::CrossbarConfig base)
    : words_(words), shadow_(words, 0) {
  if (words == 0) throw std::invalid_argument("EccMemory: zero words");
  base.rows = words;
  base.cols = 72;
  base.levels = 2;
  xbar_ = std::make_unique<crossbar::Crossbar>(base);
}

void EccMemory::write(std::size_t word, std::uint64_t data) {
  if (word >= words_) throw std::out_of_range("EccMemory::write");
  const auto cw = HammingSecDed::encode(data);
  for (int b = 0; b < 64; ++b)
    xbar_->write_bit(word, static_cast<std::size_t>(b), (cw.data >> b) & 1ULL);
  for (int b = 0; b < 7; ++b)
    xbar_->write_bit(word, static_cast<std::size_t>(64 + b),
                     (cw.check >> b) & 1u);
  xbar_->write_bit(word, 71, cw.parity);
  shadow_[word] = data;
  ++counters_.writes;
}

EccMemory::ReadResult EccMemory::read(std::size_t word) {
  if (word >= words_) throw std::out_of_range("EccMemory::read");
  Codeword72 cw;
  for (int b = 0; b < 64; ++b)
    if (xbar_->read_bit(word, static_cast<std::size_t>(b)))
      cw.data |= 1ULL << b;
  for (int b = 0; b < 7; ++b)
    if (xbar_->read_bit(word, static_cast<std::size_t>(64 + b)))
      cw.check |= static_cast<std::uint8_t>(1u << b);
  cw.parity = xbar_->read_bit(word, 71);

  const auto dec = HammingSecDed::decode(cw);
  ReadResult res;
  res.data = dec.data;
  res.status = dec.status;
  res.data_correct = dec.data == shadow_[word];
  ++counters_.reads;
  if (dec.status == EccStatus::kCorrected) ++counters_.corrected;
  if (dec.status == EccStatus::kDetectedUncorrectable)
    ++counters_.detected_uncorrectable;
  if (!res.data_correct && dec.status != EccStatus::kDetectedUncorrectable)
    ++counters_.silent_corruptions;
  return res;
}

LifetimeReport run_ecc_lifetime(std::size_t words, double endurance_mean,
                                std::uint64_t max_cycles, util::Rng& rng) {
  crossbar::CrossbarConfig base;
  base.tech = device::Technology::kReRamHfOx;
  auto tech = device::technology_params(base.tech);
  tech.endurance_mean = endurance_mean;
  tech.endurance_sigma_log = 0.4;
  tech.write_disturb_prob = 0.0;  // isolate the wear-out mechanism
  tech.read_disturb_prob = 0.0;
  base.tech_override = tech;
  base.seed = rng();

  EccMemory mem(words, base);
  LifetimeReport rep;

  for (std::uint64_t cycle = 1; cycle <= max_cycles; ++cycle) {
    // Rewrite every word with fresh random data, then scrub-read.
    for (std::size_t w = 0; w < words; ++w) mem.write(w, rng());
    bool any_corr = false, any_unc = false, any_silent = false;
    for (std::size_t w = 0; w < words; ++w) {
      const auto r = mem.read(w);
      if (r.status == EccStatus::kCorrected) any_corr = true;
      if (r.status == EccStatus::kDetectedUncorrectable) any_unc = true;
      if (!r.data_correct && r.status != EccStatus::kDetectedUncorrectable)
        any_silent = true;
    }
    if (any_corr && rep.first_correction_cycle == 0)
      rep.first_correction_cycle = cycle;
    if (any_unc && rep.first_uncorrectable_cycle == 0)
      rep.first_uncorrectable_cycle = cycle;
    if (any_silent && rep.first_silent_corruption_cycle == 0)
      rep.first_silent_corruption_cycle = cycle;
    rep.cycles_run = cycle;
    if (rep.first_uncorrectable_cycle != 0 &&
        cycle >= 2 * rep.first_uncorrectable_cycle)
      break;  // the interesting part of the curve is over
  }

  // Final stuck-cell census via a write/complement probe on every cell:
  // a healthy cell follows both writes, a stuck one fails at least once.
  std::size_t stuck = 0;
  crossbar::Crossbar& xb = mem.array_mutable();  // post-mortem probe
  for (std::size_t r = 0; r < words; ++r) {
    for (std::size_t c = 0; c < 72; ++c) {
      xb.write_bit(r, c, true);
      const bool one_ok = xb.read_bit(r, c);
      xb.write_bit(r, c, false);
      const bool zero_ok = !xb.read_bit(r, c);
      if (!one_ok || !zero_ok) ++stuck;
    }
  }
  rep.final_stuck_cell_fraction =
      static_cast<double>(stuck) / static_cast<double>(words * 72);
  return rep;
}

}  // namespace cim::memtest
