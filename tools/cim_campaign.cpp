/// \file cim_campaign.cpp
/// \brief `cim-campaign` — inspector for cim-campaign-v1 manifests.
///
/// The campaign runner (src/exp/) writes its checkpoint/result manifests in
/// the text `cim-campaign-v1` format; this tool is the operator's window
/// into them:
///
///   cim-campaign status <m.cimcampaign>     progress + per-cell CI table
///   cim-campaign merge -o out a b [c...]    combine shard manifests of the
///                                           same campaign (StreamStat merge)
///   cim-campaign diff a b                   compare two manifests cell by
///                                           cell (bitwise by default)
///
/// Exit status follows the cim-lint convention: 0 = success / no
/// difference / gates pass, 1 = difference found or a gate violated
/// (--require-converged), 2 = usage or parse failure.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "exp/checkpoint.hpp"
#include "obs/dataset.hpp"

namespace {

using cim::exp::CampaignManifest;
using cim::exp::CellCheckpoint;

void print_usage(std::ostream& os) {
  os << "usage: cim-campaign <command> [options] <manifest...>\n"
        "\n"
        "Inspects cim-campaign-v1 manifests written by the exp campaign\n"
        "runner (checkpoints and final results are the same format).\n"
        "\n"
        "commands:\n"
        "  status <m>             campaign identity, progress, per-cell\n"
        "                         trial counts / means / CI half-widths\n"
        "    --confidence <p>     CI level for the table (default 0.95)\n"
        "    --require-converged  gate: exit 1 unless every cell froze\n"
        "                         without hitting its trial cap\n"
        "  merge -o <out> <a> <b> [...]  merge shard manifests of the SAME\n"
        "                         campaign (fingerprints must match);\n"
        "                         summaries merge, trials/rounds add\n"
        "  diff <a> <b>           compare cell summaries; exit 1 if they\n"
        "                         differ (campaign identity must match)\n"
        "    --tol <x>            tolerate |mean delta| <= x (default 0:\n"
        "                         bitwise comparison)\n"
        "  -h, --help             this message\n";
}

bool load_or_die(const std::string& path, CampaignManifest& m) {
  std::string err;
  if (!cim::exp::load_manifest(path, m, &err)) {
    std::cerr << "cim-campaign: " << err << "\n";
    return false;
  }
  return true;
}

int cmd_status(const std::vector<std::string>& args) {
  double confidence = 0.95;
  bool require_converged = false;
  std::string file;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--confidence" && i + 1 < args.size()) {
      confidence = std::atof(args[++i].c_str());
    } else if (args[i] == "--require-converged") {
      require_converged = true;
    } else if (file.empty()) {
      file = args[i];
    } else {
      print_usage(std::cerr);
      return 2;
    }
  }
  if (file.empty() || confidence <= 0.0 || confidence >= 1.0) {
    print_usage(std::cerr);
    return 2;
  }
  CampaignManifest m;
  if (!load_or_die(file, m)) return 2;

  const double z = cim::obs::z_for_confidence(confidence);
  std::size_t frozen = 0;
  std::size_t capped = 0;
  for (const CellCheckpoint& c : m.cell_state) {
    frozen += c.frozen ? 1 : 0;
    capped += c.capped ? 1 : 0;
  }
  std::printf("campaign %s  seed %llu  cells %zu  block %llu\n",
              m.name.c_str(), static_cast<unsigned long long>(m.seed),
              m.cells, static_cast<unsigned long long>(m.block));
  std::printf("progress: rounds %llu  trials %llu  frozen %zu/%zu"
              "  capped %zu\n",
              static_cast<unsigned long long>(m.rounds),
              static_cast<unsigned long long>(m.total_trials), frozen,
              m.cells, capped);
  std::printf("%6s %8s %14s %14s %14s  %s\n", "cell", "n", "mean", "stddev",
              "ci_half", "state");
  for (std::size_t i = 0; i < m.cell_state.size(); ++i) {
    const CellCheckpoint& c = m.cell_state[i];
    std::printf("%6zu %8llu %14.6g %14.6g %14.6g  %s\n", i,
                static_cast<unsigned long long>(c.stat.n), c.stat.mean,
                c.stat.stddev(), c.stat.ci_half_width(z),
                c.capped ? "capped" : (c.frozen ? "frozen" : "running"));
  }
  const bool converged = frozen == m.cells && capped == 0;
  std::printf("status: %s\n", converged          ? "converged"
                              : frozen == m.cells ? "finished (capped cells)"
                                                  : "in progress");
  if (require_converged && !converged) return 1;
  return 0;
}

int cmd_merge(const std::vector<std::string>& args) {
  std::string out;
  std::vector<std::string> files;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "-o" && i + 1 < args.size())
      out = args[++i];
    else
      files.push_back(args[i]);
  }
  if (out.empty() || files.size() < 2) {
    print_usage(std::cerr);
    return 2;
  }
  CampaignManifest acc;
  if (!load_or_die(files[0], acc)) return 2;
  for (std::size_t f = 1; f < files.size(); ++f) {
    CampaignManifest m;
    if (!load_or_die(files[f], m)) return 2;
    if (m.fingerprint != acc.fingerprint) {
      std::cerr << "cim-campaign: '" << files[f]
                << "' belongs to a different campaign than '" << files[0]
                << "' (fingerprint mismatch)\n";
      return 2;
    }
    for (std::size_t c = 0; c < acc.cell_state.size(); ++c) {
      CellCheckpoint& dst = acc.cell_state[c];
      const CellCheckpoint& src = m.cell_state[c];
      dst.stat.merge(src.stat);
      dst.cursor = std::max(dst.cursor, src.cursor);
      dst.frozen = dst.frozen || src.frozen;
      dst.capped = dst.capped || src.capped;
    }
    acc.rounds += m.rounds;
    acc.total_trials += m.total_trials;
  }
  if (!cim::exp::save_manifest(out, acc)) {
    std::cerr << "cim-campaign: cannot write '" << out << "'\n";
    return 2;
  }
  std::printf("merged %zu manifests -> %s (%llu trials)\n", files.size(),
              out.c_str(), static_cast<unsigned long long>(acc.total_trials));
  return 0;
}

int cmd_diff(const std::vector<std::string>& args) {
  double tol = 0.0;
  std::vector<std::string> files;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--tol" && i + 1 < args.size())
      tol = std::atof(args[++i].c_str());
    else
      files.push_back(args[i]);
  }
  if (files.size() != 2) {
    print_usage(std::cerr);
    return 2;
  }
  CampaignManifest a;
  CampaignManifest b;
  if (!load_or_die(files[0], a) || !load_or_die(files[1], b)) return 2;
  if (a.fingerprint != b.fingerprint) {
    std::cerr << "cim-campaign: manifests belong to different campaigns "
                 "(fingerprint mismatch)\n";
    return 2;
  }
  std::size_t differing = 0;
  for (std::size_t c = 0; c < a.cell_state.size(); ++c) {
    const cim::obs::StreamStat& sa = a.cell_state[c].stat;
    const cim::obs::StreamStat& sb = b.cell_state[c].stat;
    const bool bit_equal = sa.n == sb.n && sa.mean == sb.mean &&
                           sa.m2 == sb.m2 && sa.min == sb.min &&
                           sa.max == sb.max;
    if (bit_equal) continue;
    if (tol > 0.0 && sa.n == sb.n && std::fabs(sa.mean - sb.mean) <= tol)
      continue;
    ++differing;
    std::printf("cell %zu: n %llu vs %llu, mean %.17g vs %.17g "
                "(delta %.3g)\n",
                c, static_cast<unsigned long long>(sa.n),
                static_cast<unsigned long long>(sb.n), sa.mean, sb.mean,
                sa.mean - sb.mean);
  }
  if (a.total_trials != b.total_trials)
    std::printf("total trials: %llu vs %llu\n",
                static_cast<unsigned long long>(a.total_trials),
                static_cast<unsigned long long>(b.total_trials));
  if (differing == 0) {
    std::printf("manifests agree (%zu cells)\n", a.cell_state.size());
    return 0;
  }
  std::printf("%zu of %zu cells differ\n", differing, a.cell_state.size());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty() || args[0] == "-h" || args[0] == "--help") {
    print_usage(args.empty() ? std::cerr : std::cout);
    return args.empty() ? 2 : 0;
  }
  const std::string cmd = args[0];
  args.erase(args.begin());
  if (cmd == "status") return cmd_status(args);
  if (cmd == "merge") return cmd_merge(args);
  if (cmd == "diff") return cmd_diff(args);
  std::cerr << "cim-campaign: unknown command '" << cmd << "'\n";
  print_usage(std::cerr);
  return 2;
}
