/// \file cim_reqlog.cpp
/// \brief `cim-reqlog` — offline analyzer for cim-reqlog-v1 serving logs.
///
/// Reads a reqlog (see serve/reqlog.hpp; `-` reads stdin) and prints the
/// run's latency-decomposition table (where the nanoseconds went: batch
/// coalescing, queueing, issue overhead, bit-serial service, digital
/// reduce — mean and p99 per component), the top-k slowest requests with
/// their per-request decomposition, and per-replica / per-kind / per-tier
/// attribution. Optional gates make it CI-friendly: exit status is 0 when
/// every gate passes, 1 on a gate violation, and 2 on usage/parse
/// failures — the cim-lint convention.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "serve/reqlog.hpp"
#include "serve/request.hpp"

namespace {

using cim::serve::Completion;
using cim::serve::ReqLog;

void print_usage(std::ostream& os) {
  os << "usage: cim-reqlog [options] <run.cimreqlog> (- reads stdin)\n"
        "\n"
        "Analyzes a cim-reqlog-v1 serving log: latency decomposition\n"
        "(batch wait / queue wait / issue / bit-serial / reduce), top-k\n"
        "slowest requests, and per-replica/kind/tier attribution.\n"
        "\n"
        "options:\n"
        "  --top <k>              slowest requests to list (default 5)\n"
        "  --max-p99-ns <x>       gate: end-to-end p99 must be <= x\n"
        "  --max-shed-frac <x>    gate: rejected / offered must be <= x\n"
        "  --check-decomposition  gate: every completion's components must\n"
        "                         sum to done_ns - arrival_ns bitwise\n"
        "  --quiet                verdicts only, no tables\n"
        "  -h, --help             this message\n";
}

double quantile(std::vector<double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double rank = q * static_cast<double>(sorted.size());
  std::size_t idx = static_cast<std::size_t>(std::ceil(rank));
  if (idx > 0) --idx;
  if (idx >= sorted.size()) idx = sorted.size() - 1;
  return sorted[idx];
}

struct Options {
  std::size_t top = 5;
  double max_p99_ns = -1.0;
  double max_shed_frac = -1.0;
  bool check_decomposition = false;
  bool quiet = false;
  std::string file;
};

/// One row of the decomposition table: a component's share of the total.
struct Row {
  const char* name;
  double sum = 0.0;
  std::vector<double> values;
};

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "cim-reqlog: " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "-h" || arg == "--help") {
      print_usage(std::cout);
      return 0;
    } else if (arg == "--top") {
      opt.top = static_cast<std::size_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--max-p99-ns") {
      opt.max_p99_ns = std::strtod(next(), nullptr);
    } else if (arg == "--max-shed-frac") {
      opt.max_shed_frac = std::strtod(next(), nullptr);
    } else if (arg == "--check-decomposition") {
      opt.check_decomposition = true;
    } else if (arg == "--quiet") {
      opt.quiet = true;
    } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
      std::cerr << "cim-reqlog: unknown option " << arg << "\n";
      print_usage(std::cerr);
      return 2;
    } else if (opt.file.empty()) {
      opt.file = arg;
    } else {
      std::cerr << "cim-reqlog: exactly one reqlog file expected\n";
      return 2;
    }
  }
  if (opt.file.empty()) {
    print_usage(std::cerr);
    return 2;
  }

  ReqLog log;
  try {
    if (opt.file == "-") {
      std::ostringstream ss;
      ss << std::cin.rdbuf();
      std::istringstream is(ss.str());
      log = cim::serve::read_reqlog(is);
    } else {
      log = cim::serve::read_reqlog_file(opt.file);
    }
  } catch (const std::exception& e) {
    std::cerr << "cim-reqlog: " << e.what() << "\n";
    return 2;
  }

  const std::size_t completed = log.completions.size();
  const std::size_t rejected = log.rejections.size();
  const std::size_t offered = completed + rejected;
  std::printf("cim-reqlog: %zu completed, %zu rejected (%zu offered)\n",
              completed, rejected, offered);

  std::vector<double> latencies;
  latencies.reserve(completed);
  Row rows[] = {{"batch_wait", 0.0, {}},
                {"queue_wait", 0.0, {}},
                {"issue(amortized)", 0.0, {}},
                {"bitserial", 0.0, {}},
                {"reduce", 0.0, {}}};
  double latency_sum = 0.0;
  std::size_t decomposition_mismatches = 0;
  for (const Completion& c : log.completions) {
    const double l = c.latency_ns();
    latencies.push_back(l);
    latency_sum += l;
    const double parts[] = {c.batch_wait_ns, c.queue_wait_ns,
                            c.issue_wait_ns /
                                static_cast<double>(
                                    c.batch_size > 0 ? c.batch_size : 1),
                            c.bitserial_ns, c.reduce_ns};
    for (std::size_t i = 0; i < 5; ++i) {
      rows[i].sum += parts[i];
      rows[i].values.push_back(parts[i]);
    }
    if (c.arrival_ns + c.decomposition_sum() != c.done_ns)
      ++decomposition_mismatches;
  }

  std::sort(latencies.begin(), latencies.end());
  const double p50 = quantile(latencies, 0.50);
  const double p99 = quantile(latencies, 0.99);
  const double mean =
      completed > 0 ? latency_sum / static_cast<double>(completed) : 0.0;

  if (!opt.quiet && completed > 0) {
    std::printf("\nlatency: mean %.3f us  p50 %.3f us  p99 %.3f us  "
                "max %.3f us\n",
                mean * 1e-3, p50 * 1e-3, p99 * 1e-3,
                latencies.back() * 1e-3);
    std::printf("\ndecomposition (amortized issue share):\n");
    std::printf("  %-18s %12s %12s %8s\n", "component", "mean_us", "p99_us",
                "share");
    for (Row& r : rows) {
      std::sort(r.values.begin(), r.values.end());
      const double m = r.sum / static_cast<double>(completed);
      std::printf("  %-18s %12.3f %12.3f %7.1f%%\n", r.name, m * 1e-3,
                  quantile(r.values, 0.99) * 1e-3,
                  mean > 0.0 ? 100.0 * m / mean : 0.0);
    }

    // Top-k slowest, with per-request decomposition.
    std::vector<const Completion*> by_latency;
    by_latency.reserve(completed);
    for (const Completion& c : log.completions) by_latency.push_back(&c);
    std::sort(by_latency.begin(), by_latency.end(),
              [](const Completion* a, const Completion* b) {
                if (a->latency_ns() != b->latency_ns())
                  return a->latency_ns() > b->latency_ns();
                return a->id < b->id;
              });
    const std::size_t k = std::min(opt.top, by_latency.size());
    std::printf("\ntop %zu slowest:\n", k);
    for (std::size_t i = 0; i < k; ++i) {
      const Completion& c = *by_latency[i];
      std::printf("  id %llu: %.3f us (batch %.3f + queue %.3f + issue %.3f "
                  "+ serve %.3f us) replica %zu batch %zu tier %s\n",
                  static_cast<unsigned long long>(c.id),
                  c.latency_ns() * 1e-3, c.batch_wait_ns * 1e-3,
                  c.queue_wait_ns * 1e-3, c.issue_wait_ns * 1e-3,
                  (c.bitserial_ns + c.reduce_ns) * 1e-3, c.replica,
                  c.batch_size, cim::crossbar::tier_name(c.tier));
    }

    // Attribution tables: who is slow, not just how slow.
    auto attribution = [&](const char* title, auto key_of) {
      std::map<std::string, std::pair<std::size_t, double>> groups;
      for (const Completion& c : log.completions) {
        auto& [count, sum] = groups[key_of(c)];
        ++count;
        sum += c.latency_ns();
      }
      std::printf("\nby %s:\n", title);
      for (const auto& [key, agg] : groups)
        std::printf("  %-12s %8zu requests  mean %.3f us\n", key.c_str(),
                    agg.first,
                    agg.second / static_cast<double>(agg.first) * 1e-3);
    };
    attribution("replica", [](const Completion& c) {
      return "replica-" + std::to_string(c.replica);
    });
    attribution("kind", [](const Completion& c) {
      return std::string(kind_name(c.kind));
    });
    attribution("tier", [](const Completion& c) {
      return std::string(cim::crossbar::tier_name(c.tier)) +
             (c.escalated ? "(esc)" : "");
    });
  }

  // Gates.
  bool pass = true;
  if (opt.check_decomposition) {
    const bool ok = decomposition_mismatches == 0;
    std::printf("decomposition check: %s (%zu mismatching of %zu)\n",
                ok ? "exact" : "FAILED", decomposition_mismatches, completed);
    pass = pass && ok;
  }
  if (opt.max_p99_ns >= 0.0) {
    const bool ok = p99 <= opt.max_p99_ns;
    std::printf("p99 gate: %.0f ns vs budget %.0f ns: %s\n", p99,
                opt.max_p99_ns, ok ? "pass" : "FAILED");
    pass = pass && ok;
  }
  if (opt.max_shed_frac >= 0.0) {
    const double shed =
        offered > 0
            ? static_cast<double>(rejected) / static_cast<double>(offered)
            : 0.0;
    const bool ok = shed <= opt.max_shed_frac;
    std::printf("shed gate: %.4f vs budget %.4f: %s\n", shed,
                opt.max_shed_frac, ok ? "pass" : "FAILED");
    pass = pass && ok;
  }
  return pass ? 0 : 1;
}
