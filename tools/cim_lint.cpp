/// \file cim_lint.cpp
/// \brief `cim-lint` — offline static analysis of dumped micro-op programs.
///
/// Reads one or more `cim-prog-v1` files (see eda/verify/program_io.hpp;
/// `-` reads stdin), runs the standard verification pipeline over each
/// (family linter, wear certificate, cost certificate), and — when a tile
/// pool is given — checks the whole batch for cross-tile scheduling
/// hazards as if the programs were dispatched concurrently. Exit status is
/// 0 when every program is clean, 1 on any error-severity diagnostic, and
/// 2 on usage/parse failures.
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "device/technology.hpp"
#include "eda/verify/hazard.hpp"
#include "eda/verify/pass.hpp"
#include "eda/verify/program_io.hpp"
#include "eda/verify/verify.hpp"
#include "eda/verify/wear_cost.hpp"

namespace {

namespace verify = cim::eda::verify;
namespace device = cim::device;

void print_usage(std::ostream& os) {
  os << "usage: cim-lint [options] <program.cimprog>... (- reads stdin)\n"
        "\n"
        "Static analysis of dumped cim-prog-v1 micro-op programs: family\n"
        "dataflow lint, static wear certification, static cost estimate,\n"
        "and (with --tiles) cross-tile hazard analysis of the batch.\n"
        "\n"
        "options:\n"
        "  --tech <name>           device technology backing the endurance\n"
        "                          and cost models (ReRAM-HfOx, ReRAM-TiOx,\n"
        "                          PCM, STT-MRAM, SRAM, DRAM; default\n"
        "                          STT-MRAM)\n"
        "  --planned-evals <n>     gate the wear certificate against n\n"
        "                          lifetime program evaluations\n"
        "  --time-budget-ns <x>    gate the static time estimate\n"
        "  --energy-budget-pj <x>  gate the worst-case energy estimate\n"
        "  --tiles <n>             hazard-check the batch round-robin over\n"
        "                          n tiles, treating all programs as\n"
        "                          concurrently scheduled\n"
        "  --adcs <n>              physical ADC channels per tile for the\n"
        "                          hazard check (default 8)\n"
        "  --wear-json <path>      export static per-cell write bounds in\n"
        "                          cim-health-heatmap-v1 JSON\n"
        "  --timings               print per-pass wall-clock totals\n"
        "  --quiet                 verdicts only, no diagnostics\n"
        "  -h, --help              this message\n";
}

std::optional<device::Technology> parse_tech(const std::string& name) {
  for (const auto t :
       {device::Technology::kReRamHfOx, device::Technology::kReRamTiOx,
        device::Technology::kPcm, device::Technology::kSttMram,
        device::Technology::kSram, device::Technology::kDram}) {
    if (name == device::technology_name(t)) return t;
  }
  return std::nullopt;
}

struct Options {
  verify::VerifyOptions verify;
  std::uint64_t planned_evals = 0;
  verify::CostBudget budget{};
  std::size_t tiles = 0;
  std::size_t adcs = 8;
  std::string wear_json;
  bool timings = false;
  bool quiet = false;
  std::vector<std::string> files;
};

std::optional<Options> parse_args(int argc, char** argv) {
  Options opt;
  auto value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << "cim-lint: " << argv[i] << " needs a value\n";
      return nullptr;
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-h" || arg == "--help") {
      print_usage(std::cout);
      std::exit(0);
    } else if (arg == "--tech") {
      const char* v = value(i);
      if (v == nullptr) return std::nullopt;
      const auto tech = parse_tech(v);
      if (!tech) {
        std::cerr << "cim-lint: unknown technology '" << v << "'\n";
        return std::nullopt;
      }
      opt.verify.tech = *tech;
    } else if (arg == "--planned-evals") {
      const char* v = value(i);
      if (v == nullptr) return std::nullopt;
      opt.planned_evals = std::strtoull(v, nullptr, 10);
    } else if (arg == "--time-budget-ns") {
      const char* v = value(i);
      if (v == nullptr) return std::nullopt;
      opt.budget.time_ns = std::strtod(v, nullptr);
    } else if (arg == "--energy-budget-pj") {
      const char* v = value(i);
      if (v == nullptr) return std::nullopt;
      opt.budget.energy_pj = std::strtod(v, nullptr);
    } else if (arg == "--tiles") {
      const char* v = value(i);
      if (v == nullptr) return std::nullopt;
      opt.tiles = std::strtoull(v, nullptr, 10);
    } else if (arg == "--adcs") {
      const char* v = value(i);
      if (v == nullptr) return std::nullopt;
      opt.adcs = std::strtoull(v, nullptr, 10);
    } else if (arg == "--wear-json") {
      const char* v = value(i);
      if (v == nullptr) return std::nullopt;
      opt.wear_json = v;
    } else if (arg == "--timings") {
      opt.timings = true;
    } else if (arg == "--quiet") {
      opt.quiet = true;
    } else if (arg == "-") {
      opt.files.push_back(arg);
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "cim-lint: unknown option '" << arg << "'\n";
      return std::nullopt;
    } else {
      opt.files.push_back(arg);
    }
  }
  if (opt.files.empty()) {
    print_usage(std::cerr);
    return std::nullopt;
  }
  return opt;
}

struct Analyzed {
  std::string name;
  verify::ParsedProgram program;
  verify::ProgramAccess access;
  verify::VerifyReport report;
};

}  // namespace

int main(int argc, char** argv) {
  const auto parsed_opts = parse_args(argc, argv);
  if (!parsed_opts) return 2;
  const Options& opt = *parsed_opts;

  verify::PassManager pm = verify::PassManager::standard();
  std::vector<Analyzed> batch;
  batch.reserve(opt.files.size());
  bool any_error = false;

  for (const auto& file : opt.files) {
    std::ifstream fstream;
    std::istream* is = &std::cin;
    if (file != "-") {
      fstream.open(file);
      if (!fstream) {
        std::cerr << "cim-lint: cannot open '" << file << "'\n";
        return 2;
      }
      is = &fstream;
    }
    std::string parse_error;
    auto program = verify::parse_program(*is, &parse_error);
    if (!program) {
      std::cerr << "cim-lint: " << file << ": " << parse_error << "\n";
      return 2;
    }

    Analyzed a;
    a.name = file == "-" ? "<stdin>" : file;
    a.program = std::move(*program);

    verify::ProgramUnit unit;
    unit.name = a.name;
    unit.opts = opt.verify;
    unit.planned_evaluations = opt.planned_evals;
    unit.cost_budget = opt.budget;
    switch (a.program.family) {
      case verify::ProgramFamily::kImply: unit.imply = &a.program.imply; break;
      case verify::ProgramFamily::kMagic: unit.magic = &a.program.magic; break;
      case verify::ProgramFamily::kRevamp:
        unit.revamp = &a.program.revamp;
        break;
    }

    verify::AnalysisResults results;
    a.report = pm.run(unit, results);
    a.access = results.access(unit);
    const auto& cost = results.cost(unit);

    if (!opt.quiet) {
      for (const auto& d : a.report.diagnostics)
        std::cout << a.name << ": " << d.to_string() << "\n";
    }
    std::cout << a.name << " [" << unit.family() << "]: "
              << (a.report.clean() ? "clean" : "NOT CLEAN") << " ("
              << a.report.errors() << " error(s), " << a.report.warnings()
              << " warning(s)); max writes/cell "
              << a.access.max_write_bound() << "; static cost "
              << cost.time_ns << " ns, [" << cost.energy_pj_min << ", "
              << cost.energy_pj_max << "] pJ (exp " << cost.energy_pj_exp
              << (cost.exact_expectation ? ", exact)" : ", approx)") << "\n";
    any_error = any_error || !a.report.clean();
    batch.push_back(std::move(a));
  }

  // Cross-tile hazard analysis: the batch as one concurrent dispatch.
  if (opt.tiles > 0 && !batch.empty()) {
    verify::TileInfo tile;
    tile.adc_channels = opt.adcs;
    for (const auto& a : batch) {
      tile.rows = std::max(tile.rows, a.access.rows);
      tile.cols = std::max(tile.cols, a.access.cols);
    }
    verify::TilePool pool;
    pool.tiles.assign(opt.tiles, tile);
    std::vector<verify::ScheduledProgram> sched;
    sched.reserve(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      verify::ScheduledProgram p;
      p.name = batch[i].name;
      p.tile = i % opt.tiles;
      p.access = batch[i].access;
      p.duration = 0.0;  // always active: worst-case concurrency
      sched.push_back(std::move(p));
    }
    const auto hazards = verify::analyze_hazards(pool, sched);
    if (!opt.quiet) {
      for (const auto& d : hazards.diagnostics)
        std::cout << "hazard: " << d.to_string() << "\n";
    }
    std::cout << "hazard check (" << opt.tiles << " tile(s), " << opt.adcs
              << " ADC(s)): " << (hazards.clean() ? "clean" : "NOT CLEAN")
              << " (" << hazards.errors() << " error(s), "
              << hazards.warnings() << " warning(s))\n";
    any_error = any_error || !hazards.clean();
  }

  if (!opt.wear_json.empty()) {
    std::vector<verify::StaticWearEntry> entries;
    entries.reserve(batch.size());
    for (const auto& a : batch) entries.push_back({a.name, &a.access});
    std::ofstream os(opt.wear_json);
    if (!os) {
      std::cerr << "cim-lint: cannot write '" << opt.wear_json << "'\n";
      return 2;
    }
    verify::write_static_wear_json(os, entries);
    std::cout << "static wear heatmap -> " << opt.wear_json << "\n";
  }

  if (opt.timings) {
    for (const auto& t : pm.timings())
      std::cout << "pass " << t.name << ": " << t.wall_ms << " ms over "
                << t.runs << " run(s)\n";
  }
  return any_error ? 1 : 0;
}
