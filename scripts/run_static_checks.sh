#!/usr/bin/env bash
# Runs clang-tidy over the library sources using the compilation database
# exported by CMake (CMAKE_EXPORT_COMPILE_COMMANDS). Usage:
#
#   scripts/run_static_checks.sh [build-dir] [source-glob...]
#
# Defaults: build-dir = ./build, sources = src/**/*.cpp tools/**/*.cpp.
# The check profile lives in .clang-tidy at the repo root. When clang-tidy
# is not installed the script prints a notice and exits 0 so the `lint`
# CMake target stays usable on minimal containers; CI images with
# clang-tidy get the real gate.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
shift || true

tidy_bin="${CLANG_TIDY:-clang-tidy}"
if ! command -v "${tidy_bin}" >/dev/null 2>&1; then
  echo "run_static_checks: ${tidy_bin} not found; skipping static checks." >&2
  echo "run_static_checks: install clang-tidy (or set CLANG_TIDY) to enable." >&2
  exit 0
fi

if [[ ! -f "${build_dir}/compile_commands.json" ]]; then
  echo "run_static_checks: ${build_dir}/compile_commands.json missing." >&2
  echo "run_static_checks: configure with cmake -B '${build_dir}' -S '${repo_root}' first." >&2
  exit 1
fi

cd "${repo_root}"
if [[ $# -gt 0 ]]; then
  sources=("$@")
else
  mapfile -t sources < <(find src tools -name '*.cpp' | sort)
fi

if [[ ${#sources[@]} -eq 0 ]]; then
  echo "run_static_checks: no sources matched." >&2
  exit 1
fi

jobs="$(nproc 2>/dev/null || echo 4)"
echo "run_static_checks: ${tidy_bin} over ${#sources[@]} file(s), -j${jobs}"
status=0
printf '%s\n' "${sources[@]}" |
  xargs -P "${jobs}" -n 8 "${tidy_bin}" -p "${build_dir}" --quiet || status=$?
if [[ ${status} -ne 0 ]]; then
  echo "run_static_checks: clang-tidy reported findings (exit ${status})." >&2
  exit "${status}"
fi
echo "run_static_checks: clean."
