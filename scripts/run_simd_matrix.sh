#!/usr/bin/env bash
# Runs the `simd` ctest slice (cross-ISA kernel conformance + fidelity-tier
# gates) with runtime dispatch forced to each instruction set in turn via
# CIM_SIMD. Variants the build or CPU cannot execute clamp down to the best
# supported table (with a one-time notice on stderr), so the matrix is safe
# to run on any host — on a scalar-only machine all three legs exercise the
# portable table.
#
# Usage: scripts/run_simd_matrix.sh <build-dir> [extra ctest args...]
#   e.g. scripts/run_simd_matrix.sh build
#        scripts/run_simd_matrix.sh build --output-on-failure
set -euo pipefail

build_dir=${1:?usage: run_simd_matrix.sh <build-dir> [ctest args...]}
shift || true

[ -d "${build_dir}" ] || { echo "error: ${build_dir} not found (build first)" >&2; exit 1; }

status=0
for isa in scalar avx2 avx512; do
  echo "=== ctest -L simd with CIM_SIMD=${isa} ===" >&2
  if ! (cd "${build_dir}" && CIM_SIMD="${isa}" ctest -L simd "$@"); then
    echo "!! simd slice failed with CIM_SIMD=${isa}" >&2
    status=1
  fi
done
exit "${status}"
