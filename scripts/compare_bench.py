#!/usr/bin/env python3
"""Bench-history regression gate.

Compares the newest BENCH_PR<N>.json against the previous one (by PR
number) and fails loudly when a bench that exists in both runs regressed:

  * wall-time:  > 15% slower
  * peak RSS:   > 10% larger

Benches present in only one of the two files are reported but never fail
the gate (new benches appear, old ones get retired). Sub-millisecond wall
times are pure noise on shared CI hardware, so rows where *both* runs are
under 1.0 ms are compared on RSS only; on top of that the wall gate
requires an *absolute* slowdown of at least 1.0 ms, because few-ms
benches carry ms-scale constant offsets between container instances
(loader, page cache) that the relative threshold misreads as
regressions.

Runs from different PRs execute on different container instances whose
raw speed drifts far more than the gate threshold, so wall times are
host-speed normalized first: the median wall ratio across shared benches
estimates the hosts' relative speed, and each bench is gated against the
median-adjusted baseline. A uniform slowdown therefore passes while a
bench that regressed *relative to the rest of the suite* still fails.
RSS is not normalized (memory does not drift with CPU speed).

A PR that deliberately changes what a bench measures declares it in
WAIVERS below; the waiver only applies to the exact PR that declared it,
so entries go stale harmlessly and the next run re-arms the gate.

Usage:
    scripts/compare_bench.py [CURRENT.json] [--history-dir DIR]

With no argument the newest BENCH_PR<N>.json in the history dir (default:
repo root) is the current run. Exit status: 0 = no regression (or nothing
to compare against), 1 = regression, 2 = usage/parse error.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

WALL_REGRESSION_FRAC = 0.15
RSS_REGRESSION_FRAC = 0.10
WALL_NOISE_FLOOR_MS = 1.0
WALL_ABS_SLACK_MS = 1.0
# Host-speed normalization needs enough shared benches for the median
# ratio to be a speed estimate rather than one bench's behaviour.
MIN_BENCHES_FOR_SPEED_NORM = 5

# Deliberate scope changes: bench -> (PR number, reason). The wall gate is
# skipped for that bench only when the *current* file is that PR's run.
WAIVERS: dict[str, tuple[int, str]] = {
    "bench_fig4_crossbar_vmm": (
        7, "added fidelity-dial sweep: 3 tiers x 3 passes x 400 VMMs "
           "+ deviation statistics"),
    "bench_accuracy_vs_yield": (
        10, "migrated onto the adaptive Monte-Carlo campaign runner: "
            "per-yield replication counts are now CI-driven"),
    "bench_retraining_ablation": (
        10, "migrated onto the adaptive Monte-Carlo campaign runner: "
            "retrains replicate per yield until the recovery CI tightens"),
    "bench_technology_sweep": (
        10, "migrated onto the adaptive Monte-Carlo campaign runner: "
            "per-technology VMM-error statistics replace the single "
            "fixed-seed array"),
}

_BENCH_RE = re.compile(r"^BENCH_PR(\d+)\.json$")


def pr_number(path: Path) -> int | None:
    m = _BENCH_RE.match(path.name)
    return int(m.group(1)) if m else None


def load_entries(path: Path) -> dict[str, dict]:
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"error: cannot parse {path}: {e}")
    if not isinstance(data, list):
        sys.exit(f"error: {path} is not a JSON array")
    entries: dict[str, dict] = {}
    for obj in data:
        if not isinstance(obj, dict) or "bench" not in obj:
            sys.exit(f"error: {path} contains a non-bench entry: {obj!r}")
        name = obj["bench"]
        if name in entries:
            sys.exit(f"error: {path} has duplicate bench '{name}'")
        entries[name] = obj
    return entries


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("current", nargs="?", default=None,
                    help="current BENCH_PR<N>.json (default: newest in history dir)")
    ap.add_argument("--history-dir", default=".",
                    help="directory holding BENCH_PR<N>.json history (default: .)")
    args = ap.parse_args()

    hist_dir = Path(args.history_dir)
    history = sorted(
        (p for p in hist_dir.glob("BENCH_PR*.json") if pr_number(p) is not None),
        key=pr_number,
    )

    if args.current is not None:
        cur_path = Path(args.current)
        if pr_number(cur_path) is None:
            print(f"error: {cur_path.name} does not match BENCH_PR<N>.json",
                  file=sys.stderr)
            return 2
        history = [p for p in history if p.resolve() != cur_path.resolve()
                   and pr_number(p) < pr_number(cur_path)]
    else:
        if not history:
            print("compare_bench: no BENCH_PR<N>.json history found; nothing to do")
            return 0
        cur_path = history.pop()

    if not history:
        print(f"compare_bench: {cur_path.name} has no earlier run to compare "
              "against; skipping")
        return 0
    prev_path = history[-1]

    cur = load_entries(cur_path)
    prev = load_entries(prev_path)
    shared = sorted(cur.keys() & prev.keys())
    only_cur = sorted(cur.keys() - prev.keys())
    only_prev = sorted(prev.keys() - cur.keys())

    print(f"compare_bench: {prev_path.name} -> {cur_path.name} "
          f"({len(shared)} shared benches)")
    # First-appearance benches are informational: their numbers become the
    # baseline the *next* PR is gated against, so print them rather than
    # just naming them — a wild first wall/RSS should be visible in the
    # collection log, not discovered one PR later as a mystery regression.
    for name in only_cur:
        obj = cur[name]
        wall = obj.get("wall_ms", float("nan"))
        rss = obj.get("peak_rss_mb", float("nan"))
        print(f"  new bench (informational, baseline for next run): {name} "
              f"wall_ms={wall:.2f} peak_rss_mb={rss:.1f}")
    if only_prev:
        print(f"  retired benches (not compared): {', '.join(only_prev)}")

    def walls(name: str) -> tuple[float, float, float, float]:
        c, p = cur[name], prev[name]
        try:
            return (float(c["wall_ms"]), float(p["wall_ms"]),
                    float(c["peak_rss_mb"]), float(p["peak_rss_mb"]))
        except (KeyError, TypeError, ValueError) as e:
            sys.exit(f"error: bench '{name}' has malformed wall_ms/peak_rss_mb: {e}")

    # Relative host speed: median wall ratio over shared benches that are
    # above the noise floor in both runs (waived benches excluded — their
    # ratio reflects a scope change, not the host).
    cur_pr = pr_number(cur_path)
    ratios = []
    for name in shared:
        cw, pw, _, _ = walls(name)
        waived = name in WAIVERS and WAIVERS[name][0] == cur_pr
        if not waived and min(cw, pw) >= WALL_NOISE_FLOOR_MS:
            ratios.append(cw / pw)
    host_speed = 1.0
    if len(ratios) >= MIN_BENCHES_FOR_SPEED_NORM:
        ratios.sort()
        mid = len(ratios) // 2
        host_speed = (ratios[mid] if len(ratios) % 2
                      else 0.5 * (ratios[mid - 1] + ratios[mid]))
        if abs(host_speed - 1.0) > 0.02:
            print(f"  host-speed normalization: median wall ratio "
                  f"{host_speed:.3f} ({len(ratios)} benches)")

    regressions: list[str] = []
    for name in shared:
        cw, pw, cr, pr = walls(name)
        notes = []
        if name in WAIVERS and WAIVERS[name][0] == cur_pr:
            print(f"  waived (PR {cur_pr}) {name}: {WAIVERS[name][1]}")
        elif max(cw, pw) >= WALL_NOISE_FLOOR_MS and pw > 0.0:
            pw_adj = pw * host_speed
            dw = (cw - pw_adj) / pw_adj
            if dw > WALL_REGRESSION_FRAC and cw - pw_adj > WALL_ABS_SLACK_MS:
                notes.append(f"wall_ms {pw:.2f} -> {cw:.2f} "
                             f"(+{100*dw:.1f}% host-adjusted)")
        if pr > 0.0:
            dr = (cr - pr) / pr
            if dr > RSS_REGRESSION_FRAC:
                notes.append(f"peak_rss_mb {pr:.1f} -> {cr:.1f} (+{100*dr:.1f}%)")
        if notes:
            regressions.append(f"  REGRESSION {name}: " + "; ".join(notes))

    if regressions:
        print(f"compare_bench: {len(regressions)} regression(s) vs "
              f"{prev_path.name} (gates: wall +{100*WALL_REGRESSION_FRAC:.0f}%, "
              f"rss +{100*RSS_REGRESSION_FRAC:.0f}%):", file=sys.stderr)
        for r in regressions:
            print(r, file=sys.stderr)
        return 1

    print("compare_bench: no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
