#!/usr/bin/env bash
# Runs every bench_* binary in a build directory, scrapes their BENCH_JSON
# lines, and aggregates them into BENCH_PR<N>.json (a JSON array) in the
# current working directory — the per-PR perf trajectory record.
#
# Usage: scripts/collect_bench.sh <build-dir> <pr-number>
#   e.g. scripts/collect_bench.sh build 3   ->  BENCH_PR3.json
#
# bench_micro_kernels (the google-benchmark suite) is skipped: it reports
# through the google-benchmark harness, not BENCH_JSON.
set -euo pipefail

build_dir=${1:?usage: collect_bench.sh <build-dir> <pr-number>}
pr=${2:?usage: collect_bench.sh <build-dir> <pr-number>}
out="BENCH_PR${pr}.json"

bench_dir="${build_dir}/bench"
[ -d "${bench_dir}" ] || { echo "error: ${bench_dir} not found (build first)" >&2; exit 1; }

tmp=$(mktemp)
trap 'rm -f "${tmp}"' EXIT

status=0
for b in "${bench_dir}"/bench_*; do
  [ -x "${b}" ] && [ -f "${b}" ] || continue
  name=$(basename "${b}")
  [ "${name}" = "bench_micro_kernels" ] && continue
  echo ">> ${name}" >&2
  # A failing gate (non-zero exit) is recorded but does not stop collection.
  if ! bench_out=$("${b}"); then
    echo "!! ${name} exited non-zero" >&2
    status=1
  fi
  printf '%s\n' "${bench_out}" |
    sed -n 's/^BENCH_JSON //p' >> "${tmp}"
done

# Assemble the scraped object-per-line stream into a JSON array.
{
  echo '['
  awk 'NR > 1 { printf ",\n" } { printf "  %s", $0 } END { printf "\n" }' "${tmp}"
  echo ']'
} > "${out}"

echo "wrote ${out} ($(grep -c '"bench"' "${out}") bench entries)" >&2
exit "${status}"
