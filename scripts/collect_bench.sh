#!/usr/bin/env bash
# Runs every bench_* binary in a build directory, scrapes their BENCH_JSON
# lines, and aggregates them into BENCH_PR<N>.json (a JSON array) in the
# current working directory — the per-PR perf trajectory record.
#
# Usage: scripts/collect_bench.sh <build-dir> <pr-number>
#   e.g. scripts/collect_bench.sh build 3   ->  BENCH_PR3.json
#
# bench_micro_kernels runs its dispatched-ISA sweep by default and emits a
# BENCH_JSON line like every other bench (its legacy google-benchmark
# composite suite sits behind --gbench and is not part of collection).
#
# Every scraped line is validated against the BENCH_JSON schema before it
# is admitted: the required keys must all be present and any other key must
# be on the per-bench extras whitelist below. A bench that emits a
# malformed line, drops a field, or invents one fails the run loudly —
# schema drift otherwise surfaces much later as holes in the trajectory
# record.
#
# Wall times on shared/virtualized CI hosts have a heavy upper tail (a
# 15 ms bench can spike to 25 ms under a noisy neighbour), so the whole
# suite runs CIM_BENCH_REPEATS times (default 3) and each bench records
# its fastest *clean* repeat — min-of-N is the standard estimator for
# the noise-free wall time, and the history gate in compare_bench.py
# assumes it. The repeats are interleaved as full suite passes rather
# than run back-to-back per bench: host noise is autocorrelated over
# seconds, so consecutive repeats of one bench land in the same noisy
# window while passes minutes apart are independent draws. A bench whose
# gate fails in every repeat is recorded (fastest repeat) but fails the
# collection.
set -euo pipefail

build_dir=${1:?usage: collect_bench.sh <build-dir> <pr-number>}
pr=${2:?usage: collect_bench.sh <build-dir> <pr-number>}
out="BENCH_PR${pr}.json"

bench_dir="${build_dir}/bench"
[ -d "${bench_dir}" ] || { echo "error: ${bench_dir} not found (build first)" >&2; exit 1; }

tmp=$(mktemp)
trap 'rm -f "${tmp}"' EXIT

# Strict schema check for one BENCH_JSON line, passed as $2 (see
# src/obs/export.cpp bench_json_line for the producer). Exits non-zero with
# a message naming the offending key on any violation.
validate_line() {
  python3 - "$1" "$2" <<'PYEOF'
import json, sys

REQUIRED = {
    "bench", "wall_ms", "ops", "ops_per_s", "threads", "peak_rss_mb",
    "cache_full_rebuilds", "cache_delta_updates", "git_sha", "build_type",
    "simd_isa",
}
# Per-bench extras. Adding a field to a bench means adding it here, on
# purpose — unknown keys are schema drift and fail the run.
OPTIONAL = {
    "mc_wall_ms", "drop_at_80", "mean_recovered",
    "vmm_speedup_8v1", "mc_speedup_8v1", "hw_concurrency", "deterministic",
    "speedup_program_verify", "speedup_dense",
    "incr_full_rebuilds", "incr_delta_updates", "incr_dirty_cells",
    "gate_pass", "overhead_pct", "per_site_ns", "metrics_mode_ms",
    "alarm_cycle", "collapse_cycle", "alarm_lead_cycles",
    "worn_cell_frac", "mean_abs_drift_us",
    "pass_lint_ms", "pass_wear_ms", "pass_cost_ms", "hazard_findings",
    "static_energy_err_pct", "static_time_err_pct",
    # fidelity-dial sweep (bench_fig4_crossbar_vmm)
    "tier1_speedup", "tier2_speedup", "tier1_rel_dev", "tier2_rel_dev",
    # open-loop serving (bench_serving): batching gate, SLO operating
    # point (80% load) latency/occupancy, saturation throughput, and the
    # wear-aware routing traffic shares. Simulated-time metrics.
    "serve_speedup_batched", "p99_batched_us", "p99_single_us",
    "p50_us", "p99_us", "p999_us", "mean_queue_depth", "max_queue_depth",
    "util_mean", "sustained_rps_overload", "shed_frac_overload",
    "worn_share_rr", "worn_share_wear", "replicas",
    # request-lifecycle decomposition + windowed SLO (bench_serve_timeline):
    # overload-point latency decomposition means, queue-wait share of the
    # mean at 120%/20% load, burn-rate alerting outcome, and the number of
    # closed aggregation windows. Simulated-time metrics.
    "p99_us_overload", "queue_share_overload", "queue_share_healthy",
    "mean_batch_wait_us", "mean_queue_wait_us", "mean_issue_share_us",
    "mean_bitserial_us", "mean_reduce_us", "slo_breached_overload",
    "slo_fast_alerts_overload", "slo_budget_consumed_overload",
    "windows_closed",
    # adaptive Monte-Carlo campaigns (exp::run_campaign): scheduler round
    # counts / process-shard counts for the migrated sweeps, and the
    # adaptive-vs-fixed trial economics of the bench_campaign gate.
    "campaign_rounds", "campaign_shards",
    "adaptive_trials", "fixed_trials", "saved_frac",
    "adaptive_wall_ms", "fixed_wall_ms",
    # dispatched-ISA kernel sweep (bench_micro_kernels): GB/s per variant
    # and speedup vs the scalar table; avx* keys are absent on hosts
    # whose build or CPU cannot execute that table.
    *(f"{k}_gbs_{isa}" for k in ("dot", "axpy", "vmm_row", "gemm")
      for isa in ("scalar", "avx2", "avx512")),
    *(f"{k}_speedup_{isa}" for k in ("dot", "axpy", "vmm_row", "gemm")
      for isa in ("avx2", "avx512")),
}

name = sys.argv[1]
line = sys.argv[2].strip()
try:
    obj = json.loads(line)
except json.JSONDecodeError as e:
    sys.exit(f"{name}: BENCH_JSON line is not valid JSON: {e}")
if not isinstance(obj, dict):
    sys.exit(f"{name}: BENCH_JSON line is not a JSON object")
missing = sorted(REQUIRED - obj.keys())
if missing:
    sys.exit(f"{name}: BENCH_JSON missing required key(s): {', '.join(missing)}")
unknown = sorted(obj.keys() - REQUIRED - OPTIONAL)
if unknown:
    sys.exit(f"{name}: BENCH_JSON unknown key(s): {', '.join(unknown)} "
             "(whitelist them in scripts/collect_bench.sh if intentional)")
if not isinstance(obj["bench"], str) or not obj["bench"]:
    sys.exit(f"{name}: BENCH_JSON 'bench' must be a non-empty string")
for k in ("git_sha", "build_type", "simd_isa"):
    if not isinstance(obj[k], str) or not obj[k]:
        sys.exit(f"{name}: BENCH_JSON '{k}' must be a non-empty string")
if obj["simd_isa"] not in ("scalar", "avx2", "avx512"):
    sys.exit(f"{name}: BENCH_JSON 'simd_isa' must be scalar/avx2/avx512")
for k, v in obj.items():
    if k in ("bench", "git_sha", "build_type", "simd_isa"):
        continue
    if not isinstance(v, (int, float)) or isinstance(v, bool):
        sys.exit(f"{name}: BENCH_JSON '{k}' must be a number, got {v!r}")
PYEOF
}

repeats=${CIM_BENCH_REPEATS:-3}
status=0
declare -A best_line best_wall best_ok
names=()
for rep in $(seq "${repeats}"); do
  echo "== pass ${rep}/${repeats}" >&2
  for b in "${bench_dir}"/bench_*; do
    [ -x "${b}" ] && [ -f "${b}" ] || continue
    name=$(basename "${b}")
    if [ "${rep}" -eq 1 ]; then names+=("${name}"); fi
    echo ">> ${name}" >&2
    if bench_out=$("${b}"); then ok=1; else ok=0; fi
    line=$(printf '%s\n' "${bench_out}" | sed -n 's/^BENCH_JSON //p')
    if [ -z "${line}" ]; then
      echo "error: ${name} emitted no BENCH_JSON line" >&2
      exit 1
    fi
    if [ "$(printf '%s\n' "${line}" | wc -l)" -ne 1 ]; then
      echo "error: ${name} emitted more than one BENCH_JSON line" >&2
      exit 1
    fi
    wall=$(python3 -c 'import json,sys; print(json.loads(sys.argv[1])["wall_ms"])' \
             "${line}") || { echo "error: ${name}: no wall_ms" >&2; exit 1; }
    # Prefer clean repeats; among equals keep the fastest wall time.
    if [ "${ok}" -gt "${best_ok[${name}]:-0}" ] ||
       { [ "${ok}" -eq "${best_ok[${name}]:-0}" ] &&
         { [ -z "${best_wall[${name}]:-}" ] ||
           python3 -c 'import sys; sys.exit(0 if float(sys.argv[1]) < float(sys.argv[2]) else 1)' \
             "${wall}" "${best_wall[${name}]}"; }; }; then
      best_line[${name}]=${line}
      best_wall[${name}]=${wall}
      best_ok[${name}]=${ok}
    fi
  done
done
for name in "${names[@]}"; do
  if [ "${best_ok[${name}]}" -eq 0 ]; then
    # A failing gate is recorded but does not stop collection.
    echo "!! ${name} exited non-zero in all ${repeats} repeats" >&2
    status=1
  fi
  validate_line "${name}" "${best_line[${name}]}" || exit 1
  printf '%s\n' "${best_line[${name}]}" >> "${tmp}"
done

# Assemble the scraped object-per-line stream into a JSON array.
{
  echo '['
  awk 'NR > 1 { printf ",\n" } { printf "  %s", $0 } END { printf "\n" }' "${tmp}"
  echo ']'
} > "${out}"

echo "wrote ${out} ($(grep -c '"bench"' "${out}") bench entries)" >&2

# Bench-history regression gate: diff this run against the newest previous
# BENCH_PR<N>.json and fail loudly on wall-time / peak-RSS regressions
# (thresholds live in compare_bench.py). First PR has no history — skipped.
script_dir=$(cd "$(dirname "$0")" && pwd)
if ! python3 "${script_dir}/compare_bench.py" "${out}"; then
  echo "!! bench regression gate failed (scripts/compare_bench.py)" >&2
  status=1
fi
exit "${status}"
