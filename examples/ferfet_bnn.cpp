/// \file ferfet_bnn.cpp
/// \brief The Section V.D target application: a binary neural network on
///        FeRFET Logic-in-Memory arrays. Trains a float MLP, binarizes it,
///        programs the weights as non-volatile (w, !w) pairs into NOR
///        arrays, runs XNOR-popcount inference in the digital domain, and
///        contrasts the periphery cost with a ReRAM-analog mapping.
#include <algorithm>
#include <iostream>

#include "ferfet/bnn_engine.hpp"
#include "nn/bnn.hpp"
#include "nn/mlp.hpp"
#include "periphery/adc.hpp"
#include "util/table.hpp"

using namespace cim;

int main() {
  // 1. Train and binarize.
  util::Rng rng(3);
  const auto train = nn::generate_digits(800, rng, 0.05);
  const auto test = nn::generate_digits(200, rng, 0.05);
  nn::Mlp net({nn::kPixels, 48, nn::kClasses}, rng);
  net.fit(train, 50, 0.05, rng);
  const nn::BinaryMlp soft_bnn(net);
  std::cout << "float accuracy:  " << net.accuracy(test) << "\n"
            << "binary accuracy: " << soft_bnn.accuracy(test)
            << " (software XNOR-popcount reference)\n\n";

  // 2. Program both binary layers into FeRFET NOR arrays.
  ferfet::FerfetBnnEngine layer0(net.layers()[0].w);
  ferfet::FerfetBnnEngine layer1(net.layers()[1].w);
  std::cout << "layer0 array: " << layer0.array().rows() << " x "
            << layer0.array().cols() << " FeRFETs (weight pairs)\n"
            << "layer1 array: " << layer1.array().rows() << " x "
            << layer1.array().cols() << " FeRFETs\n\n";

  // 3. Run inference fully in-array and check agreement with software.
  std::size_t correct = 0;
  std::size_t agree = 0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    const auto x = test.features.row(i);
    double mean = 0.0;
    for (const double v : x) mean += v;
    mean /= static_cast<double>(x.size());
    std::vector<bool> bits(x.size());
    for (std::size_t k = 0; k < x.size(); ++k) bits[k] = x[k] >= mean;

    const auto h = layer0.forward(bits);
    std::vector<bool> hb(h.size());
    for (std::size_t k = 0; k < h.size(); ++k) hb[k] = h[k] >= 0;
    const auto y = layer1.forward(hb);
    const int pred = static_cast<int>(
        std::max_element(y.begin(), y.end()) - y.begin());

    if (pred == test.labels[i]) ++correct;
    if (pred == soft_bnn.predict(x)) ++agree;
  }
  std::cout << "FeRFET in-array accuracy: "
            << static_cast<double>(correct) / static_cast<double>(test.size())
            << "\nagreement with software BNN: "
            << static_cast<double>(agree) / static_cast<double>(test.size())
            << " (expected 1.0 — the engine is exact)\n\n";

  // 4. Cost story (Section V.D): digital FeRFET vs ADC-bound analog.
  const auto c0 = layer0.costs();
  const auto c1 = layer1.costs();
  const double n_inferences = static_cast<double>(test.size());
  periphery::Adc adc({.bits = 8});
  const double adc_energy_per_inf =
      adc.energy_per_sample_pj() * (48.0 + 10.0);  // one conversion per output

  util::Table t({"engine", "energy / inference (pJ)", "periphery"});
  t.set_title("BNN inference cost — FeRFET digital vs ReRAM analog");
  t.add_row({"FeRFET XNOR arrays (both layers)",
             util::Table::num((c0.energy_pj + c1.energy_pj) / n_inferences, 2),
             "sense + counter"});
  t.add_row({"ReRAM analog (ADC conversions alone)",
             util::Table::num(adc_energy_per_inf, 2), "DAC + S&H + 8b ADC"});
  t.print(std::cout);

  std::cout << "\nweights stay in the arrays after power-off: the Fe layer "
               "is non-volatile (Section V.A).\n";
  return 0;
}
