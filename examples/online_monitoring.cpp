/// \file online_monitoring.cpp
/// \brief The Section III.C / Fig. 7 pipeline in the field: a crossbar
///        serves a workload stream while its dynamic power is monitored;
///        wear-out faults strike mid-stream; the CUSUM detector raises an
///        alarm; the ML model estimates the faulty-cell fraction; and a
///        March C* pause-and-test confirms and locates the damage.
#include <iostream>

#include "memtest/march.hpp"
#include "memtest/power_monitor.hpp"
#include "util/table.hpp"

using namespace cim;

int main() {
  // A 32x32 binary array serving a periodic workload.
  crossbar::CrossbarConfig cfg;
  cfg.rows = cfg.cols = 32;
  cfg.tech = device::Technology::kSttMram;
  cfg.levels = 2;
  cfg.seed = 5;
  crossbar::Crossbar xbar(cfg);

  util::Rng rng(9);
  // 6% of the cells will go hard-stuck at cycle 700 (field wear-out).
  const auto map = fault::FaultMap::with_fault_count(
      32, 32, 60, fault::FaultMix::stuck_at_only(), rng);

  // 1. Train the fault-rate estimator offline on synthetically faulted
  //    sibling arrays (the "machine learning-based estimation model").
  //    Training arrays must match the monitored array's geometry and
  //    technology — the power features live on that scale.
  memtest::MonitorConfig mon_small;
  mon_small.cycles = 700;
  mon_small.cusum.warmup = 150;
  std::cout << "training fault-rate estimator on 40 synthetic arrays...\n";
  const auto examples = memtest::FaultRateEstimator::generate_training_data(
      cfg, mon_small, 40, rng, fault::FaultMix::stuck_at_only());
  memtest::FaultRateEstimator estimator;
  estimator.train(examples);
  std::cout << "estimator R^2 on training set: " << estimator.r2(examples)
            << "\n\n";

  // 2. Monitor the production array.
  memtest::MonitorConfig mon;
  mon.cycles = 1400;
  std::cout << "monitoring 1400 workload cycles (faults strike at 700)...\n";
  const auto run = memtest::run_monitored_workload(xbar, mon, rng, &map, 700);

  if (run.alarm_cycle) {
    std::cout << "CUSUM alarm at cycle " << *run.alarm_cycle
              << " (detection delay "
              << static_cast<long>(*run.alarm_cycle) - 700 << " cycles)\n";
  } else {
    std::cout << "no alarm raised (unexpected)\n";
  }
  if (run.located_changepoint)
    std::cout << "offline changepoint located at cycle "
              << *run.located_changepoint << "\n";

  // 3. Estimate the damage before paying for a full test.
  const std::size_t cp =
      run.located_changepoint.value_or(700) - run.calibration_cycles;
  const auto features = memtest::extract_features(run.residual_mw, cp);
  const double est = estimator.estimate(features);
  std::cout << "estimated faulty-cell fraction: " << est
            << " (truth: " << map.faulty_cell_fraction() << ")\n\n";

  // 4. The estimate is high -> trigger the expensive pause-and-test March.
  std::cout << "fault rate high: pausing for March C*...\n";
  const auto march = memtest::run_march(xbar, memtest::march_cstar());
  std::cout << "March C*: " << (march.pass ? "PASS" : "FAIL") << ", "
            << march.failures.size() << " failing reads, coverage of "
            << memtest::fault_coverage(map, march) << " of injected faults, "
            << march.total_ops << " ops in " << march.time_ns / 1e3
            << " us\n";

  // 5. Diagnose a few failing cells from their six-bit signatures.
  util::Table t({"cell", "signature diagnosis"});
  t.set_title("per-cell diagnosis from March C* signatures");
  std::size_t shown = 0;
  for (const auto& f : march.failures) {
    const auto sig = march.signatures[f.row * 32 + f.col];
    const auto diag = memtest::diagnose_cstar_signature(sig);
    if (diag == "ok" || shown >= 6) continue;
    t.add_row({"(" + std::to_string(f.row) + "," + std::to_string(f.col) + ")",
               diag});
    ++shown;
  }
  t.print(std::cout);
  return 0;
}
