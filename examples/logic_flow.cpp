/// \file logic_flow.cpp
/// \brief The Fig. 8 EDA flow end to end: take a Boolean specification,
///        synthesize it (netlist -> AIG -> MIG / NOR basis), map it onto
///        each ReRAM stateful-logic family, execute the mapped programs on
///        the crossbar simulator and verify them against the truth table.
#include <iostream>

#include "eda/flow.hpp"
#include "eda/imply_mapper.hpp"
#include "eda/magic_mapper.hpp"
#include "eda/majority_mapper.hpp"
#include "util/table.hpp"

using namespace cim;

int main() {
  // Specification: a 3-bit ripple-carry adder.
  const auto circuit = eda::ripple_carry_adder(3);
  std::cout << "circuit: 3-bit ripple-carry adder, "
            << circuit.num_inputs() << " inputs, " << circuit.num_outputs()
            << " outputs, " << circuit.gate_count() << " gates, depth "
            << circuit.depth() << "\n\n";

  // Phase 1-2: synthesis.
  const auto aig = eda::Aig::from_netlist(circuit);
  const auto mig = eda::Mig::from_aig(aig);
  std::cout << "AIG: " << aig.num_ands() << " ANDs, depth " << aig.depth()
            << " | MIG: " << mig.num_majs() << " MAJs, depth " << mig.depth()
            << "\n\n";

  // Phase 3: map to each logic family and execute.
  util::Table t({"family", "devices", "delay (steps)", "ADP", "verified"});
  t.set_title("technology mapping of rca3 onto the three logic families");

  {
    const auto prog = eda::compile_imply(aig, /*reuse_cells=*/true);
    t.add_row({"IMPLY", std::to_string(prog.num_cells),
               std::to_string(prog.delay()),
               std::to_string(prog.num_cells * prog.delay()),
               eda::verify_imply(prog, aig) ? "yes" : "NO"});
  }
  {
    const auto sched = eda::schedule_revamp(mig);
    t.add_row({"Majority (ReVAMP)", std::to_string(sched.device_count),
               std::to_string(sched.delay()) + " (lb " +
                   std::to_string(sched.delay_lower_bound()) + ")",
               std::to_string(sched.device_count * sched.delay()),
               eda::verify_revamp(mig, sched) ? "yes" : "NO"});
  }
  {
    const auto nor = aig.to_netlist().to_nor_only();
    const auto prog = eda::compile_magic(nor, /*reuse_cells=*/true);
    t.add_row({"MAGIC", std::to_string(prog.num_cells),
               std::to_string(prog.delay()),
               std::to_string(prog.num_cells * prog.delay()),
               eda::verify_magic(prog, nor) ? "yes" : "NO"});
  }
  t.print(std::cout);

  // Bonus: watch one MAGIC execution on a crossbar row, adding 5 + 3.
  const auto nor = aig.to_netlist().to_nor_only();
  const auto prog = eda::compile_magic(nor, true);
  crossbar::CrossbarConfig cfg;
  cfg.rows = 1;
  cfg.cols = prog.num_cells;
  cfg.tech = device::Technology::kSttMram;
  cfg.levels = 2;
  crossbar::Crossbar xbar(cfg);
  // Inputs: a=5 (101), b=3 (011), cin=0 -> packed per netlist input order.
  const std::uint64_t assignment = 5ull | (3ull << 3) | (0ull << 6);
  const auto out = eda::execute_magic(xbar, prog, assignment);
  std::uint64_t sum = 0;
  for (std::size_t k = 0; k < out.size(); ++k)
    sum |= static_cast<std::uint64_t>(out[k]) << k;
  std::cout << "\nMAGIC crossbar computes 5 + 3 = " << (sum & 0xF)
            << " using " << prog.num_cells << " devices and "
            << prog.delay() << " cycles; array spent "
            << xbar.stats().energy_pj << " pJ\n";
  return 0;
}
