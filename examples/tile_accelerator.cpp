/// \file tile_accelerator.cpp
/// \brief The `core` public API end to end: quantize a trained network,
///        partition it across CIM tiles, run digital-in/digital-out
///        inference through the full DAC -> crossbar -> ADC -> shift-add
///        path, and inspect the controller's instruction trace.
#include <iostream>

#include "core/quantized_mlp.hpp"
#include "core/cim_tile.hpp"
#include "util/table.hpp"

using namespace cim;

int main() {
  // 1. Train (software) and quantize to INT4 weights / INT4 activations.
  util::Rng rng(3);
  const auto train = nn::generate_digits(500, rng, 0.1);
  const auto test = nn::generate_digits(150, rng, 0.1);
  nn::Mlp net({nn::kPixels, 16, nn::kClasses}, rng);
  net.fit(train, 40, 0.05, rng);
  const auto q = core::QuantizedMlp::from_mlp(net, /*weight_bits=*/4,
                                              /*act_bits=*/4, train);
  std::cout << "float accuracy:          " << net.accuracy(test) << "\n"
            << "INT4 reference accuracy: " << q.accuracy_reference(test)
            << "\n";

  // 2. Build the accelerator: 32x16 tiles, 8-bit shared SAR ADCs.
  core::CimSystemConfig cfg;
  cfg.tile.tile.rows = 32;
  cfg.tile.tile.cols = 16;
  cfg.tile.tile.adc_bits = 8;
  cfg.tile.tile.adcs = 2;
  cfg.tile.array.model_ir_drop = false;
  cfg.tile.seed = 7;
  core::CimMlpRunner runner(q, cfg);

  // 3. Inference through the tiles.
  const double acc = runner.accuracy(test);
  const auto totals = runner.totals();
  util::Table t({"metric", "value"});
  t.set_title("tile accelerator — INT4 digit MLP");
  t.add_row({"tile accuracy", util::Table::num(acc, 3)});
  t.add_row({"tiles", std::to_string(totals.tiles)});
  t.add_row({"energy / inference (pJ)",
             util::Table::num(totals.energy_pj / double(test.size()), 1)});
  t.add_row({"latency / inference (ns)",
             util::Table::num(totals.time_ns / double(test.size()), 1)});
  t.add_row({"total area (um^2)", util::Table::num(totals.area_um2, 0)});
  t.print(std::cout);

  // 4. Peek at a single tile's controller trace.
  core::CimTileConfig tcfg;
  tcfg.tile.rows = 16;
  tcfg.tile.cols = 8;
  tcfg.array.model_ir_drop = false;
  core::CimTile tile(tcfg);
  util::Matrix w(8, 16, 0.0);
  for (std::size_t i = 0; i < 8; ++i) w(i, i) = 3.0;
  tile.program_weights(w);
  std::vector<std::uint32_t> x(16, 5);
  (void)tile.vmm_int(x, 4);
  std::cout << "\n";
  tile.trace().print(std::cout, 8);
  return 0;
}
