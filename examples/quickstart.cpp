/// \file quickstart.cpp
/// \brief cimlib in five minutes: build a ReRAM crossbar, program a matrix,
///        run an analog vector-matrix multiply, digitize the bitline
///        currents through an ADC, and read the cost counters.
#include <iostream>

#include "crossbar/crossbar.hpp"
#include "periphery/adc.hpp"
#include "util/table.hpp"

int main() {
  using namespace cim;

  // 1. Configure and build a 16x16 HfOx ReRAM crossbar with 16 conductance
  //    levels and program-and-verify writes.
  crossbar::CrossbarConfig cfg;
  cfg.rows = 16;
  cfg.cols = 16;
  cfg.tech = device::Technology::kReRamHfOx;
  cfg.levels = 16;
  cfg.verified_writes = true;
  cfg.seed = 42;
  crossbar::Crossbar xbar(cfg);

  // 2. Program a weight matrix (here: a diagonal ramp of levels).
  util::Matrix levels(16, 16, 0.0);
  for (std::size_t r = 0; r < 16; ++r) levels(r, r) = static_cast<double>(r);
  xbar.program_levels(levels);

  // 3. Apply an input voltage vector on the wordlines. The bitline currents
  //    ARE the multiply-accumulate results — n MACs in O(1) time (Fig. 4a).
  std::vector<double> volts(16, xbar.tech().v_read);
  const auto currents = xbar.vmm(volts);

  // 4. Digitize through an 8-bit ADC (the expensive part — Fig. 5).
  periphery::Adc adc({.bits = 8,
                      .kind = periphery::AdcKind::kSar,
                      .sample_rate_gsps = 1.28,
                      .full_scale_ua = xbar.tech().v_read *
                                       xbar.tech().g_on_us() * 16.0});

  util::Table t({"column", "I (uA)", "ADC code", "ideal I (uA)"});
  t.set_title("quickstart — one analog VMM through the full path");
  const auto ideal = xbar.ideal_vmm(volts);
  for (std::size_t c = 0; c < 16; c += 3) {
    t.add_row({std::to_string(c), util::Table::num(currents[c], 2),
               std::to_string(adc.quantize(currents[c])),
               util::Table::num(ideal[c], 2)});
  }
  t.print(std::cout);

  // 5. Cost accounting comes for free.
  const auto& s = xbar.stats();
  std::cout << "array ops: " << s.analog_writes << " writes, " << s.vmm_ops
            << " VMM; time " << util::Table::num(s.time_ns, 1) << " ns; energy "
            << util::Table::num(s.energy_pj, 1) << " pJ\n"
            << "ADC energy per sample: "
            << util::Table::num(adc.energy_per_sample_pj(), 3) << " pJ, area "
            << util::Table::num(adc.area_um2(), 0) << " um^2\n";
  return 0;
}
