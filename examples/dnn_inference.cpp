/// \file dnn_inference.cpp
/// \brief The neuromorphic-computing use case of Section II.D: train a
///        digit classifier, map it onto differential crossbar pairs, run
///        inference through the analog path, break it with stuck-at faults,
///        and repair the damage with X-ABFT scrubbing (Section III.C).
#include <algorithm>
#include <iostream>

#include "memtest/xabft.hpp"
#include "nn/crossbar_linear.hpp"
#include "nn/fault_tolerant_training.hpp"
#include "nn/mlp.hpp"
#include "util/table.hpp"

using namespace cim;

namespace {

double evaluate(nn::CrossbarLinear& l0, nn::CrossbarLinear& l1,
                const nn::Dataset& test) {
  std::size_t correct = 0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    auto h = l0.forward(test.features.row(i));
    for (double& v : h) v = std::max(0.0, v);
    double hmax = 1e-9;
    for (const double v : h) hmax = std::max(hmax, v);
    l1.set_x_max(hmax);
    const auto logits = l1.forward(h);
    const int pred = static_cast<int>(
        std::max_element(logits.begin(), logits.end()) - logits.begin());
    if (pred == test.labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(test.size());
}

}  // namespace

int main() {
  // 1. Train a small MLP in software.
  util::Rng rng(7);
  const auto train = nn::generate_digits(700, rng, 0.1);
  const auto test = nn::generate_digits(200, rng, 0.1);
  nn::Mlp net({nn::kPixels, 32, nn::kClasses}, rng);
  net.fit(train, 50, 0.05, rng);
  std::cout << "software accuracy: " << net.accuracy(test) << "\n";

  // 2. Map both layers onto crossbars (differential pairs hold the signs).
  nn::CrossbarLinearConfig cfg;
  cfg.array.seed = 11;
  cfg.program_verify = true;
  nn::CrossbarLinear l0(net.layers()[0].w, net.layers()[0].b, cfg);
  cfg.array.seed = 12;
  nn::CrossbarLinear l1(net.layers()[1].w, net.layers()[1].b, cfg);
  std::cout << "crossbar accuracy (fault-free): " << evaluate(l0, l1, test)
            << "\n";

  // 3. Break it: 85% yield with stuck-at faults.
  util::Rng frng(13);
  l0.apply_yield(0.85, frng);
  l1.apply_yield(0.85, frng);
  std::cout << "crossbar accuracy (85% yield):  " << evaluate(l0, l1, test)
            << "\n";

  // 3b. Recover with fault-masked retraining (the proposal of [38]).
  const auto retrain = nn::fault_tolerant_retrain(
      net, l0, l1, train, test, {.epochs = 5, .lr = 0.01}, rng);
  std::cout << "after fault-tolerant retraining: " << retrain.accuracy_after
            << " (" << retrain.epochs_run << " epochs)\n";
  std::cout << "array energy so far: " << l0.energy_pj() + l1.energy_pj()
            << " pJ\n\n";

  // 4. Fault tolerance demo on a protected matrix: X-ABFT detects and
  //    repairs a corrupted weight block.
  util::Matrix lv(8, 8);
  for (auto& v : lv.flat()) v = 6.0 + static_cast<double>(rng.uniform_int(8));
  crossbar::CrossbarConfig acfg;
  acfg.seed = 17;
  acfg.model_ir_drop = false;
  memtest::XabftProtected prot(lv, acfg);
  // Soft upset: one cell drifts to a wrong level.
  prot.array_mutable().program_cell(
      3, 5, prot.array().scheme().level_conductance_us(1));

  std::vector<double> x(8, 1.0);
  const auto mac = prot.multiply(x);
  std::cout << "X-ABFT inline check after upset: "
            << (mac.checksum_ok ? "clean (upset below threshold)" : "FAULT "
               "DETECTED")
            << " (residual " << mac.residual_levels << " levels)\n";

  const auto rep = prot.scrub();
  for (const auto& fix : rep.corrections) {
    std::cout << "scrub: cell (" << fix.row << "," << fix.col << ") read level "
              << fix.observed_level << ", checksum implies "
              << fix.corrected_level << ", reprogram "
              << (fix.reprogram_succeeded ? "succeeded" : "FAILED (hard)")
              << "\n";
  }
  const auto after = prot.multiply(x);
  std::cout << "post-scrub inline check: "
            << (after.checksum_ok ? "clean" : "still faulty") << "\n";
  return 0;
}
