/// \file test_thread_pool.cpp
/// \brief ThreadPool contract tests: coverage of the index space, inline
///        degenerate cases, exception propagation, nesting, CIM_THREADS
///        parsing, and the determinism guarantee the rest of the repo
///        builds on (bit-identical results for any pool size).
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

using cim::util::Rng;
using cim::util::ThreadPool;

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const std::size_t n = 10000;
  std::vector<int> hits(n, 0);
  // Each index is touched by exactly one body call, so plain ints suffice.
  pool.parallel_for(0, n, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i], 1) << "index " << i;
}

TEST(ThreadPool, NonZeroBeginCoversOnlyTheRange) {
  ThreadPool pool(3);
  std::vector<int> hits(20, 0);
  pool.parallel_for(5, 15, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < 20; ++i)
    EXPECT_EQ(hits[i], i >= 5 && i < 15 ? 1 : 0);
}

TEST(ThreadPool, EmptyRangeIsANoop) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.parallel_for(7, 7, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, SizeOnePoolHasNoWorkers) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1u);
  std::vector<int> hits(100, 0);
  pool.parallel_for(0, 100, [&](std::size_t i) { ++hits[i]; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 100);
}

TEST(ThreadPool, ThreadCountMatchesRequest) {
  EXPECT_EQ(ThreadPool(2).thread_count(), 2u);
  EXPECT_EQ(ThreadPool(8).thread_count(), 8u);
  EXPECT_GE(ThreadPool(0).thread_count(), 1u);  // 0 -> default_threads()
}

TEST(ThreadPool, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(0, 100,
                        [&](std::size_t i) {
                          if (i == 37) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The pool survives a throwing job and runs the next one normally.
  std::atomic<int> calls{0};
  pool.parallel_for(0, 50, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 50);
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.parallel_for(0, 4, [&](std::size_t) {
    pool.parallel_for(0, 4, [&](std::size_t) { ++calls; });
  });
  EXPECT_EQ(calls.load(), 16);
}

TEST(ThreadPool, ParseThreads) {
  EXPECT_EQ(ThreadPool::parse_threads("8"), 8u);
  EXPECT_EQ(ThreadPool::parse_threads("1"), 1u);
  EXPECT_EQ(ThreadPool::parse_threads("abc"), 0u);
  EXPECT_EQ(ThreadPool::parse_threads(""), 0u);
  EXPECT_EQ(ThreadPool::parse_threads(nullptr), 0u);
  EXPECT_EQ(ThreadPool::parse_threads("0"), 0u);
}

TEST(ThreadPool, GlobalPoolIsUsable) {
  auto& pool = ThreadPool::global();
  EXPECT_GE(pool.thread_count(), 1u);
  std::vector<int> hits(64, 0);
  pool.parallel_for(0, 64, [&](std::size_t i) { ++hits[i]; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 64);
}

// The determinism contract: when the body derives randomness from the index
// via counter-based stream splitting, the aggregate is bit-identical for any
// pool size.
TEST(ThreadPool, StreamSplitMonteCarloIsPoolSizeInvariant) {
  const auto run = [](std::size_t threads) {
    ThreadPool pool(threads);
    std::vector<double> draws(256, 0.0);
    pool.parallel_for(0, draws.size(), [&](std::size_t i) {
      Rng rng = Rng::stream(42, i);
      double acc = 0.0;
      for (int k = 0; k < 100; ++k) acc += rng.uniform(0.0, 1.0);
      draws[i] = acc;
    });
    return draws;
  };
  const auto ref = run(1);
  EXPECT_EQ(ref, run(2));
  EXPECT_EQ(ref, run(8));
}

TEST(RngStream, StreamsAreStableAndDistinct) {
  // Pure function of (seed, index): same args, same stream.
  EXPECT_EQ(Rng::stream_seed(7, 3), Rng::stream_seed(7, 3));
  // Different indices and different seeds give different streams.
  EXPECT_NE(Rng::stream_seed(7, 3), Rng::stream_seed(7, 4));
  EXPECT_NE(Rng::stream_seed(7, 3), Rng::stream_seed(8, 3));
  // Adjacent streams decorrelate: first draws differ.
  Rng a = Rng::stream(7, 0);
  Rng b = Rng::stream(7, 1);
  EXPECT_NE(a(), b());
}

}  // namespace
