#include "util/regression.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace cim::util {
namespace {

TEST(Ridge, RecoversLinearModel) {
  Rng rng(3);
  const std::size_t n = 200, d = 3;
  std::vector<double> x(n * d), y(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < d; ++j) x[i * d + j] = rng.normal(0.0, 1.0);
    y[i] = 2.0 * x[i * d] - 1.0 * x[i * d + 1] + 0.5 * x[i * d + 2] + 3.0;
  }
  RidgeRegression reg(1e-6);
  reg.fit(x, y, d);
  const std::vector<double> probe = {1.0, 1.0, 1.0};
  EXPECT_NEAR(reg.predict(probe), 2.0 - 1.0 + 0.5 + 3.0, 1e-3);
  EXPECT_GT(reg.r2(x, y), 0.999);
}

TEST(Ridge, NoisyFitStillGood) {
  Rng rng(5);
  const std::size_t n = 500, d = 2;
  std::vector<double> x(n * d), y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i * d] = rng.uniform(0, 10);
    x[i * d + 1] = rng.uniform(-5, 5);
    y[i] = 1.5 * x[i * d] + 0.2 * x[i * d + 1] + rng.normal(0.0, 0.5);
  }
  RidgeRegression reg(1e-3);
  reg.fit(x, y, d);
  EXPECT_GT(reg.r2(x, y), 0.98);
}

TEST(Ridge, ConstantFeatureIsHarmless) {
  Rng rng(7);
  const std::size_t n = 100, d = 2;
  std::vector<double> x(n * d), y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i * d] = 5.0;  // constant
    x[i * d + 1] = rng.uniform(0, 1);
    y[i] = 4.0 * x[i * d + 1];
  }
  RidgeRegression reg;
  reg.fit(x, y, d);
  const std::vector<double> probe = {5.0, 0.5};
  EXPECT_NEAR(reg.predict(probe), 2.0, 0.05);
}

TEST(Ridge, StrongRegularizationShrinksTowardMean) {
  Rng rng(9);
  const std::size_t n = 100, d = 1;
  std::vector<double> x(n), y(n);
  double ymean = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = rng.uniform(-1, 1);
    y[i] = 10.0 * x[i];
    ymean += y[i];
  }
  ymean /= n;
  RidgeRegression reg(1e6);
  reg.fit(x, y, d);
  const std::vector<double> probe = {0.8};
  EXPECT_NEAR(reg.predict(probe), ymean, 0.5);
}

TEST(Ridge, InvalidArgumentsThrow) {
  RidgeRegression reg;
  std::vector<double> x = {1, 2, 3};
  std::vector<double> y = {1};
  EXPECT_THROW(reg.fit(x, y, 0), std::invalid_argument);
  EXPECT_THROW(reg.fit(x, y, 2), std::invalid_argument);
  std::vector<double> probe = {1.0};
  EXPECT_THROW((void)reg.predict(probe), std::invalid_argument);
}

TEST(Ridge, PredictDimMismatchThrows) {
  Rng rng(11);
  std::vector<double> x = {1, 2, 3, 4};
  std::vector<double> y = {1, 2};
  RidgeRegression reg;
  reg.fit(x, y, 2);
  std::vector<double> bad = {1.0};
  EXPECT_THROW((void)reg.predict(bad), std::invalid_argument);
}

}  // namespace
}  // namespace cim::util
