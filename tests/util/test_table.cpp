#include "util/table.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <sstream>

namespace cim::util {
namespace {

TEST(Table, PrintsAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  std::ostringstream os;
  t.print(os);
  const auto s = os.str();
  EXPECT_NE(s.find("| name   | value |"), std::string::npos);
  EXPECT_NE(s.find("| longer | 22    |"), std::string::npos);
}

TEST(Table, TitleAppears) {
  Table t({"a"});
  t.set_title("My Table");
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("== My Table =="), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, EmptyHeaderThrows) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, CsvEscapesSpecialCharacters) {
  Table t({"a", "b"});
  t.add_row({"hello, world", "quote\"inside"});
  std::ostringstream os;
  t.print_csv(os);
  const auto s = os.str();
  EXPECT_NE(s.find("\"hello, world\""), std::string::npos);
  EXPECT_NE(s.find("\"quote\"\"inside\""), std::string::npos);
}

TEST(Table, NumFormatsTrimTrailingZeros) {
  EXPECT_EQ(Table::num(3.25, 3), "3.25");
  EXPECT_EQ(Table::num(12.0, 3), "12");
  EXPECT_EQ(Table::num(0.5, 1), "0.5");
  EXPECT_EQ(Table::num(-0.0001, 2), "0");
}

TEST(Table, NumHandlesNonFinite) {
  EXPECT_EQ(Table::num(std::numeric_limits<double>::quiet_NaN()), "nan");
  EXPECT_EQ(Table::num(std::numeric_limits<double>::infinity()), "inf");
  EXPECT_EQ(Table::num(-std::numeric_limits<double>::infinity()), "-inf");
}

TEST(Table, RowAccess) {
  Table t({"a"});
  t.add_row({"v"});
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_EQ(t.cols(), 1u);
  EXPECT_EQ(t.row(0)[0], "v");
}

}  // namespace
}  // namespace cim::util
