#include "util/matrix.hpp"

#include <gtest/gtest.h>

namespace cim::util {
namespace {

TEST(Matrix, ConstructAndIndex) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m(1, 2), 1.5);
  m(0, 0) = 7.0;
  EXPECT_EQ(m(0, 0), 7.0);
}

TEST(Matrix, InitializerList) {
  Matrix m = {{1, 2}, {3, 4}};
  EXPECT_EQ(m(0, 1), 2.0);
  EXPECT_EQ(m(1, 0), 3.0);
}

TEST(Matrix, RaggedInitThrows) {
  EXPECT_THROW((Matrix{{1, 2}, {3}}), std::invalid_argument);
}

TEST(Matrix, OutOfRangeThrows) {
  Matrix m(2, 2);
  EXPECT_THROW((void)m(2, 0), std::out_of_range);
  EXPECT_THROW((void)m(0, 2), std::out_of_range);
}

TEST(Matrix, Matvec) {
  Matrix m = {{1, 2}, {3, 4}, {5, 6}};
  const std::vector<double> x = {1.0, -1.0};
  const auto y = m.matvec(x);
  ASSERT_EQ(y.size(), 3u);
  EXPECT_DOUBLE_EQ(y[0], -1.0);
  EXPECT_DOUBLE_EQ(y[1], -1.0);
  EXPECT_DOUBLE_EQ(y[2], -1.0);
}

TEST(Matrix, MatvecTransposed) {
  Matrix m = {{1, 2}, {3, 4}};
  const std::vector<double> x = {1.0, 1.0};
  const auto y = m.matvec_transposed(x);
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], 4.0);
  EXPECT_DOUBLE_EQ(y[1], 6.0);
}

TEST(Matrix, MatvecDimMismatchThrows) {
  Matrix m(2, 3);
  const std::vector<double> bad = {1.0, 2.0};
  EXPECT_THROW((void)m.matvec(bad), std::invalid_argument);
}

TEST(Matrix, TransposeRoundTrip) {
  Matrix m = {{1, 2, 3}, {4, 5, 6}};
  const auto t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_EQ(t(2, 1), 6.0);
  EXPECT_TRUE(t.transposed() == m);
}

TEST(Matrix, Multiply) {
  Matrix a = {{1, 2}, {3, 4}};
  Matrix b = {{5, 6}, {7, 8}};
  const auto c = a.multiply(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, RowSpanMutates) {
  Matrix m(2, 2, 0.0);
  auto r = m.row(1);
  r[0] = 9.0;
  EXPECT_EQ(m(1, 0), 9.0);
}

}  // namespace
}  // namespace cim::util
