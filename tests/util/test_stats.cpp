#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace cim::util {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
}

TEST(RunningStats, KnownSample) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesCombined) {
  Rng rng(5);
  RunningStats a, b, all;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.normal(1.0, 2.0);
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(Summary, OrderStatistics) {
  std::vector<double> xs = {5, 1, 4, 2, 3};
  const auto s = summarize(xs);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
}

TEST(Summary, SkewnessSign) {
  // Right-skewed sample has positive skewness.
  std::vector<double> xs = {1, 1, 1, 1, 2, 2, 3, 10};
  EXPECT_GT(summarize(xs).skewness, 0.5);
}

TEST(QuantileSorted, Interpolates) {
  std::vector<double> xs = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile_sorted(xs, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(xs, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(xs, 1.0), 10.0);
}

TEST(Pearson, PerfectCorrelation) {
  std::vector<double> xs = {1, 2, 3, 4};
  std::vector<double> ys = {2, 4, 6, 8};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
  std::vector<double> yneg = {8, 6, 4, 2};
  EXPECT_NEAR(pearson(xs, yneg), -1.0, 1e-12);
}

TEST(Pearson, DegenerateReturnsZero) {
  std::vector<double> xs = {1, 1, 1};
  std::vector<double> ys = {2, 3, 4};
  EXPECT_EQ(pearson(xs, ys), 0.0);
}

TEST(Errors, MaeAndRmse) {
  std::vector<double> a = {1, 2, 3};
  std::vector<double> b = {2, 2, 5};
  EXPECT_DOUBLE_EQ(mean_abs_error(a, b), 1.0);
  EXPECT_NEAR(rms_error(a, b), std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(Errors, SizeMismatchThrows) {
  std::vector<double> a = {1.0};
  std::vector<double> b = {1.0, 2.0};
  EXPECT_THROW((void)mean_abs_error(a, b), std::invalid_argument);
  EXPECT_THROW((void)rms_error(a, b), std::invalid_argument);
}

TEST(Histogram, BinsAndOverflow) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.add(i + 0.5);
  h.add(-1.0);
  h.add(42.0);
  EXPECT_EQ(h.total(), 12u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  for (std::size_t b = 0; b < 10; ++b) EXPECT_EQ(h.bin_count(b), 1u);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 0.5);
}

TEST(Histogram, BadRangeThrows) {
  EXPECT_THROW(Histogram(1.0, 1.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

}  // namespace
}  // namespace cim::util
