#include "util/changepoint.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace cim::util {
namespace {

std::vector<double> shifted_series(std::size_t n, std::size_t shift_at,
                                   double mu0, double mu1, double sigma,
                                   std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> xs(n);
  for (std::size_t i = 0; i < n; ++i)
    xs[i] = rng.normal(i < shift_at ? mu0 : mu1, sigma);
  return xs;
}

TEST(Cusum, NoAlarmOnStationarySeries) {
  Rng rng(3);
  CusumDetector det;
  for (int i = 0; i < 2000; ++i) det.update(rng.normal(10.0, 1.0));
  EXPECT_FALSE(det.alarmed());
}

TEST(Cusum, FalseAlarmRateLowAcrossSeeds) {
  int false_alarms = 0;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(seed);
    CusumDetector det;
    for (int i = 0; i < 1500; ++i) det.update(rng.normal(5.0, 0.7));
    if (det.alarmed()) ++false_alarms;
  }
  EXPECT_LE(false_alarms, 1);
}

TEST(Cusum, DetectsUpwardShift) {
  const auto xs = shifted_series(1200, 600, 10.0, 12.0, 1.0, 7);
  CusumDetector det;
  for (const double x : xs) det.update(x);
  ASSERT_TRUE(det.alarmed());
  // Alarm fires after the true changepoint but within a reasonable delay.
  EXPECT_GE(*det.alarm_index(), 600u);
  EXPECT_LE(*det.alarm_index(), 660u);
}

TEST(Cusum, DetectsDownwardShift) {
  const auto xs = shifted_series(1200, 600, 10.0, 8.0, 1.0, 11);
  CusumDetector det;
  for (const double x : xs) det.update(x);
  ASSERT_TRUE(det.alarmed());
  EXPECT_GE(*det.alarm_index(), 600u);
}

TEST(Cusum, SmallerShiftDetectedSlower) {
  const auto big = shifted_series(3000, 600, 10.0, 13.0, 1.0, 13);
  const auto small = shifted_series(3000, 600, 10.0, 11.2, 1.0, 13);
  CusumDetector d1, d2;
  for (const double x : big) d1.update(x);
  for (const double x : small) d2.update(x);
  ASSERT_TRUE(d1.alarmed());
  ASSERT_TRUE(d2.alarmed());
  EXPECT_LT(*d1.alarm_index(), *d2.alarm_index());
}

TEST(Cusum, ResetClearsState) {
  const auto xs = shifted_series(1200, 600, 10.0, 14.0, 1.0, 17);
  CusumDetector det;
  for (const double x : xs) det.update(x);
  ASSERT_TRUE(det.alarmed());
  det.reset();
  EXPECT_FALSE(det.alarmed());
  EXPECT_EQ(det.samples(), 0u);
}

TEST(Cusum, WarmupEstimatesBaseline) {
  Rng rng(19);
  CusumDetector det({.warmup = 500, .k = 0.5, .h = 8.0});
  for (int i = 0; i < 500; ++i) det.update(rng.normal(42.0, 2.0));
  EXPECT_NEAR(det.mu0(), 42.0, 0.3);
  EXPECT_NEAR(det.sigma0(), 2.0, 0.3);
}

TEST(Cusum, ConstantWarmupDoesNotDivideByZero) {
  CusumDetector det({.warmup = 10, .k = 0.5, .h = 8.0});
  for (int i = 0; i < 10; ++i) det.update(5.0);
  // A later deviation should alarm rather than crash.
  bool alarmed = false;
  for (int i = 0; i < 5 && !alarmed; ++i) alarmed = det.update(6.0);
  EXPECT_TRUE(alarmed);
}

TEST(LocateMeanShift, FindsTrueChangepoint) {
  const auto xs = shifted_series(1000, 600, 5.0, 7.0, 0.5, 23);
  const auto cp = locate_mean_shift(xs);
  ASSERT_TRUE(cp.has_value());
  EXPECT_NEAR(static_cast<double>(*cp), 600.0, 15.0);
}

TEST(LocateMeanShift, TooShortReturnsNullopt) {
  std::vector<double> xs = {1.0, 2.0, 3.0};
  EXPECT_FALSE(locate_mean_shift(xs).has_value());
}

TEST(LocateMeanShift, ConstantSeriesReturnsNullopt) {
  std::vector<double> xs(100, 3.14);
  EXPECT_FALSE(locate_mean_shift(xs).has_value());
}

}  // namespace
}  // namespace cim::util
