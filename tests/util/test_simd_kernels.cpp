// Cross-ISA conformance of the dispatched micro-kernels (ISSUE 7).
//
// Sweeps every kernel over every table this host can execute (scalar is
// always present; avx2/avx512 when built + CPUID-supported) at edge sizes
// (0, 1, 3, 5, odd vector tails) and deliberately misaligned buffers, and
// checks the simd_dispatch contract:
//   - axpy / gemm_accumulate / vmm_row_accumulate{currents,noise_var} are
//     BIT-IDENTICAL to the portable scalar table,
//   - dot / vmm_row energy are reductions: deterministic per table, only
//     tolerance-equal across tables,
//   - dot_serial is the strict left-to-right escape hatch,
//   - set_isa / table_for clamp unsupported requests downward.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "util/kernels.hpp"
#include "util/simd_dispatch.hpp"

namespace simd = cim::util::simd;
namespace kernels = cim::util::kernels;

namespace {

// Restores the startup-selected table when a test forces another one.
class IsaGuard {
 public:
  IsaGuard() : saved_(simd::active_isa()) {}
  ~IsaGuard() { simd::set_isa(saved_); }

 private:
  simd::Isa saved_;
};

// Deterministic non-trivial doubles (mixed signs and magnitudes) so lane
// reductions and tails cannot cancel to an accidental match.
double pattern(std::uint64_t i, std::uint64_t salt) {
  std::uint64_t x = (i + 1) * 0x9e3779b97f4a7c15ULL + salt;
  x ^= x >> 29;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 32;
  const double mag = static_cast<double>(x % 10000) / 977.0;
  return ((x >> 13) & 1) != 0 ? -mag : mag;
}

std::vector<double> make_vec(std::size_t n, std::uint64_t salt,
                             std::size_t pad = 0) {
  std::vector<double> v(n + pad);
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = pattern(i, salt);
  return v;
}

const std::size_t kSizes[] = {0,  1,  2,  3,  5,  7,  8,   9,  15,
                              16, 17, 31, 32, 33, 63, 64,  65, 100,
                              127, 257};

// Offsets into an over-allocated buffer: 0 keeps malloc's 16-byte
// alignment, 1..3 guarantee the data pointer is NOT 32/64-byte aligned.
const std::size_t kOffsets[] = {0, 1, 2, 3};

}  // namespace

TEST(SimdDispatch, SupportedIsasContainsScalarAndIsOrdered) {
  const auto isas = simd::supported_isas();
  ASSERT_FALSE(isas.empty());
  EXPECT_EQ(isas.front(), simd::Isa::kScalar);
  for (std::size_t i = 1; i < isas.size(); ++i)
    EXPECT_LT(static_cast<int>(isas[i - 1]), static_cast<int>(isas[i]));
  EXPECT_EQ(isas.back(), simd::max_supported_isa());
}

TEST(SimdDispatch, TableForClampsToSupported) {
  const simd::Isa max = simd::max_supported_isa();
  for (simd::Isa req :
       {simd::Isa::kScalar, simd::Isa::kAvx2, simd::Isa::kAvx512}) {
    const auto& t = simd::table_for(req);
    ASSERT_NE(t.dot, nullptr);
    ASSERT_NE(t.axpy, nullptr);
    ASSERT_NE(t.gemm_accumulate, nullptr);
    ASSERT_NE(t.vmm_row_accumulate, nullptr);
    EXPECT_LE(static_cast<int>(t.isa), static_cast<int>(max));
    if (static_cast<int>(req) <= static_cast<int>(max))
      EXPECT_EQ(t.isa, req);  // supported requests are honoured exactly
  }
}

TEST(SimdDispatch, SetIsaClampsAndActivates) {
  IsaGuard guard;
  const simd::Isa max = simd::max_supported_isa();
  const simd::Isa got = simd::set_isa(simd::Isa::kAvx512);
  EXPECT_LE(static_cast<int>(got), static_cast<int>(max));
  EXPECT_EQ(simd::active_isa(), got);
  EXPECT_EQ(simd::active().isa, got);

  EXPECT_EQ(simd::set_isa(simd::Isa::kScalar), simd::Isa::kScalar);
  EXPECT_EQ(simd::active_isa(), simd::Isa::kScalar);
  EXPECT_STREQ(simd::active_isa_name(), "scalar");
}

TEST(SimdKernels, DotMatchesScalarWithinUlps) {
  const auto& scalar = simd::table_for(simd::Isa::kScalar);
  for (simd::Isa isa : simd::supported_isas()) {
    const auto& t = simd::table_for(isa);
    for (std::size_t n : kSizes) {
      for (std::size_t off : kOffsets) {
        const auto a = make_vec(n, 11, off);
        const auto b = make_vec(n, 23, off);
        const double ref = scalar.dot(a.data() + off, b.data() + off, n);
        const double got = t.dot(a.data() + off, b.data() + off, n);
        // Reduction: reassociation drift only. Scale tolerance with the
        // sum of |a_i b_i| so cancellation-heavy inputs stay testable.
        double scale = 1.0;
        for (std::size_t i = 0; i < n; ++i)
          scale += std::abs(a[off + i] * b[off + i]);
        EXPECT_NEAR(got, ref, 1e-12 * scale)
            << "isa=" << simd::isa_name(isa) << " n=" << n << " off=" << off;
        // Deterministic per table: the same call is bit-identical.
        EXPECT_EQ(got, t.dot(a.data() + off, b.data() + off, n));
      }
    }
  }
}

TEST(SimdKernels, DotSerialIsStrictLeftToRight) {
  for (std::size_t n : kSizes) {
    const auto a = make_vec(n, 31);
    const auto b = make_vec(n, 47);
    double ref = 0.0;
    for (std::size_t i = 0; i < n; ++i) ref += a[i] * b[i];
    EXPECT_EQ(kernels::dot_serial(a.data(), b.data(), n), ref) << "n=" << n;
  }
}

TEST(SimdKernels, AxpyBitIdenticalAcrossIsas) {
  const auto& scalar = simd::table_for(simd::Isa::kScalar);
  for (simd::Isa isa : simd::supported_isas()) {
    const auto& t = simd::table_for(isa);
    for (std::size_t n : kSizes) {
      for (std::size_t off : kOffsets) {
        const auto x = make_vec(n, 5, off);
        auto y_ref = make_vec(n, 71, off);
        auto y_got = y_ref;
        const double a = pattern(n, 99);
        scalar.axpy(a, x.data() + off, y_ref.data() + off, n);
        t.axpy(a, x.data() + off, y_got.data() + off, n);
        for (std::size_t i = 0; i < y_ref.size(); ++i)
          ASSERT_EQ(y_got[i], y_ref[i])
              << "isa=" << simd::isa_name(isa) << " n=" << n << " off=" << off
              << " i=" << i;
      }
    }
  }
}

TEST(SimdKernels, GemmAccumulateBitIdenticalAcrossIsas) {
  const auto& scalar = simd::table_for(simd::Isa::kScalar);
  struct Shape {
    std::size_t m, k, n;
  };
  // Edge shapes: empty dims, single elements, odd tails, and sizes that
  // cross the kernel's kKc=64 / kNc=256 blocking boundaries.
  const Shape shapes[] = {{0, 3, 3}, {3, 0, 3}, {3, 3, 0}, {1, 1, 1},
                          {1, 5, 3}, {3, 5, 1}, {5, 7, 9}, {4, 65, 17},
                          {2, 130, 300}, {3, 64, 256}};
  for (simd::Isa isa : simd::supported_isas()) {
    const auto& t = simd::table_for(isa);
    for (const auto& s : shapes) {
      // Strides larger than the row length exercise the lda/ldb/ldc paths.
      const std::size_t lda = s.k + 3, ldb = s.n + 2, ldc = s.n + 5;
      auto a = make_vec(s.m * lda, 7);
      const auto b = make_vec(s.k * ldb, 13);
      // Plant some exact zeros in A: the kernel skips av == 0 entries and
      // that branch must not perturb bit-exactness.
      for (std::size_t i = 0; i < s.m * lda; i += 7) a[i] = 0.0;
      auto c_ref = make_vec(s.m * ldc, 17);
      auto c_got = c_ref;
      scalar.gemm_accumulate(a.data(), lda, b.data(), ldb, c_ref.data(), ldc,
                             s.m, s.k, s.n);
      t.gemm_accumulate(a.data(), lda, b.data(), ldb, c_got.data(), ldc, s.m,
                        s.k, s.n);
      for (std::size_t i = 0; i < c_ref.size(); ++i)
        ASSERT_EQ(c_got[i], c_ref[i])
            << "isa=" << simd::isa_name(isa) << " m=" << s.m << " k=" << s.k
            << " n=" << s.n << " i=" << i;
    }
  }
}

TEST(SimdKernels, VmmRowAccumulateCurrentsNoiseBitIdentical) {
  const auto& scalar = simd::table_for(simd::Isa::kScalar);
  const double noise_frac = 0.01;
  const double t_read = 1.0;
  for (simd::Isa isa : simd::supported_isas()) {
    const auto& t = simd::table_for(isa);
    for (std::size_t n : kSizes) {
      for (std::size_t off : kOffsets) {
        // Conductances are non-negative in the crossbar; keep the fixture
        // faithful (|pattern|) while voltages carry both signs.
        auto g = make_vec(n, 41, off);
        for (auto& v : g) v = std::abs(v);
        const double v_in = pattern(n, 53);

        auto cur_ref = make_vec(n, 61, off);
        auto var_ref = make_vec(n, 67, off);
        for (auto& x : var_ref) x = std::abs(x);
        auto cur_got = cur_ref;
        auto var_got = var_ref;
        double e_ref = 0.5, e_got = 0.5;

        scalar.vmm_row_accumulate(v_in, g.data() + off, cur_ref.data() + off,
                                  var_ref.data() + off, noise_frac, t_read, n,
                                  e_ref);
        t.vmm_row_accumulate(v_in, g.data() + off, cur_got.data() + off,
                             var_got.data() + off, noise_frac, t_read, n,
                             e_got);

        for (std::size_t i = 0; i < cur_ref.size(); ++i) {
          ASSERT_EQ(cur_got[i], cur_ref[i])
              << "currents isa=" << simd::isa_name(isa) << " n=" << n
              << " off=" << off << " i=" << i;
          ASSERT_EQ(var_got[i], var_ref[i])
              << "noise_var isa=" << simd::isa_name(isa) << " n=" << n
              << " off=" << off << " i=" << i;
        }
        // Energy is a reduction: tolerance across tables, exact re-run.
        EXPECT_NEAR(e_got, e_ref, 1e-12 * (1.0 + std::abs(e_ref)))
            << "isa=" << simd::isa_name(isa) << " n=" << n << " off=" << off;
        // Re-run from the same starting state must reproduce bit-exactly.
        double e_again = 0.5;
        auto cur2 = make_vec(n, 61, off);
        auto var2 = make_vec(n, 67, off);
        for (auto& x : var2) x = std::abs(x);
        t.vmm_row_accumulate(v_in, g.data() + off, cur2.data() + off,
                             var2.data() + off, noise_frac, t_read, n,
                             e_again);
        EXPECT_EQ(e_again, e_got);
      }
    }
  }
}

TEST(SimdKernels, DispatchedWrappersFollowActiveTable) {
  IsaGuard guard;
  const std::size_t n = 33;
  const auto a = make_vec(n, 3);
  const auto b = make_vec(n, 9);
  for (simd::Isa isa : simd::supported_isas()) {
    simd::set_isa(isa);
    const auto& t = simd::table_for(isa);
    EXPECT_EQ(kernels::dot(a.data(), b.data(), n),
              t.dot(a.data(), b.data(), n));
    auto y_wrap = make_vec(n, 77);
    auto y_tab = y_wrap;
    kernels::axpy(2.5, a.data(), y_wrap.data(), n);
    t.axpy(2.5, a.data(), y_tab.data(), n);
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(y_wrap[i], y_tab[i]);
  }
}
