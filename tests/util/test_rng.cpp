#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <set>

namespace cim::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversRangeUniformly) {
  Rng rng(13);
  std::array<int, 7> counts{};
  const int n = 70000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_int(7)];
  for (const int c : counts) EXPECT_NEAR(c, n / 7, 600);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(17);
  double sum = 0.0, sumsq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(2.0, 3.0);
    sum += x;
    sumsq += x * x;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(var, 9.0, 0.3);
}

TEST(Rng, LognormalIsPositive) {
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.lognormal(0.0, 0.5), 0.0);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, BernoulliDegenerateProbabilities) {
  Rng rng(29);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, PermutationIsAPermutation) {
  Rng rng(31);
  const auto p = rng.permutation(100);
  std::set<std::size_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(Rng, PermutationEmptyAndSingle) {
  Rng rng(37);
  EXPECT_TRUE(rng.permutation(0).empty());
  const auto p = rng.permutation(1);
  ASSERT_EQ(p.size(), 1u);
  EXPECT_EQ(p[0], 0u);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(41);
  Rng child = a.split();
  // The child's output should differ from the parent's next outputs.
  int same = 0;
  for (int i = 0; i < 50; ++i)
    if (a() == child()) ++same;
  EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace cim::util
