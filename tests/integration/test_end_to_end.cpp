/// End-to-end integration tests crossing module boundaries: the scenarios
/// the example applications script, checked automatically.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/cim_system.hpp"
#include "eda/flow.hpp"
#include "ferfet/bnn_engine.hpp"
#include "memtest/march.hpp"
#include "memtest/power_monitor.hpp"
#include "memtest/xabft.hpp"
#include "nn/bnn.hpp"
#include "nn/crossbar_linear.hpp"
#include "nn/mlp.hpp"

namespace cim {
namespace {

/// Train -> map to crossbars -> infer: accuracy survives the analog path.
TEST(EndToEnd, MlpOnCrossbarsKeepsAccuracy) {
  util::Rng rng(3);
  const auto train = nn::generate_digits(500, rng, 0.1);
  const auto test = nn::generate_digits(150, rng, 0.1);
  nn::Mlp net({nn::kPixels, 24, nn::kClasses}, rng);
  net.fit(train, 40, 0.05, rng);
  const double float_acc = net.accuracy(test);
  ASSERT_GT(float_acc, 0.8);

  // Map both layers onto crossbar pairs.
  nn::CrossbarLinearConfig cfg;
  cfg.array.seed = 7;
  cfg.program_verify = true;
  nn::CrossbarLinear l0(net.layers()[0].w, net.layers()[0].b, cfg);
  cfg.array.seed = 8;
  nn::CrossbarLinear l1(net.layers()[1].w, net.layers()[1].b, cfg);

  std::size_t correct = 0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    auto h = l0.forward(test.features.row(i));
    for (double& v : h) v = std::max(0.0, v);
    // Rescale hidden activations into the second layer's input range.
    double hmax = 1e-9;
    for (const double v : h) hmax = std::max(hmax, v);
    l1.set_x_max(hmax);
    const auto logits = l1.forward(h);
    const int pred = static_cast<int>(
        std::max_element(logits.begin(), logits.end()) - logits.begin());
    if (pred == test.labels[i]) ++correct;
  }
  const double analog_acc =
      static_cast<double>(correct) / static_cast<double>(test.size());
  EXPECT_GT(analog_acc, float_acc - 0.25);
}

/// Accuracy-vs-yield trend of [38]: lower yield -> lower accuracy.
TEST(EndToEnd, AccuracyDegradesMonotonicallyWithYield) {
  util::Rng rng(5);
  const auto train = nn::generate_digits(500, rng, 0.1);
  const auto test = nn::generate_digits(120, rng, 0.1);
  nn::Mlp net({nn::kPixels, 24, nn::kClasses}, rng);
  net.fit(train, 40, 0.05, rng);

  auto accuracy_at_yield = [&](double yield, std::uint64_t seed) {
    nn::CrossbarLinearConfig cfg;
    cfg.array.seed = seed;
    nn::CrossbarLinear l0(net.layers()[0].w, net.layers()[0].b, cfg);
    cfg.array.seed = seed + 1;
    nn::CrossbarLinear l1(net.layers()[1].w, net.layers()[1].b, cfg);
    util::Rng frng(seed);
    if (yield < 1.0) {
      l0.apply_yield(yield, frng);
      l1.apply_yield(yield, frng);
    }
    std::size_t correct = 0;
    for (std::size_t i = 0; i < test.size(); ++i) {
      auto h = l0.forward(test.features.row(i));
      for (double& v : h) v = std::max(0.0, v);
      double hmax = 1e-9;
      for (const double v : h) hmax = std::max(hmax, v);
      l1.set_x_max(hmax);
      const auto logits = l1.forward(h);
      const int pred = static_cast<int>(
          std::max_element(logits.begin(), logits.end()) - logits.begin());
      if (pred == test.labels[i]) ++correct;
    }
    return static_cast<double>(correct) / static_cast<double>(test.size());
  };

  const double acc_clean = accuracy_at_yield(1.0, 11);
  const double acc_80 = accuracy_at_yield(0.8, 13);
  const double acc_50 = accuracy_at_yield(0.5, 17);
  EXPECT_GT(acc_clean, acc_80);
  EXPECT_GT(acc_80, acc_50);
  // The cited result: a massive drop by 80% yield.
  EXPECT_LT(acc_80, acc_clean - 0.15);
}

/// Synthesis -> MAGIC mapping -> crossbar execution == specification.
TEST(EndToEnd, LogicFlowExecutesOnCrossbar) {
  const auto rep = eda::run_flow("rca3", eda::ripple_carry_adder(3),
                                 eda::LogicFamily::kMagic);
  EXPECT_TRUE(rep.verified);
}

/// Wear-out -> power changepoint -> March confirmation.
TEST(EndToEnd, MonitorThenMarchPipeline) {
  crossbar::CrossbarConfig cfg;
  cfg.rows = cfg.cols = 16;
  cfg.tech = device::Technology::kSttMram;
  cfg.levels = 2;
  cfg.seed = 21;
  crossbar::Crossbar xbar(cfg);

  util::Rng rng(23);
  const auto map = fault::FaultMap::with_fault_count(
      16, 16, 30, fault::FaultMix::stuck_at_only(), rng);

  memtest::MonitorConfig mon;
  mon.cycles = 900;
  const auto run = memtest::run_monitored_workload(xbar, mon, rng, &map, 500);
  ASSERT_TRUE(run.alarm_cycle.has_value());

  // The alarm triggers a pause-and-test March which locates the faults.
  const auto march = memtest::run_march(xbar, memtest::march_cstar());
  EXPECT_FALSE(march.pass);
  EXPECT_GT(memtest::fault_coverage(map, march), 0.9);
}

/// X-ABFT protects a matrix against a stuck fault end to end.
TEST(EndToEnd, XabftDetectsWhatMarchWouldFind) {
  util::Rng rng(29);
  util::Matrix lv(8, 8);
  for (auto& v : lv.flat()) v = 8.0 + static_cast<double>(rng.uniform_int(8));

  crossbar::CrossbarConfig cfg;
  cfg.model_ir_drop = false;
  cfg.seed = 31;
  memtest::XabftProtected prot(lv, cfg);
  fault::FaultMap map(8, 8);
  map.add({fault::FaultKind::kStuckAtZero, 4, 4, 0, 0, 1.0});
  prot.apply_faults(map);

  const auto rep = prot.scrub();
  bool located = false;
  for (const auto& fix : rep.corrections)
    if (fix.row == 4 && fix.col == 4) located = true;
  EXPECT_TRUE(located);
}

/// Software BNN and the FeRFET engine agree exactly, layer by layer.
TEST(EndToEnd, FerfetEngineMatchesSoftwareBnn) {
  util::Rng rng(37);
  nn::Mlp net({16, 12, 4}, rng);
  const nn::BinaryDense soft(net.layers()[0].w);
  ferfet::FerfetBnnEngine hard(net.layers()[0].w);

  for (int t = 0; t < 10; ++t) {
    nn::BitVector xb(16);
    std::vector<bool> xv(16);
    for (std::size_t i = 0; i < 16; ++i) {
      const bool bit = rng.bernoulli(0.5);
      xb.set(i, bit);
      xv[i] = bit;
    }
    EXPECT_EQ(soft.forward(xb), hard.forward(xv));
  }
}

/// Large signed VMM through the multi-tile CIM system.
TEST(EndToEnd, CimSystemRunsMlpLayer) {
  util::Rng rng(41);
  nn::Mlp net({nn::kPixels, 16, nn::kClasses}, rng);
  // Quantize the first layer to signed ints.
  const auto& w = net.layers()[0].w;
  double wmax = 1e-9;
  for (const double v : w.flat()) wmax = std::max(wmax, std::abs(v));
  util::Matrix w_int(w.rows(), w.cols());
  for (std::size_t r = 0; r < w.rows(); ++r)
    for (std::size_t c = 0; c < w.cols(); ++c)
      w_int(r, c) = std::round(w(r, c) / wmax * 7.0);

  core::CimSystemConfig cfg;
  cfg.tile.tile.rows = 32;
  cfg.tile.tile.cols = 8;
  cfg.tile.tile.adc_bits = 10;
  cfg.tile.array.model_ir_drop = false;
  core::CimSystem sys(w_int, cfg);
  EXPECT_EQ(sys.tile_count(), 4u);  // 64/32 x 16/8

  std::vector<std::uint32_t> x(nn::kPixels);
  for (auto& v : x) v = static_cast<std::uint32_t>(rng.uniform_int(16));
  const auto y = sys.vmm_int(x, 4);
  const auto ref = sys.ideal_vmm_int(x);
  for (std::size_t o = 0; o < y.size(); ++o) {
    const double scale = std::max(64.0, std::abs(double(ref[o])));
    EXPECT_LT(std::abs(double(y[o] - ref[o])) / scale, 0.35) << o;
  }
}

}  // namespace
}  // namespace cim
