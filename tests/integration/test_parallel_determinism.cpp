/// \file test_parallel_determinism.cpp
/// \brief End-to-end determinism gates for the parallel execution engine:
///        the NN batch path, the tiled CimSystem path, and a Monte-Carlo
///        march-test sweep must all be bit-identical for any thread count.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/cim_system.hpp"
#include "memtest/march.hpp"
#include "nn/crossbar_linear.hpp"
#include "nn/mlp.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

using cim::util::Matrix;
using cim::util::Rng;
using cim::util::ThreadPool;

Matrix random_matrix(std::size_t r, std::size_t c, std::uint64_t seed,
                     double lo, double hi) {
  Rng rng(seed);
  Matrix m(r, c);
  for (auto& v : m.flat()) v = rng.uniform(lo, hi);
  return m;
}

TEST(ParallelDeterminism, CrossbarLinearForwardBatch) {
  const auto w = random_matrix(12, 16, 3, -0.5, 0.5);
  const std::vector<double> b(12, 0.05);
  const auto x = random_matrix(24, 16, 5, 0.0, 1.0);

  const auto run = [&](std::size_t threads) {
    cim::nn::CrossbarLinearConfig cfg;
    cfg.array.seed = 7;
    cfg.program_verify = false;
    cim::nn::CrossbarLinear layer(w, b, cfg);
    ThreadPool pool(threads);
    return layer.forward_batch(x, &pool);
  };

  const auto ref = run(1);
  const auto p2 = run(2);
  const auto p8 = run(8);
  ASSERT_EQ(ref.rows(), 24u);
  ASSERT_EQ(ref.cols(), 12u);
  for (std::size_t i = 0; i < ref.flat().size(); ++i) {
    EXPECT_EQ(ref.flat()[i], p2.flat()[i]) << "flat index " << i;
    EXPECT_EQ(ref.flat()[i], p8.flat()[i]) << "flat index " << i;
  }
}

TEST(ParallelDeterminism, MlpAccuracyPoolMatchesSerial) {
  Rng rng(11);
  const auto data = cim::nn::generate_digits(120, rng, 0.1);
  cim::nn::Mlp net({cim::nn::kPixels, 12, cim::nn::kClasses}, rng);
  net.fit(data, 10, 0.05, rng);

  const double serial = net.accuracy(data);
  ThreadPool pool2(2), pool8(8);
  EXPECT_EQ(serial, net.accuracy(data, &pool2));
  EXPECT_EQ(serial, net.accuracy(data, &pool8));

  const auto serial_preds = net.predict_batch(data);
  EXPECT_EQ(serial_preds, net.predict_batch(data, &pool8));
}

TEST(ParallelDeterminism, CimSystemVmmIntPoolMatchesSerial) {
  // Weights spanning several 8x8 tiles so the pool actually fans out.
  Rng rng(13);
  Matrix w(20, 24);
  for (auto& v : w.flat())
    v = static_cast<double>(static_cast<long>(rng.uniform_int(15)) - 7);
  std::vector<std::uint32_t> x(24);
  for (auto& v : x) v = static_cast<std::uint32_t>(rng.uniform_int(16));

  const auto run = [&](ThreadPool* pool) {
    cim::core::CimSystemConfig cfg;
    cfg.tile.tile.rows = 8;
    cfg.tile.tile.cols = 8;
    cfg.tile.array.model_ir_drop = false;
    cfg.tile.seed = 17;
    cim::core::CimSystem sys(w, cfg);
    return sys.vmm_int(x, 4, pool);
  };

  const auto serial = run(nullptr);
  ThreadPool pool2(2), pool8(8);
  EXPECT_EQ(serial, run(&pool2));
  EXPECT_EQ(serial, run(&pool8));
}

TEST(ParallelDeterminism, MonteCarloMarchSweep) {
  const auto trial = [](std::uint64_t t) {
    Rng rng(Rng::stream_seed(101, t));
    const auto map = cim::fault::FaultMap::with_fault_count(
        16, 16, 6, cim::fault::FaultMix::stuck_at_only(), rng);
    cim::crossbar::CrossbarConfig cfg;
    cfg.rows = cfg.cols = 16;
    cfg.levels = 2;
    cfg.verified_writes = true;
    cfg.seed = Rng::stream_seed(211, t);
    cim::crossbar::Crossbar xbar(cfg);
    xbar.apply_faults(map);
    return cim::memtest::fault_coverage(
        map, cim::memtest::run_march(xbar, cim::memtest::march_cstar()));
  };

  const auto run = [&](std::size_t threads) {
    ThreadPool pool(threads);
    std::vector<double> cov(12, 0.0);
    pool.parallel_for(0, cov.size(),
                      [&](std::size_t t) { cov[t] = trial(t); });
    return cov;
  };

  const auto ref = run(1);
  EXPECT_EQ(ref, run(2));
  EXPECT_EQ(ref, run(8));
}

}  // namespace
