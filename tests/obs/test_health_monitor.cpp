/// HealthMonitor accumulator semantics: unit-level exactness of every
/// record_* hook, registry lifecycle, and the integration contract with
/// Crossbar — the monitor's wear/drift numbers must agree with the array's
/// ground-truth cell state, not merely be plausible.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <thread>
#include <vector>

#include "crossbar/crossbar.hpp"
#include "obs/health.hpp"
#include "obs/obs.hpp"

namespace cim::obs {
namespace {

class HealthMonitorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_mode(Mode::kHealth);
    reset();
    HealthRegistry::global().clear();
  }
  void TearDown() override {
    set_mode(Mode::kOff);
    reset();
    HealthRegistry::global().clear();
  }
};

TEST_F(HealthMonitorTest, RecordHooksAccumulateExactly) {
  HealthMonitor m("unit", 2, 3);
  m.record_write(0, 0, 1);
  m.record_write(0, 0, 4);
  m.record_write(1, 2, 2);
  m.record_program(0, 0, 50.0, 53.5);   // drift = +3.5
  m.record_program(1, 2, 80.0, 80.0);   // drift = 0
  m.record_disturb(1, 2, 77.0);         // drift = -3.0 vs baseline 80
  m.record_disturb(1, 2, 75.0);         // drift = -5.0
  m.record_wearout(0, 1);
  m.record_wearout(0, 1);               // idempotent flag, not a counter
  m.record_adc_sample(0, false);
  m.record_adc_sample(0, true);
  m.record_adc_sample(2, false);
  m.record_sneak_current(1, 0.25);
  m.record_sneak_current(1, 0.50);

  const auto s = m.snapshot();
  ASSERT_EQ(s.rows, 2u);
  ASSERT_EQ(s.cols, 3u);
  EXPECT_EQ(s.wear[0], 5u);
  EXPECT_EQ(s.wear[1 * 3 + 2], 2u);
  EXPECT_EQ(s.total_writes, 7u);
  EXPECT_EQ(s.max_wear, 5u);
  EXPECT_DOUBLE_EQ(s.drift_us[0], 3.5);
  EXPECT_DOUBLE_EQ(s.drift_us[1 * 3 + 2], -5.0);
  EXPECT_EQ(s.disturbs[1 * 3 + 2], 2u);
  EXPECT_EQ(s.total_disturbs, 2u);
  EXPECT_EQ(s.worn[0 * 3 + 1], 1u);
  EXPECT_EQ(s.worn_cells, 1u);
  EXPECT_EQ(s.adc_samples[0], 2u);
  EXPECT_EQ(s.adc_clips[0], 1u);
  EXPECT_EQ(s.adc_samples[2], 1u);
  EXPECT_EQ(s.total_adc_samples, 3u);
  EXPECT_EQ(s.total_adc_clips, 1u);
  EXPECT_DOUBLE_EQ(s.sneak_ua[1], 0.75);
  EXPECT_DOUBLE_EQ(s.total_sneak_ua, 0.75);
  EXPECT_DOUBLE_EQ(s.max_abs_drift_us, 5.0);
  EXPECT_DOUBLE_EQ(s.mean_abs_drift_us, (3.5 + 5.0) / 6.0);

  m.reset();
  const auto z = m.snapshot();
  EXPECT_EQ(z.total_writes, 0u);
  EXPECT_EQ(z.worn_cells, 0u);
  EXPECT_DOUBLE_EQ(z.mean_abs_drift_us, 0.0);
}

TEST_F(HealthMonitorTest, OutOfRangeRecordsAreIgnored) {
  HealthMonitor m("oob", 2, 2);
  m.record_write(2, 0);
  m.record_write(0, 2);
  m.record_disturb(9, 9, 1.0);
  m.record_wearout(2, 2);
  m.record_adc_sample(2, true);
  m.record_sneak_current(5, 1.0);
  const auto s = m.snapshot();
  EXPECT_EQ(s.total_writes, 0u);
  EXPECT_EQ(s.total_disturbs, 0u);
  EXPECT_EQ(s.worn_cells, 0u);
  EXPECT_EQ(s.total_adc_samples, 0u);
  EXPECT_DOUBLE_EQ(s.total_sneak_ua, 0.0);
}

TEST_F(HealthMonitorTest, RegistryCreatesOnceAndListsSorted) {
  auto& reg = HealthRegistry::global();
  auto a = reg.monitor("zeta", 4, 4);
  auto b = reg.monitor("alpha", 2, 2);
  auto a2 = reg.monitor("zeta", 99, 99);  // existing shape is kept
  EXPECT_EQ(a.get(), a2.get());
  EXPECT_EQ(a2->rows(), 4u);
  EXPECT_EQ(reg.size(), 2u);

  const auto all = reg.monitors();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0]->name(), "alpha");
  EXPECT_EQ(all[1]->name(), "zeta");

  b->record_write(0, 0);
  reg.reset();
  EXPECT_EQ(b->snapshot().total_writes, 0u);  // reset zeroes, keeps entries
  EXPECT_EQ(reg.size(), 2u);

  reg.clear();
  EXPECT_EQ(reg.size(), 0u);
  // Shared ownership: the handle stays usable after clear().
  b->record_write(0, 0);
  EXPECT_EQ(b->snapshot().total_writes, 1u);
}

TEST_F(HealthMonitorTest, NextHealthNameIsUnique) {
  const auto a = next_health_name("crossbar");
  const auto b = next_health_name("crossbar");
  const auto c = next_health_name("tile");
  EXPECT_NE(a, b);
  EXPECT_NE(b, c);
  EXPECT_EQ(a.rfind("crossbar.", 0), 0u);
  EXPECT_EQ(c.rfind("tile.", 0), 0u);
}

// --- Crossbar integration: accumulators vs ground-truth cell state ----------

TEST_F(HealthMonitorTest, CrossbarWearMatchesWriteCountsExactly) {
  crossbar::CrossbarConfig cfg;
  cfg.rows = 8;
  cfg.cols = 8;
  cfg.seed = 11;
  // Unverified digital writes use exactly one pulse per write_bit, so the
  // monitor's wear grid must equal the per-cell write-op count exactly.
  ASSERT_FALSE(cfg.verified_writes);
  crossbar::Crossbar xbar(cfg);
  xbar.set_health_name("t.wear");

  std::vector<std::uint64_t> expected(cfg.rows * cfg.cols, 0);
  for (int pass = 0; pass < 3; ++pass)
    for (std::size_t r = 0; r < cfg.rows; ++r)
      for (std::size_t c = 0; c <= r; ++c) {
        xbar.write_bit(r, c, ((r + c + pass) & 1) != 0);
        ++expected[r * cfg.cols + c];
      }

  const auto s = xbar.health_monitor().snapshot();
  EXPECT_EQ(s.name, "t.wear");
  for (std::size_t i = 0; i < expected.size(); ++i)
    EXPECT_EQ(s.wear[i], expected[i]) << "cell " << i;
  EXPECT_EQ(s.total_writes, xbar.stats().bit_writes);
}

TEST_F(HealthMonitorTest, CrossbarDriftTracksProgramTarget) {
  crossbar::CrossbarConfig cfg;
  cfg.rows = 4;
  cfg.cols = 4;
  cfg.seed = 5;
  crossbar::Crossbar xbar(cfg);
  xbar.set_health_name("t.drift");

  const auto& sch = xbar.scheme();
  const double target = 0.5 * (sch.g_min_us() + sch.g_max_us());
  for (std::size_t r = 0; r < cfg.rows; ++r)
    for (std::size_t c = 0; c < cfg.cols; ++c)
      xbar.program_cell(r, c, target);

  const auto s = xbar.health_monitor().snapshot();
  for (std::size_t r = 0; r < cfg.rows; ++r)
    for (std::size_t c = 0; c < cfg.cols; ++c) {
      // drift = stored - last program target, per the monitor contract.
      const double truth = xbar.true_conductance(r, c) - target;
      EXPECT_NEAR(s.drift_us[r * cfg.cols + c], truth, 1e-12)
          << "cell (" << r << "," << c << ")";
    }
}

TEST_F(HealthMonitorTest, CrossbarFieldWearoutSetsWornFlags) {
  crossbar::CrossbarConfig cfg;
  cfg.rows = 4;
  cfg.cols = 4;
  cfg.seed = 3;
  auto tech = device::technology_params(cfg.tech);
  tech.endurance_mean = 30.0;  // wear out within a few dozen writes
  tech.endurance_sigma_log = 0.1;
  cfg.tech_override = tech;
  crossbar::Crossbar xbar(cfg);
  xbar.set_health_name("t.worn");

  for (int pass = 0; pass < 200; ++pass)
    for (std::size_t r = 0; r < cfg.rows; ++r)
      for (std::size_t c = 0; c < cfg.cols; ++c)
        xbar.write_bit(r, c, (pass & 1) != 0);

  const auto s = xbar.health_monitor().snapshot();
  EXPECT_EQ(s.worn_cells, static_cast<std::uint64_t>(cfg.rows * cfg.cols));
  // A worn cell is stuck: its drift off the last program target must be
  // visible (that is the Fig. 7 early-warning signal).
  EXPECT_GT(s.mean_abs_drift_us, 0.0);
}

TEST_F(HealthMonitorTest, DisabledModeRecordsNothing) {
  set_mode(Mode::kMetrics);  // metrics on, health off
  crossbar::CrossbarConfig cfg;
  cfg.rows = 4;
  cfg.cols = 4;
  crossbar::Crossbar xbar(cfg);
  xbar.set_health_name("t.off");
  for (std::size_t r = 0; r < cfg.rows; ++r) xbar.write_bit(r, 0, true);
  EXPECT_EQ(HealthRegistry::global().size(), 0u);
  // Direct access still works (exporters/tests), just records nothing.
  EXPECT_EQ(xbar.health_monitor().snapshot().total_writes, 0u);
}

TEST_F(HealthMonitorTest, SnapshotIsSafeWhileWriterRuns) {
  // Scrape-while-writing: one writer thread hammers the hooks while the
  // main thread snapshots. TSan (ctest -L 'tsan|obs') checks the relaxed
  // atomics; here we check snapshots are internally sane.
  HealthMonitor m("concurrent", 8, 8);
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    std::uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const std::size_t r = i % 8, c = (i / 8) % 8;
      m.record_write(r, c);
      m.record_program(r, c, 50.0, 51.0);
      m.record_adc_sample(c, (i & 7) == 0);
      ++i;
    }
  });
  for (int k = 0; k < 200; ++k) {
    const auto s = m.snapshot();
    std::uint64_t sum = 0;
    for (auto w : s.wear) sum += w;
    EXPECT_EQ(sum, s.total_writes);
    EXPECT_GE(s.total_adc_samples, s.total_adc_clips);
    EXPECT_TRUE(std::isfinite(s.mean_abs_drift_us));
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
}

}  // namespace
}  // namespace cim::obs
