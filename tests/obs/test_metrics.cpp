/// Metrics-registry unit tests: counters, gauges, histograms, snapshot
/// determinism, and the util::perf thin views over registry storage.
#include "obs/obs.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "util/perf_counters.hpp"

namespace cim::obs {
namespace {

class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_mode(Mode::kOff);
    reset();
  }
  void TearDown() override {
    set_mode(Mode::kOff);
    reset();
  }
};

TEST_F(MetricsTest, CounterAddsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST_F(MetricsTest, CounterConcurrentIncrementsSumExactly) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.add(1);
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST_F(MetricsTest, GaugeLastWriteWins) {
  Gauge g;
  g.set(1.5);
  g.set(-3.0);
  EXPECT_DOUBLE_EQ(g.value(), -3.0);
}

TEST_F(MetricsTest, AtomicF64AccumulatesConcurrently) {
  AtomicF64 a;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&a] {
      for (int i = 0; i < kPerThread; ++i) a.add(0.5);
    });
  for (auto& t : threads) t.join();
  EXPECT_DOUBLE_EQ(a.value(), kThreads * kPerThread * 0.5);
}

TEST_F(MetricsTest, HistogramBucketsValues) {
  Histogram h({1.0, 10.0, 100.0});
  h.observe(0.5);    // <= 1
  h.observe(1.0);    // <= 1 (inclusive upper bound)
  h.observe(5.0);    // <= 10
  h.observe(1000.0); // overflow
  const auto s = h.snapshot();
  ASSERT_EQ(s.counts.size(), 4u);
  EXPECT_EQ(s.counts[0], 2u);
  EXPECT_EQ(s.counts[1], 1u);
  EXPECT_EQ(s.counts[2], 0u);
  EXPECT_EQ(s.counts[3], 1u);
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.sum, 0.5 + 1.0 + 5.0 + 1000.0);
}

TEST_F(MetricsTest, RegistryReturnsSameMetricForSameName) {
  Counter& a = Registry::global().counter("test.same_name");
  Counter& b = Registry::global().counter("test.same_name");
  EXPECT_EQ(&a, &b);
  a.add(7);
  EXPECT_EQ(b.value(), 7u);
}

TEST_F(MetricsTest, SnapshotIsSortedAndDeterministic) {
  Registry::global().counter("test.zebra").add(1);
  Registry::global().counter("test.alpha").add(2);
  Registry::global().gauge("test.gauge").set(4.0);
  const Snapshot s1 = snapshot();
  const Snapshot s2 = snapshot();
  ASSERT_EQ(s1.counters.size(), s2.counters.size());
  for (std::size_t i = 0; i < s1.counters.size(); ++i) {
    EXPECT_EQ(s1.counters[i], s2.counters[i]);
    if (i > 0) EXPECT_LT(s1.counters[i - 1].first, s1.counters[i].first);
  }
  // Snapshot carries build metadata for self-describing exports.
  EXPECT_FALSE(s1.meta.git_sha.empty());
  EXPECT_FALSE(s1.meta.build_type.empty());
  EXPECT_GE(s1.meta.threads, 1u);
}

TEST_F(MetricsTest, ResetZeroesButKeepsRegistrations) {
  Counter& c = Registry::global().counter("test.reset_me");
  c.add(5);
  reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(&Registry::global().counter("test.reset_me"), &c);
}

TEST_F(MetricsTest, PerfCountersAreViewsOverRegistry) {
  const std::uint64_t before =
      Registry::global().counter("cache.full_rebuilds").value();
  util::perf::cache_full_rebuilds.fetch_add(3, std::memory_order_relaxed);
  EXPECT_EQ(Registry::global().counter("cache.full_rebuilds").value(),
            before + 3);
  EXPECT_EQ(util::perf::cache_full_rebuilds.load(std::memory_order_relaxed),
            before + 3);
  ++util::perf::cache_delta_updates;
  EXPECT_GE(Registry::global().counter("cache.delta_updates").value(), 1u);
}

TEST_F(MetricsTest, PerfCountersCountEvenWhenObsDisabled) {
  // perf counters are storage, not telemetry: CIM_OBS off must not stop
  // them (the BENCH_JSON schema depends on them).
  set_mode(Mode::kOff);
  const std::uint64_t before =
      util::perf::cache_delta_updates.load(std::memory_order_relaxed);
  util::perf::cache_delta_updates.fetch_add(1, std::memory_order_relaxed);
  EXPECT_EQ(util::perf::cache_delta_updates.load(std::memory_order_relaxed),
            before + 1);
}

TEST_F(MetricsTest, BuildInfoIsPopulated) {
  const BuildInfo info = build_info();
  EXPECT_FALSE(info.git_sha.empty());
  EXPECT_FALSE(info.build_type.empty());
  EXPECT_GE(info.threads, 1u);
}

}  // namespace
}  // namespace cim::obs
