/// Fig. 5 cross-check: the measured per-component energy breakdown from
/// obs telemetry (spans + attribute() during a real tile workload) must
/// reproduce the analytic periphery cost model's ADC dominance, and the
/// two must agree quantitatively.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "core/cim_tile.hpp"
#include "obs/obs.hpp"
#include "periphery/tile_cost.hpp"
#include "util/rng.hpp"

namespace cim::obs {
namespace {

TEST(BreakdownFig5, MeasuredBreakdownMatchesAnalyticModel) {
  // Fig. 5 workload: a 128x128 HfOx tile, 8-bit SAR ADC shared across all
  // columns, 8-bit bit-serial inputs.
  core::CimTileConfig cfg;
  cfg.tile.rows = 128;
  cfg.tile.cols = 128;
  cfg.tile.adc_bits = 8;
  cfg.tile.adcs = 1;
  cfg.tile.dac_bits = 1;
  cfg.tile.input_bits = 8;
  cfg.weight_bits = 4;
  cfg.seed = 42;

  // Program with telemetry off so the measured breakdown covers exactly
  // the VMM workload (programming energy is not part of Fig. 5).
  set_mode(Mode::kOff);
  core::CimTile tile(cfg);
  util::Rng rng(99);
  util::Matrix w(cfg.tile.cols, cfg.tile.rows);
  for (double& v : w.flat())
    v = static_cast<double>(rng.uniform_int(31)) - 15.0;
  tile.program_weights(w);

  set_mode(Mode::kMetrics);
  reset();
  constexpr int kVmms = 4;
  std::vector<std::uint32_t> x(cfg.tile.rows);
  for (int it = 0; it < kVmms; ++it) {
    for (auto& v : x) v = rng.uniform_int(255);
    (void)tile.vmm_int(x, cfg.tile.input_bits);
  }

  const auto rows = breakdown();
  set_mode(Mode::kOff);
  reset();

  double measured_total = 0.0;
  double measured_adc = 0.0, measured_adc_share = 0.0;
  double measured_dac = 0.0, measured_dig = 0.0, measured_array = 0.0;
  double max_share = 0.0;
  Component max_comp = Component::kOther;
  for (const auto& row : rows) {
    measured_total += row.energy_pj;
    if (row.energy_share > max_share) {
      max_share = row.energy_share;
      max_comp = row.comp;
    }
    switch (row.comp) {
      case Component::kAdc:
        measured_adc = row.energy_pj;
        measured_adc_share = row.energy_share;
        break;
      case Component::kDac: measured_dac = row.energy_pj; break;
      case Component::kDigital: measured_dig = row.energy_pj; break;
      case Component::kArray: measured_array = row.energy_pj; break;
      default: break;
    }
  }
  ASSERT_GT(measured_total, 0.0);

  // Paper claim (Fig. 5): the ADC dominates tile power.
  EXPECT_EQ(max_comp, Component::kAdc);
  EXPECT_GT(measured_adc_share, 0.5);

  // Analytic counterpart. The tile simulates a differential pair, so ADC
  // conversions and DAC drives happen twice per cycle vs. the single-array
  // analytic model; the analytic array term (half the cells at mean
  // conductance) approximates the pair's combined current.
  const auto analytic = periphery::tile_vmm_energy_breakdown(cfg.tile);
  const double a_adc = 2.0 * analytic.adc_pj * kVmms;
  const double a_dac = 2.0 * analytic.dac_pj * kVmms;
  const double a_dig = analytic.digital_pj * kVmms;
  const double a_array = analytic.array_pj * kVmms;
  const double a_total = a_adc + a_dac + a_dig + a_array;

  // ADC energy uses the exact same Adc model on both sides: within 10%.
  EXPECT_NEAR(measured_adc / a_adc, 1.0, 0.10);
  // Per-component shares agree within 10 percentage points.
  EXPECT_NEAR(measured_adc / measured_total, a_adc / a_total, 0.10);
  EXPECT_NEAR(measured_dac / measured_total, a_dac / a_total, 0.10);
  EXPECT_NEAR(measured_dig / measured_total, a_dig / a_total, 0.10);
  EXPECT_NEAR(measured_array / measured_total, a_array / a_total, 0.10);
}

}  // namespace
}  // namespace cim::obs
