/// Exporter tests: the JSON snapshot, the Chrome trace_event document
/// produced by a real CimSystem workload (the bench_cim_system telemetry
/// path), and the BENCH_JSON line schema.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <vector>

#include "core/cim_system.hpp"
#include "obs/json.hpp"
#include "obs/obs.hpp"
#include "util/rng.hpp"

namespace cim::obs {
namespace {

class ExporterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_mode(Mode::kMetrics);
    reset();
  }
  void TearDown() override {
    set_mode(Mode::kOff);
    reset();
  }
};

TEST_F(ExporterTest, SnapshotJsonIsValidAndCarriesMeta) {
  Registry::global().counter("test.export.counter").add(3);
  Registry::global().gauge("test.export.gauge").set(1.25);
  Registry::global()
      .histogram("test.export.hist", std::vector<double>{1.0, 2.0})
      .observe(1.5);
  {
    CIM_OBS_SPAN("test.export.span", Component::kAdc);
  }
  attribute(Component::kAdc, 1.0, 2.0);

  std::ostringstream os;
  write_snapshot_json(os);
  const json::Value doc = json::parse(os.str());

  const auto& meta = doc.at("meta");
  EXPECT_TRUE(meta.at("git_sha").is_string());
  EXPECT_TRUE(meta.at("build_type").is_string());
  EXPECT_GE(meta.at("threads").as_number(), 1.0);
  EXPECT_EQ(meta.at("cim_obs").as_string(), "metrics");

  EXPECT_DOUBLE_EQ(doc.at("counters").at("test.export.counter").as_number(),
                   3.0);
  EXPECT_DOUBLE_EQ(doc.at("gauges").at("test.export.gauge").as_number(), 1.25);
  const auto& hist = doc.at("histograms").at("test.export.hist");
  EXPECT_EQ(hist.at("bounds").as_array().size(), 2u);
  EXPECT_EQ(hist.at("counts").as_array().size(), 3u);
  const auto& span = doc.at("spans").at("test.export.span");
  EXPECT_EQ(span.at("component").as_string(), "adc");
  EXPECT_GE(span.at("count").as_number(), 1.0);
  EXPECT_GE(doc.at("components").at("adc").at("energy_pj").as_number(), 2.0);
}

TEST_F(ExporterTest, CimSystemWorkloadProducesValidChromeTrace) {
  // The acceptance path: run the bench_cim_system workload shape in trace
  // mode and validate the exported document as Chrome trace_event JSON.
  set_mode(Mode::kTrace);

  util::Rng rng(7);
  const std::size_t in = 48, out = 24;
  util::Matrix w(out, in);
  for (double& v : w.flat())
    v = static_cast<double>(rng.uniform_int(15)) - 7.0;
  core::CimSystemConfig cfg;
  cfg.tile.tile.rows = 32;
  cfg.tile.tile.cols = 16;
  core::CimSystem sys(w, cfg);

  reset();  // telemetry for the workload only, not construction
  std::vector<std::uint32_t> x(in);
  for (auto& v : x) v = rng.uniform_int(15);
  (void)sys.vmm_int(x, 4);

  std::ostringstream os;
  write_chrome_trace(os);
  const json::Value doc = json::parse(os.str());

  EXPECT_TRUE(doc.at("displayTimeUnit").is_string());
  const auto& meta = doc.at("otherData");
  EXPECT_TRUE(meta.at("git_sha").is_string());

  const auto& events = doc.at("traceEvents").as_array();
  ASSERT_FALSE(events.empty());
  bool saw_system = false, saw_tile = false, saw_crossbar = false;
  double last_ts = -1.0;
  for (const auto& e : events) {
    EXPECT_EQ(e.at("ph").as_string(), "X");
    EXPECT_GE(e.at("ts").as_number(), last_ts);  // exporter sorts by ts
    last_ts = e.at("ts").as_number();
    EXPECT_GE(e.at("dur").as_number(), 0.0);
    EXPECT_TRUE(e.at("pid").is_number());
    EXPECT_TRUE(e.at("tid").is_number());
    EXPECT_TRUE(e.at("cat").is_string());
    const auto& name = e.at("name").as_string();
    if (name == "system.vmm_int") saw_system = true;
    if (name == "tile.vmm_int") saw_tile = true;
    if (name == "crossbar.vmm") saw_crossbar = true;
  }
  EXPECT_TRUE(saw_system);
  EXPECT_TRUE(saw_tile);
  EXPECT_TRUE(saw_crossbar);
}

TEST_F(ExporterTest, BenchJsonLineMatchesSchema) {
  const std::string line =
      bench_json_line("test_bench", 12.5, 100.0, {{"extra_metric", 3.5}});
  const std::string prefix = "BENCH_JSON ";
  ASSERT_EQ(line.rfind(prefix, 0), 0u);
  const json::Value doc = json::parse(line.substr(prefix.size()));
  EXPECT_EQ(doc.at("bench").as_string(), "test_bench");
  EXPECT_DOUBLE_EQ(doc.at("wall_ms").as_number(), 12.5);
  EXPECT_DOUBLE_EQ(doc.at("ops").as_number(), 100.0);
  EXPECT_NEAR(doc.at("ops_per_s").as_number(), 8000.0, 0.1);
  EXPECT_GE(doc.at("threads").as_number(), 1.0);
  EXPECT_GE(doc.at("peak_rss_mb").as_number(), 0.0);
  EXPECT_TRUE(doc.at("cache_full_rebuilds").is_number());
  EXPECT_TRUE(doc.at("cache_delta_updates").is_number());
  EXPECT_TRUE(doc.at("git_sha").is_string());
  EXPECT_TRUE(doc.at("build_type").is_string());
  EXPECT_DOUBLE_EQ(doc.at("extra_metric").as_number(), 3.5);
}

TEST_F(ExporterTest, JsonParserRejectsMalformedInput) {
  EXPECT_THROW(json::parse("{"), std::runtime_error);
  EXPECT_THROW(json::parse("{\"a\":}"), std::runtime_error);
  EXPECT_THROW(json::parse("[1,2,]x"), std::runtime_error);
  EXPECT_THROW(json::parse("tru"), std::runtime_error);
  EXPECT_NO_THROW(json::parse(R"({"a":[1,2.5,-3e2],"b":{"c":null}})"));
}

}  // namespace
}  // namespace cim::obs
