/// Flight recorder: ring-bound retention with drop accounting, oldest-
/// first ordering, and the crash-safe cim-flight-v1 dump format.
#include "obs/flight.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace cim::obs {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

TEST(FlightRecorder, RingKeepsLastNOldestFirst) {
  FlightRecorder fr(3);
  for (int i = 0; i < 5; ++i) fr.record("rec" + std::to_string(i));
  EXPECT_EQ(fr.size(), 3u);
  EXPECT_EQ(fr.dropped(), 2u);
  const auto recs = fr.recent();
  ASSERT_EQ(recs.size(), 3u);
  EXPECT_EQ(recs[0], "rec2");
  EXPECT_EQ(recs[1], "rec3");
  EXPECT_EQ(recs[2], "rec4");
}

TEST(FlightRecorder, ZeroCapacityClampsToOne) {
  FlightRecorder fr(0);
  EXPECT_EQ(fr.capacity(), 1u);
  fr.record("a");
  fr.record("b");
  ASSERT_EQ(fr.recent().size(), 1u);
  EXPECT_EQ(fr.recent()[0], "b");
}

TEST(FlightRecorder, DumpWritesHeaderThenRecords) {
  FlightRecorder fr(4);
  fr.record("{\"event\":\"done\",\"id\":1}");
  fr.record("{\"event\":\"done\",\"id\":2}");
  const std::string path = temp_path("flight_dump.json");
  ASSERT_TRUE(fr.dump(path, "slo-fast-burn", {{"t_ns", "123"}}));
  EXPECT_EQ(fr.dumps(), 1u);

  std::istringstream is(slurp(path));
  std::string line;
  ASSERT_TRUE(std::getline(is, line));
  EXPECT_NE(line.find("\"format\":\"cim-flight-v1\""), std::string::npos);
  EXPECT_NE(line.find("\"reason\":\"slo-fast-burn\""), std::string::npos);
  EXPECT_NE(line.find("\"records\":2"), std::string::npos);
  EXPECT_NE(line.find("\"t_ns\":\"123\""), std::string::npos);
  ASSERT_TRUE(std::getline(is, line));
  EXPECT_EQ(line, "{\"event\":\"done\",\"id\":1}");
  ASSERT_TRUE(std::getline(is, line));
  EXPECT_EQ(line, "{\"event\":\"done\",\"id\":2}");
  EXPECT_FALSE(std::getline(is, line));
  std::remove(path.c_str());
}

TEST(FlightRecorder, DumpToUnwritablePathFailsWithoutCrashing) {
  FlightRecorder fr(2);
  fr.record("x");
  EXPECT_FALSE(fr.dump("/nonexistent-dir/f.json", "test"));
  EXPECT_EQ(fr.dumps(), 0u);
}

TEST(FlightRecorder, ClearEmptiesRingButKeepsDumpCount) {
  FlightRecorder fr(2);
  fr.record("a");
  const std::string path = temp_path("flight_clear.json");
  ASSERT_TRUE(fr.dump(path, "test"));
  fr.clear();
  EXPECT_EQ(fr.size(), 0u);
  EXPECT_EQ(fr.dropped(), 0u);
  EXPECT_EQ(fr.dumps(), 1u);
  EXPECT_TRUE(fr.recent().empty());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cim::obs
