/// obs::Histogram bucket-boundary semantics (documented on the class):
/// bucket i covers (bounds[i-1], bounds[i]] — closed upper bounds, the same
/// convention as Prometheus `le` buckets — every observation lands in
/// exactly one bucket, and NaN goes to overflow.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "obs/obs.hpp"

namespace cim::obs {
namespace {

TEST(HistogramBounds, ExactBoundaryValueLandsInClosingBucket) {
  Histogram h(std::vector<double>{1.0, 2.0, 4.0});
  h.observe(1.0);  // == bounds[0]: closed upper bound -> bucket 0
  h.observe(2.0);  // == bounds[1] -> bucket 1
  h.observe(4.0);  // == bounds[2] -> bucket 2
  const auto s = h.snapshot();
  ASSERT_EQ(s.counts.size(), 4u);
  EXPECT_EQ(s.counts[0], 1u);
  EXPECT_EQ(s.counts[1], 1u);
  EXPECT_EQ(s.counts[2], 1u);
  EXPECT_EQ(s.counts[3], 0u);
}

TEST(HistogramBounds, OpenLowerBoundAndOverflow) {
  Histogram h(std::vector<double>{1.0, 2.0});
  h.observe(std::nextafter(1.0, 2.0));  // just above 1.0 -> bucket 1
  h.observe(2.5);                       // above bounds.back() -> overflow
  h.observe(-10.0);                     // below everything -> bucket 0
  h.observe(0.0);
  const auto s = h.snapshot();
  EXPECT_EQ(s.counts[0], 2u);
  EXPECT_EQ(s.counts[1], 1u);
  EXPECT_EQ(s.counts[2], 1u);
}

TEST(HistogramBounds, EveryObservationLandsInExactlyOneBucket) {
  Histogram h(std::vector<double>{0.0, 1.0, 10.0, 100.0});
  const double vals[] = {-1.0, 0.0, 0.5,  1.0,   1.5,  10.0,
                         99.0, 100.0, 101.0, 1e300, 0.25, 7.0};
  for (double v : vals) h.observe(v);
  const auto s = h.snapshot();
  std::uint64_t sum = 0;
  for (auto c : s.counts) sum += c;
  EXPECT_EQ(sum, std::size(vals));
  EXPECT_EQ(s.count, std::size(vals));
}

TEST(HistogramBounds, NanAndInfinityGoToOverflow) {
  Histogram h(std::vector<double>{1.0, 2.0});
  h.observe(std::numeric_limits<double>::quiet_NaN());
  h.observe(std::numeric_limits<double>::infinity());
  const auto s = h.snapshot();
  EXPECT_EQ(s.counts[0], 0u);
  EXPECT_EQ(s.counts[1], 0u);
  EXPECT_EQ(s.counts[2], 2u);
  EXPECT_EQ(s.count, 2u);
}

TEST(HistogramBounds, UnsortedConstructionBoundsAreSorted) {
  Histogram h(std::vector<double>{4.0, 1.0, 2.0});
  h.observe(1.5);  // (1, 2] after sorting
  const auto s = h.snapshot();
  ASSERT_EQ(s.bounds.size(), 3u);
  EXPECT_DOUBLE_EQ(s.bounds[0], 1.0);
  EXPECT_DOUBLE_EQ(s.bounds[2], 4.0);
  EXPECT_EQ(s.counts[1], 1u);
}

}  // namespace
}  // namespace cim::obs
