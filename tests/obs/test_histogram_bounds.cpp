/// obs::Histogram bucket-boundary semantics (documented on the class):
/// bucket i covers (bounds[i-1], bounds[i]] — closed upper bounds, the same
/// convention as Prometheus `le` buckets — every observation lands in
/// exactly one bucket, and NaN goes to overflow.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "obs/obs.hpp"

namespace cim::obs {
namespace {

TEST(HistogramBounds, ExactBoundaryValueLandsInClosingBucket) {
  Histogram h(std::vector<double>{1.0, 2.0, 4.0});
  h.observe(1.0);  // == bounds[0]: closed upper bound -> bucket 0
  h.observe(2.0);  // == bounds[1] -> bucket 1
  h.observe(4.0);  // == bounds[2] -> bucket 2
  const auto s = h.snapshot();
  ASSERT_EQ(s.counts.size(), 4u);
  EXPECT_EQ(s.counts[0], 1u);
  EXPECT_EQ(s.counts[1], 1u);
  EXPECT_EQ(s.counts[2], 1u);
  EXPECT_EQ(s.counts[3], 0u);
}

TEST(HistogramBounds, OpenLowerBoundAndOverflow) {
  Histogram h(std::vector<double>{1.0, 2.0});
  h.observe(std::nextafter(1.0, 2.0));  // just above 1.0 -> bucket 1
  h.observe(2.5);                       // above bounds.back() -> overflow
  h.observe(-10.0);                     // below everything -> bucket 0
  h.observe(0.0);
  const auto s = h.snapshot();
  EXPECT_EQ(s.counts[0], 2u);
  EXPECT_EQ(s.counts[1], 1u);
  EXPECT_EQ(s.counts[2], 1u);
}

TEST(HistogramBounds, EveryObservationLandsInExactlyOneBucket) {
  Histogram h(std::vector<double>{0.0, 1.0, 10.0, 100.0});
  const double vals[] = {-1.0, 0.0, 0.5,  1.0,   1.5,  10.0,
                         99.0, 100.0, 101.0, 1e300, 0.25, 7.0};
  for (double v : vals) h.observe(v);
  const auto s = h.snapshot();
  std::uint64_t sum = 0;
  for (auto c : s.counts) sum += c;
  EXPECT_EQ(sum, std::size(vals));
  EXPECT_EQ(s.count, std::size(vals));
}

TEST(HistogramBounds, NanAndInfinityGoToOverflow) {
  Histogram h(std::vector<double>{1.0, 2.0});
  h.observe(std::numeric_limits<double>::quiet_NaN());
  h.observe(std::numeric_limits<double>::infinity());
  const auto s = h.snapshot();
  EXPECT_EQ(s.counts[0], 0u);
  EXPECT_EQ(s.counts[1], 0u);
  EXPECT_EQ(s.counts[2], 2u);
  EXPECT_EQ(s.count, 2u);
}

// Snapshot::quantile — the Prometheus histogram_quantile estimator: linear
// interpolation inside the bucket holding rank q*count.
TEST(HistogramQuantile, InterpolatesWithinBucket) {
  Histogram h(std::vector<double>{10.0, 20.0, 40.0});
  // 10 observations in (10, 20]: ranks spread linearly across the bucket.
  for (int i = 0; i < 10; ++i) h.observe(15.0);
  const auto s = h.snapshot();
  // Median rank = 5 of 10 in-bucket -> midpoint of (10, 20].
  EXPECT_DOUBLE_EQ(s.p50(), 15.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 20.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.1), 11.0);
}

TEST(HistogramQuantile, SpansBucketsByCumulativeRank) {
  Histogram h(std::vector<double>{1.0, 2.0, 4.0});
  for (int i = 0; i < 98; ++i) h.observe(0.5);  // bucket (=<1]
  h.observe(1.5);                               // bucket (1,2]
  h.observe(3.0);                               // bucket (2,4]
  const auto s = h.snapshot();
  EXPECT_LE(s.p50(), 1.0);
  EXPECT_DOUBLE_EQ(s.p99(), 2.0);   // rank 99 closes bucket (1,2]
  EXPECT_GT(s.p999(), 2.0);         // rank 99.9 interpolates into (2,4]
  EXPECT_LE(s.p999(), 4.0);
}

TEST(HistogramQuantile, OverflowClampsToLastBound) {
  Histogram h(std::vector<double>{1.0, 2.0});
  h.observe(100.0);  // overflow bucket
  h.observe(200.0);
  const auto s = h.snapshot();
  // The bucket layout cannot resolve past bounds.back().
  EXPECT_DOUBLE_EQ(s.p99(), 2.0);
}

TEST(HistogramQuantile, EmptySnapshotIsNaN) {
  Histogram h(std::vector<double>{1.0});
  EXPECT_TRUE(std::isnan(h.snapshot().p50()));
}

TEST(HistogramQuantile, FirstBucketInterpolatesFromZeroFloor) {
  Histogram h(std::vector<double>{100.0, 200.0});
  for (int i = 0; i < 4; ++i) h.observe(50.0);
  const auto s = h.snapshot();
  // Lower edge of the first bucket is min(bounds[0], 0) = 0.
  EXPECT_DOUBLE_EQ(s.p50(), 50.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.25), 25.0);
}

TEST(HistogramBounds, UnsortedConstructionBoundsAreSorted) {
  Histogram h(std::vector<double>{4.0, 1.0, 2.0});
  h.observe(1.5);  // (1, 2] after sorting
  const auto s = h.snapshot();
  ASSERT_EQ(s.bounds.size(), 3u);
  EXPECT_DOUBLE_EQ(s.bounds[0], 1.0);
  EXPECT_DOUBLE_EQ(s.bounds[2], 4.0);
  EXPECT_EQ(s.counts[1], 1u);
}

}  // namespace
}  // namespace cim::obs
