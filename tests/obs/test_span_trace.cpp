/// Span + attribution tests: RAII recording, mode gating, component
/// aggregates, trace-event capture, and instrumented-subsystem smoke
/// checks (crossbar spans, trace span sink, thread-pool lanes).
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "core/trace.hpp"
#include "crossbar/crossbar.hpp"
#include "obs/obs.hpp"
#include "obs/trace_events.hpp"
#include "util/thread_pool.hpp"

namespace cim::obs {
namespace {

class SpanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_mode(Mode::kMetrics);
    reset();
  }
  void TearDown() override {
    set_mode(Mode::kOff);
    reset();
  }
};

TEST_F(SpanTest, SpanRecordsIntoRegistry) {
  {
    CIM_OBS_SPAN_NAMED(span, "test.span.basic", Component::kAdc);
    span.add_energy_pj(2.5);
    span.add_sim_time_ns(7.0);
  }
  const Snapshot s = snapshot();
  bool found = false;
  for (const auto& row : s.spans) {
    if (row.name != "test.span.basic") continue;
    found = true;
    EXPECT_EQ(row.comp, Component::kAdc);
    EXPECT_EQ(row.count, 1u);
    EXPECT_GE(row.wall_ns, 0.0);
    EXPECT_DOUBLE_EQ(row.energy_pj, 2.5);
    EXPECT_DOUBLE_EQ(row.sim_time_ns, 7.0);
  }
  EXPECT_TRUE(found);
}

TEST_F(SpanTest, DisabledModeRecordsNothing) {
  set_mode(Mode::kOff);
  {
    CIM_OBS_SPAN("test.span.disabled", Component::kDac);
  }
  set_mode(Mode::kMetrics);
  for (const auto& row : snapshot().spans)
    if (row.name == "test.span.disabled") EXPECT_EQ(row.count, 0u);
}

TEST_F(SpanTest, AttributeFeedsBreakdown) {
  attribute(Component::kAdc, 10.0, 100.0);
  attribute(Component::kArray, 5.0, 25.0);
  const auto rows = breakdown();
  double adc_share = 0.0;
  double total_share = 0.0;
  for (const auto& row : rows) {
    total_share += row.energy_share;
    if (row.comp == Component::kAdc) {
      adc_share = row.energy_share;
      EXPECT_DOUBLE_EQ(row.energy_pj, 100.0);
      EXPECT_DOUBLE_EQ(row.sim_time_ns, 10.0);
    }
  }
  EXPECT_NEAR(adc_share, 0.8, 1e-12);
  EXPECT_NEAR(total_share, 1.0, 1e-12);
}

TEST_F(SpanTest, TraceModeCapturesEvents) {
  set_mode(Mode::kTrace);
  reset();
  {
    CIM_OBS_SPAN("test.span.traced", Component::kDigital);
  }
  const auto events = detail::collect_trace_events();
  bool found = false;
  for (const auto& e : events)
    if (std::string_view(e.name) == "test.span.traced") found = true;
  EXPECT_TRUE(found);
  // Reset drops the events.
  reset();
  EXPECT_TRUE(detail::collect_trace_events().empty());
}

TEST_F(SpanTest, MetricsModeDoesNotCaptureEvents) {
  {
    CIM_OBS_SPAN("test.span.untraced", Component::kDigital);
  }
  for (const auto& e : detail::collect_trace_events())
    EXPECT_NE(std::string_view(e.name), "test.span.untraced");
}

TEST_F(SpanTest, CrossbarVmmRecordsSpanAndArrayAttribution) {
  crossbar::CrossbarConfig cfg;
  cfg.rows = 8;
  cfg.cols = 8;
  crossbar::Crossbar xbar(cfg);
  const std::vector<double> v(8, 0.2);
  reset();  // drop construction-time noise
  (void)xbar.vmm(v);
  const Snapshot s = snapshot();
  bool span_found = false;
  for (const auto& row : s.spans)
    if (row.name == "crossbar.vmm" && row.count == 1) span_found = true;
  EXPECT_TRUE(span_found);
  bool counter_found = false;
  for (const auto& [name, v2] : s.counters)
    if (name == "crossbar.vmm_ops" && v2 == 1) counter_found = true;
  EXPECT_TRUE(counter_found);
  // charge() attributed the read to the array component.
  for (const auto& row : s.components)
    if (row.comp == Component::kArray) EXPECT_GT(row.events, 0u);
}

TEST_F(SpanTest, CoreTraceForwardsAsSpanSink) {
  core::Trace trace(16);
  trace.record({core::OpKind::kSenseColumns, 0, 1, 3.0, 9.0});
  trace.record({core::OpKind::kSenseColumns, 0, 2, 3.0, 9.0});
  const Snapshot s = snapshot();
  bool found = false;
  for (const auto& row : s.spans) {
    if (row.name != "trace.sense") continue;
    found = true;
    EXPECT_EQ(row.comp, Component::kAdc);
    EXPECT_EQ(row.count, 2u);
    EXPECT_DOUBLE_EQ(row.sim_time_ns, 6.0);
    EXPECT_DOUBLE_EQ(row.energy_pj, 18.0);
  }
  EXPECT_TRUE(found);
}

TEST_F(SpanTest, ThreadPoolReportsUtilization) {
  util::ThreadPool pool(2);
  std::vector<int> out(64, 0);
  pool.parallel_for(0, out.size(), [&](std::size_t i) { out[i] = 1; });
  const Snapshot s = snapshot();
  std::uint64_t jobs = 0;
  std::uint64_t chunks = 0;
  for (const auto& [name, v] : s.counters) {
    if (name == "threadpool.jobs") jobs = v;
    if (name == "threadpool.chunks") chunks = v;
  }
  EXPECT_GE(jobs, 1u);
  EXPECT_GE(chunks, 1u);
  bool lane_metric = false;
  for (const auto& [name, v] : s.counters)
    if (name.rfind("threadpool.lane", 0) == 0) lane_metric = true;
  EXPECT_TRUE(lane_metric);
}

}  // namespace
}  // namespace cim::obs
