/// Per-fault-class campaign counters (Fig. 6 taxonomy): scoring a March
/// campaign with the health tier on must account every injected fault as
/// exactly one health.fault.detected.<class> or .escaped.<class> increment,
/// and the detected total must reproduce the reported coverage.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "crossbar/crossbar.hpp"
#include "fault/fault_map.hpp"
#include "fault/fault_model.hpp"
#include "memtest/march.hpp"
#include "memtest/online_voltage_test.hpp"
#include "obs/obs.hpp"
#include "util/rng.hpp"

namespace cim::obs {
namespace {

std::uint64_t detected(fault::FaultKind k) {
  return Registry::global()
      .counter(std::string("health.fault.detected.") +
               std::string(fault::fault_name(k)))
      .value();
}
std::uint64_t escaped(fault::FaultKind k) {
  return Registry::global()
      .counter(std::string("health.fault.escaped.") +
               std::string(fault::fault_name(k)))
      .value();
}

class HealthFaultCounterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_mode(Mode::kHealth);
    reset();
  }
  void TearDown() override {
    set_mode(Mode::kOff);
    reset();
  }
};

TEST_F(HealthFaultCounterTest, MarchCampaignCountersAreExact) {
  crossbar::CrossbarConfig cfg;
  cfg.rows = 16;
  cfg.cols = 16;
  cfg.seed = 123;
  crossbar::Crossbar xbar(cfg);

  util::Rng rng(9);
  auto map = fault::FaultMap::with_fault_count(
      cfg.rows, cfg.cols, 12, fault::FaultMix::stuck_at_only(), rng);
  map.add({.kind = fault::FaultKind::kTransitionUp, .row = 3, .col = 3});
  map.add({.kind = fault::FaultKind::kTransitionDown, .row = 5, .col = 7});
  xbar.apply_faults(map);

  const auto result = run_march(xbar, memtest::march_cstar());
  const double coverage = memtest::fault_coverage(map, result);

  std::uint64_t det_total = 0, esc_total = 0;
  for (const auto k : fault::all_fault_kinds()) {
    det_total += detected(k);
    esc_total += escaped(k);
  }
  const auto injected = map.all();
  // Exactly one outcome per injected fault, split consistently with the
  // coverage number fault_coverage() returned.
  EXPECT_EQ(det_total + esc_total, injected.size());
  EXPECT_DOUBLE_EQ(coverage, static_cast<double>(det_total) /
                                 static_cast<double>(injected.size()));
  // Per-class totals match the injected census.
  for (const auto k : fault::all_fault_kinds())
    EXPECT_EQ(detected(k) + escaped(k), map.count(k))
        << fault::fault_name(k);
  // March C* detects every stuck-at fault on a functioning array.
  EXPECT_EQ(escaped(fault::FaultKind::kStuckAtZero), 0u);
  EXPECT_EQ(escaped(fault::FaultKind::kStuckAtOne), 0u);
}

TEST_F(HealthFaultCounterTest, ScoringTwiceDoublesCountersOnceEach) {
  crossbar::CrossbarConfig cfg;
  cfg.rows = 8;
  cfg.cols = 8;
  cfg.seed = 77;
  crossbar::Crossbar xbar(cfg);
  fault::FaultMap map(cfg.rows, cfg.cols);
  map.add({.kind = fault::FaultKind::kStuckAtZero, .row = 2, .col = 2});
  xbar.apply_faults(map);
  const auto result = run_march(xbar, memtest::march_cstar());
  (void)memtest::fault_coverage(map, result);
  (void)memtest::fault_coverage(map, result);
  EXPECT_EQ(detected(fault::FaultKind::kStuckAtZero) +
                escaped(fault::FaultKind::kStuckAtZero),
            2u);
}

TEST_F(HealthFaultCounterTest, DisabledHealthTierCountsNothing) {
  set_mode(Mode::kMetrics);
  crossbar::CrossbarConfig cfg;
  cfg.rows = 8;
  cfg.cols = 8;
  crossbar::Crossbar xbar(cfg);
  fault::FaultMap map(cfg.rows, cfg.cols);
  map.add({.kind = fault::FaultKind::kStuckAtOne, .row = 1, .col = 1});
  xbar.apply_faults(map);
  const auto result = run_march(xbar, memtest::march_cstar());
  (void)memtest::fault_coverage(map, result);
  EXPECT_EQ(detected(fault::FaultKind::kStuckAtOne), 0u);
  EXPECT_EQ(escaped(fault::FaultKind::kStuckAtOne), 0u);
}

TEST_F(HealthFaultCounterTest, VoltageTestQualityCountsStuckFaults) {
  crossbar::CrossbarConfig cfg;
  cfg.rows = 16;
  cfg.cols = 16;
  cfg.seed = 42;
  cfg.verified_writes = true;
  crossbar::Crossbar xbar(cfg);

  fault::FaultMap map(cfg.rows, cfg.cols);
  map.add({.kind = fault::FaultKind::kStuckAtZero, .row = 4, .col = 9});
  map.add({.kind = fault::FaultKind::kStuckAtOne, .row = 12, .col = 1});
  map.add({.kind = fault::FaultKind::kWriteVariation, .row = 6, .col = 6,
           .severity = 2.0});  // not a stuck fault: must not be scored
  xbar.apply_faults(map);

  const auto res = memtest::run_voltage_comparison_test(xbar, {});
  (void)memtest::voltage_test_quality(map, res);

  EXPECT_EQ(detected(fault::FaultKind::kStuckAtZero) +
                escaped(fault::FaultKind::kStuckAtZero),
            1u);
  EXPECT_EQ(detected(fault::FaultKind::kStuckAtOne) +
                escaped(fault::FaultKind::kStuckAtOne),
            1u);
  EXPECT_EQ(detected(fault::FaultKind::kWriteVariation) +
                escaped(fault::FaultKind::kWriteVariation),
            0u);
}

}  // namespace
}  // namespace cim::obs
