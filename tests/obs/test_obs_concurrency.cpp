/// Concurrency regression tests for the telemetry hot paths. The
/// ThreadSanitizer race gate (`ctest -L 'tsan|obs'` in the CIM_TSAN build)
/// runs these so the sharded counters, the perf-counter views, span
/// recording, and component attribution are checked from thread-pool
/// bodies.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "obs/obs.hpp"
#include "util/perf_counters.hpp"
#include "util/thread_pool.hpp"

namespace cim::obs {
namespace {

class ObsConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_mode(Mode::kMetrics);
    reset();
  }
  void TearDown() override {
    set_mode(Mode::kOff);
    reset();
  }
};

TEST_F(ObsConcurrencyTest, PerfCountersSafeFromParallelForBodies) {
  // Regression: the process-wide cache counters are bumped from
  // ThreadPool::parallel_for bodies (Monte-Carlo fan-out with private
  // crossbars); the registry-backed views must stay exact under that load.
  const std::uint64_t base_full =
      util::perf::cache_full_rebuilds.load(std::memory_order_relaxed);
  const std::uint64_t base_delta =
      util::perf::cache_delta_updates.load(std::memory_order_relaxed);
  util::ThreadPool pool(4);
  constexpr std::size_t kIters = 4000;
  pool.parallel_for(0, kIters, [](std::size_t) {
    util::perf::cache_full_rebuilds.fetch_add(1, std::memory_order_relaxed);
    util::perf::cache_delta_updates.fetch_add(2, std::memory_order_relaxed);
  });
  EXPECT_EQ(util::perf::cache_full_rebuilds.load(std::memory_order_relaxed),
            base_full + kIters);
  EXPECT_EQ(util::perf::cache_delta_updates.load(std::memory_order_relaxed),
            base_delta + 2 * kIters);
}

TEST_F(ObsConcurrencyTest, RegistryMetricsSafeUnderConcurrentUse) {
  util::ThreadPool pool(4);
  constexpr std::size_t kIters = 2000;
  pool.parallel_for(0, kIters, [](std::size_t i) {
    // Lazily-registered metrics hit the registration lock on first use and
    // the lock-free shards afterwards.
    Registry::global().counter("obs_test.concurrent_counter").add(1);
    Registry::global().gauge("obs_test.concurrent_gauge").set(
        static_cast<double>(i));
    Registry::global()
        .histogram("obs_test.concurrent_hist", std::vector<double>{10.0, 100.0})
        .observe(static_cast<double>(i % 128));
    attribute(Component::kAdc, 1.0, 2.0);
    CIM_OBS_SPAN("obs_test.concurrent_span", Component::kDigital);
  });
  const Snapshot s = snapshot();
  for (const auto& [name, v] : s.counters)
    if (name == "obs_test.concurrent_counter") EXPECT_EQ(v, kIters);
  for (const auto& h : s.histograms)
    if (h.name == "obs_test.concurrent_hist") EXPECT_EQ(h.data.count, kIters);
  for (const auto& row : s.spans)
    if (row.name == "obs_test.concurrent_span") EXPECT_EQ(row.count, kIters);
  for (const auto& row : s.components)
    if (row.comp == Component::kAdc) {
      EXPECT_GE(row.events, kIters);
      EXPECT_GE(row.energy_pj, 2.0 * static_cast<double>(kIters) - 1e-9);
    }
}

TEST_F(ObsConcurrencyTest, TraceModeEventCaptureSafeAcrossThreads) {
  set_mode(Mode::kTrace);
  reset();
  util::ThreadPool pool(4);
  constexpr std::size_t kIters = 512;
  pool.parallel_for(0, kIters, [](std::size_t) {
    CIM_OBS_SPAN("obs_test.traced_span", Component::kOther);
  });
  // Snapshots may run while other pools are still alive elsewhere; here the
  // pool has quiesced, so the count is exact.
  for (const auto& row : snapshot().spans)
    if (row.name == "obs_test.traced_span") EXPECT_EQ(row.count, kIters);
}

}  // namespace
}  // namespace cim::obs
