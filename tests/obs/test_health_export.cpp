/// Spatial-health exporters: heatmap CSV/JSON round-trips, the Prometheus
/// text format, a real TCP scrape of PromServer, and the crash-safe atomic
/// file-write primitive behind every env-hook export.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/health.hpp"
#include "obs/json.hpp"
#include "obs/obs.hpp"
#include "obs/prom.hpp"

namespace cim::obs {
namespace {

class HealthExportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_mode(Mode::kHealth);
    reset();
    HealthRegistry::global().clear();
  }
  void TearDown() override {
    ::unsetenv("CIM_OBS_HEATMAP_FILE");
    set_mode(Mode::kOff);
    reset();
    HealthRegistry::global().clear();
  }

  /// One 2x2 monitor with distinct, recognizable values in every channel.
  std::shared_ptr<HealthMonitor> make_fixture() {
    auto m = HealthRegistry::global().monitor("fixture", 2, 2);
    m->record_write(0, 0, 3);
    m->record_program(0, 0, 50.0, 52.0);  // drift +2
    m->record_disturb(1, 1, 1.0);
    m->record_wearout(1, 0);
    m->record_adc_sample(0, true);
    m->record_adc_sample(1, false);
    m->record_sneak_current(1, 0.5);
    return m;
  }
};

TEST_F(HealthExportTest, CsvHeatmapHasHeaderAndExactRows) {
  make_fixture();
  std::ostringstream os;
  write_health_heatmap_csv(os);
  std::istringstream is(os.str());
  std::string line;
  ASSERT_TRUE(std::getline(is, line));
  EXPECT_EQ(line, "array,metric,row,col,value");

  bool saw_wear = false, saw_drift = false, saw_adc = false;
  std::size_t rows = 0;
  while (std::getline(is, line)) {
    ++rows;
    if (line == "fixture,wear,0,0,3") saw_wear = true;
    if (line.rfind("fixture,drift_us,0,0,2", 0) == 0) saw_drift = true;
    if (line == "fixture,adc_clips,-1,0,1") saw_adc = true;  // per-column
  }
  EXPECT_TRUE(saw_wear);
  EXPECT_TRUE(saw_drift);
  EXPECT_TRUE(saw_adc);
  // 4 per-cell metrics x 4 cells + 3 per-column metrics x 2 columns.
  EXPECT_EQ(rows, 4u * 4u + 3u * 2u);
}

TEST_F(HealthExportTest, JsonHeatmapRoundTrips) {
  make_fixture();
  std::ostringstream os;
  write_health_json(os);
  const json::Value doc = json::parse(os.str());

  EXPECT_EQ(doc.at("meta").at("schema").as_string(), "cim-health-heatmap-v1");
  EXPECT_TRUE(doc.at("meta").at("git_sha").is_string());
  const auto& arrays = doc.at("arrays").as_array();
  ASSERT_EQ(arrays.size(), 1u);
  const auto& arr = arrays[0];
  EXPECT_EQ(arr.at("name").as_string(), "fixture");
  EXPECT_DOUBLE_EQ(arr.at("rows").as_number(), 2.0);
  EXPECT_DOUBLE_EQ(arr.at("cols").as_number(), 2.0);
  const auto& wear = arr.at("wear").as_array();
  ASSERT_EQ(wear.size(), 4u);
  EXPECT_DOUBLE_EQ(wear[0].as_number(), 3.0);
  EXPECT_DOUBLE_EQ(arr.at("drift_us").as_array()[0].as_number(), 2.0);
  EXPECT_DOUBLE_EQ(arr.at("worn").as_array()[2].as_number(), 1.0);
  EXPECT_DOUBLE_EQ(arr.at("adc_clips").as_array()[0].as_number(), 1.0);
  EXPECT_DOUBLE_EQ(arr.at("sneak_ua").as_array()[1].as_number(), 0.5);
  const auto& sum = arr.at("summary");
  EXPECT_DOUBLE_EQ(sum.at("total_writes").as_number(), 3.0);
  EXPECT_DOUBLE_EQ(sum.at("worn_cells").as_number(), 1.0);
}

TEST_F(HealthExportTest, PrometheusTextCoversRegistryAndHealth) {
  make_fixture();
  Registry::global().counter("test.prom.counter").add(7);
  Registry::global().gauge("test.prom.gauge").set(2.5);
  Registry::global()
      .histogram("test.prom.hist", std::vector<double>{1.0, 2.0})
      .observe(1.5);

  std::ostringstream os;
  write_prometheus_text(os);
  const std::string text = os.str();

  EXPECT_NE(text.find("cim_build_info{"), std::string::npos);
  EXPECT_NE(text.find("cim_test_prom_counter_total 7"), std::string::npos);
  EXPECT_NE(text.find("cim_test_prom_gauge 2.5"), std::string::npos);
  // Cumulative le buckets: 1.5 lands in le="2" and le="+Inf".
  EXPECT_NE(text.find("cim_test_prom_hist_bucket{le=\"1\"} 0"),
            std::string::npos);
  EXPECT_NE(text.find("cim_test_prom_hist_bucket{le=\"2\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("cim_test_prom_hist_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("cim_test_prom_hist_count 1"), std::string::npos);
  EXPECT_NE(text.find("cim_health_writes_total{array=\"fixture\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("cim_health_worn_cells{array=\"fixture\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("cim_health_adc_clips_total{array=\"fixture\"} 1"),
            std::string::npos);
  // Every non-comment line is "name[{labels}] value".
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    EXPECT_EQ(line.rfind("cim_", 0), 0u) << line;
    EXPECT_NE(line.find(' '), std::string::npos) << line;
  }
}

TEST_F(HealthExportTest, PromServerServesOneScrapePerConnection) {
  make_fixture();
  PromServer server;
  ASSERT_TRUE(server.start(0));  // ephemeral port
  ASSERT_TRUE(server.running());
  ASSERT_NE(server.port(), 0);
  EXPECT_TRUE(server.start(0));   // double-start is a compatible no-op
  EXPECT_FALSE(server.start(server.port() + 1));  // rebind request refused

  auto scrape = [&]() -> std::string {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server.port());
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
    const char req[] = "GET /metrics HTTP/1.0\r\n\r\n";
    EXPECT_GT(::send(fd, req, sizeof(req) - 1, 0), 0);
    std::string resp;
    char buf[4096];
    ssize_t n;
    while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) resp.append(buf, n);
    ::close(fd);
    return resp;
  };

  for (int i = 0; i < 3; ++i) {  // server survives repeated connections
    const std::string resp = scrape();
    EXPECT_EQ(resp.rfind("HTTP/1.0 200 OK\r\n", 0), 0u);
    EXPECT_NE(resp.find("text/plain; version=0.0.4"), std::string::npos);
    EXPECT_NE(resp.find("cim_health_writes_total{array=\"fixture\"} 3"),
              std::string::npos);
  }
  server.stop();
  EXPECT_FALSE(server.running());
}

TEST_F(HealthExportTest, AtomicWriteLeavesNoTempAndSurvivesBadDir) {
  const std::string path = ::testing::TempDir() + "cim_atomic_test.txt";
  std::remove(path.c_str());
  ASSERT_TRUE(write_file_atomic(path, [](std::ostream& os) { os << "payload"; }));
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "payload");
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());  // no temp left behind

  // Unwritable destination: fails cleanly, creates nothing.
  EXPECT_FALSE(write_file_atomic("/nonexistent-dir/x/y.txt",
                                 [](std::ostream& os) { os << "x"; }));
  std::remove(path.c_str());
}

TEST_F(HealthExportTest, HeatmapEnvHookWritesCsvOrJsonBySuffix) {
  make_fixture();
  const std::string csv = ::testing::TempDir() + "cim_heatmap_test.csv";
  const std::string js = ::testing::TempDir() + "cim_heatmap_test.json";

  ::setenv("CIM_OBS_HEATMAP_FILE", csv.c_str(), 1);
  ASSERT_TRUE(export_health_heatmap_if_requested());
  std::ifstream fc(csv);
  std::string first;
  ASSERT_TRUE(std::getline(fc, first));
  EXPECT_EQ(first, "array,metric,row,col,value");

  ::setenv("CIM_OBS_HEATMAP_FILE", js.c_str(), 1);
  ASSERT_TRUE(export_health_heatmap_if_requested());
  std::ifstream fj(js);
  std::string jdoc((std::istreambuf_iterator<char>(fj)),
                   std::istreambuf_iterator<char>());
  EXPECT_EQ(json::parse(jdoc).at("meta").at("schema").as_string(),
            "cim-health-heatmap-v1");

  // Health tier off -> the hook declines.
  set_mode(Mode::kMetrics);
  EXPECT_FALSE(export_health_heatmap_if_requested());
  std::remove(csv.c_str());
  std::remove(js.c_str());
}

}  // namespace
}  // namespace cim::obs
