/// Chrome-trace buffer overflow: per-thread buffers are bounded; every
/// event past the cap is dropped with *exact* accounting on the
/// obs.trace.dropped counter, and the drop total is surfaced in the
/// exported Chrome trace's otherData.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string_view>
#include <thread>

#include "obs/json.hpp"
#include "obs/obs.hpp"
#include "obs/trace_events.hpp"

namespace cim::obs {
namespace {

class TraceOverflowTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_mode(Mode::kTrace);
    reset();
    detail::clear_trace_events();
  }
  void TearDown() override {
    detail::set_trace_buffer_capacity_for_test(0);  // restore default
    detail::clear_trace_events();
    set_mode(Mode::kOff);
    reset();
  }
  std::uint64_t dropped() {
    return Registry::global().counter("obs.trace.dropped").value();
  }
};

TEST_F(TraceOverflowTest, CapacityHookShrinksAndRestores) {
  const std::size_t def = detail::trace_buffer_capacity();
  EXPECT_EQ(def, std::size_t{1} << 16);
  detail::set_trace_buffer_capacity_for_test(8);
  EXPECT_EQ(detail::trace_buffer_capacity(), 8u);
  detail::set_trace_buffer_capacity_for_test(0);
  EXPECT_EQ(detail::trace_buffer_capacity(), def);
}

TEST_F(TraceOverflowTest, DropsArePerEventExact) {
  constexpr std::size_t kCap = 16;
  constexpr std::size_t kTotal = 100;
  detail::set_trace_buffer_capacity_for_test(kCap);
  // A fresh thread gets an empty buffer, so the arithmetic is exact even
  // though the main test thread may already hold events.
  std::thread t([] {
    for (std::size_t i = 0; i < kTotal; ++i)
      detail::record_trace_event("overflow.ev", Component::kOther,
                                 /*ts_ns=*/i, /*dur_ns=*/1, /*energy_pj=*/0.0);
  });
  t.join();
  EXPECT_EQ(dropped(), kTotal - kCap);

  const auto events = detail::collect_trace_events();
  std::size_t kept = 0;
  for (const auto& e : events)
    if (std::string_view(e.name) == "overflow.ev") ++kept;
  EXPECT_EQ(kept, kCap);
}

TEST_F(TraceOverflowTest, EachThreadHasItsOwnBudget) {
  constexpr std::size_t kCap = 8;
  constexpr std::size_t kPerThread = 20;
  detail::set_trace_buffer_capacity_for_test(kCap);
  auto hammer = [] {
    for (std::size_t i = 0; i < kPerThread; ++i)
      detail::record_trace_event("budget.ev", Component::kOther, i, 1, 0.0);
  };
  std::thread a(hammer), b(hammer);
  a.join();
  b.join();
  EXPECT_EQ(dropped(), 2 * (kPerThread - kCap));
}

TEST_F(TraceOverflowTest, DroppedCountSurfacesInChromeTraceOtherData) {
  detail::set_trace_buffer_capacity_for_test(4);
  std::thread t([] {
    for (std::size_t i = 0; i < 10; ++i)
      detail::record_trace_event("surfaced.ev", Component::kOther, i, 1, 0.0);
  });
  t.join();
  ASSERT_EQ(dropped(), 6u);

  std::ostringstream os;
  write_chrome_trace(os);
  const json::Value doc = json::parse(os.str());
  EXPECT_DOUBLE_EQ(doc.at("otherData").at("dropped_events").as_number(), 6.0);
}

TEST_F(TraceOverflowTest, NoDropsBelowCapacity) {
  detail::set_trace_buffer_capacity_for_test(64);
  std::thread t([] {
    for (std::size_t i = 0; i < 64; ++i)
      detail::record_trace_event("fits.ev", Component::kOther, i, 1, 0.0);
  });
  t.join();
  EXPECT_EQ(dropped(), 0u);
}

}  // namespace
}  // namespace cim::obs
