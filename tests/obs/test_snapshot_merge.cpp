/// \file test_snapshot_merge.cpp
/// \brief Snapshot merge semantics (obs/merge.cpp): counters add, gauges
///        resolve last-writer-wins by capture time, histograms add
///        bucket-wise only on identical bounds, spans accumulate — plus
///        the JSON round-trip and live-registry absorption used when a
///        campaign parent folds in worker-process telemetry.
#include <gtest/gtest.h>

#include <array>
#include <sstream>
#include <string>

#include "obs/obs.hpp"

namespace {

using cim::obs::absorb_snapshot;
using cim::obs::merge_snapshot;
using cim::obs::MergeStats;
using cim::obs::parse_snapshot_json;
using cim::obs::Registry;
using cim::obs::Snapshot;

Snapshot make_snapshot(std::uint64_t unix_us) {
  Snapshot s;
  s.meta.git_sha = "test";
  s.meta.build_type = "Release";
  s.meta.unix_us = unix_us;
  s.counters = {{"exp.trials_done", 100}, {"worker.only", 7}};
  s.gauges = {{"exp.eta_s", 12.5}};
  Snapshot::Hist h;
  h.name = "trial.latency";
  h.data.bounds = {1.0, 10.0, 100.0};
  h.data.counts = {5, 3, 1, 0};
  h.data.count = 9;
  h.data.sum = 42.0;
  s.histograms.push_back(h);
  return s;
}

TEST(SnapshotMerge, CountersAddAndNewNamesAreAdopted) {
  Snapshot into = make_snapshot(1000);
  into.counters = {{"exp.trials_done", 50}};
  const Snapshot from = make_snapshot(2000);

  const MergeStats ms = merge_snapshot(into, from);
  EXPECT_EQ(ms.counters_added, 2u);

  std::uint64_t trials = 0, adopted = 0;
  for (const auto& [name, v] : into.counters) {
    if (name == "exp.trials_done") trials = v;
    if (name == "worker.only") adopted = v;
  }
  EXPECT_EQ(trials, 150u);
  EXPECT_EQ(adopted, 7u);
}

TEST(SnapshotMerge, GaugesAreLastWriterWinsByCaptureTime) {
  Snapshot older = make_snapshot(1000);
  older.gauges = {{"exp.eta_s", 99.0}};
  Snapshot newer = make_snapshot(2000);
  newer.gauges = {{"exp.eta_s", 12.5}};

  // Newer `from` wins...
  Snapshot into = older;
  merge_snapshot(into, newer);
  EXPECT_DOUBLE_EQ(into.gauges[0].second, 12.5);
  EXPECT_EQ(into.meta.unix_us, 2000u);

  // ...older `from` does not (and ties keep `into`).
  Snapshot into2 = newer;
  const MergeStats ms = merge_snapshot(into2, older);
  EXPECT_DOUBLE_EQ(into2.gauges[0].second, 12.5);
  EXPECT_EQ(ms.gauges_taken, 0u);
  Snapshot tie = newer;
  Snapshot tie_from = newer;
  tie_from.gauges = {{"exp.eta_s", -1.0}};
  merge_snapshot(tie, tie_from);
  EXPECT_DOUBLE_EQ(tie.gauges[0].second, 12.5);
}

TEST(SnapshotMerge, HistogramsMergeBucketWiseOnIdenticalBounds) {
  Snapshot into = make_snapshot(1000);
  Snapshot from = make_snapshot(2000);
  from.histograms[0].data.counts = {1, 1, 1, 2};
  from.histograms[0].data.count = 5;
  from.histograms[0].data.sum = 500.0;

  const MergeStats ms = merge_snapshot(into, from);
  EXPECT_EQ(ms.histograms_merged, 1u);
  EXPECT_EQ(ms.bound_conflicts, 0u);
  const auto& h = into.histograms[0].data;
  EXPECT_EQ(h.counts, (std::vector<std::uint64_t>{6, 4, 2, 2}));
  EXPECT_EQ(h.count, 14u);
  EXPECT_DOUBLE_EQ(h.sum, 542.0);
}

TEST(SnapshotMerge, ConflictingBoundsAreSkippedAndCounted) {
  Snapshot into = make_snapshot(1000);
  Snapshot from = make_snapshot(2000);
  from.histograms[0].data.bounds = {2.0, 20.0, 200.0};

  const Snapshot before = into;
  const MergeStats ms = merge_snapshot(into, from);
  EXPECT_EQ(ms.bound_conflicts, 1u);
  EXPECT_EQ(ms.histograms_merged, 0u);
  EXPECT_EQ(into.histograms[0].data.counts, before.histograms[0].data.counts);
  EXPECT_EQ(into.histograms[0].data.count, before.histograms[0].data.count);
}

TEST(SnapshotMerge, JsonRoundTripsThenMergesIdentically) {
  const Snapshot s = make_snapshot(123456789012345);

  std::ostringstream os;
  cim::obs::write_snapshot_json(os, s);
  Snapshot parsed;
  std::string err;
  ASSERT_TRUE(parse_snapshot_json(os.str(), parsed, &err)) << err;

  EXPECT_EQ(parsed.meta.unix_us, s.meta.unix_us);
  ASSERT_EQ(parsed.counters.size(), s.counters.size());
  ASSERT_EQ(parsed.histograms.size(), s.histograms.size());
  EXPECT_EQ(parsed.histograms[0].data.counts, s.histograms[0].data.counts);
  EXPECT_DOUBLE_EQ(parsed.histograms[0].data.sum, s.histograms[0].data.sum);

  // Merging the parsed copy behaves exactly like merging the original.
  Snapshot a = make_snapshot(1000), b = make_snapshot(1000);
  merge_snapshot(a, s);
  merge_snapshot(b, parsed);
  ASSERT_EQ(a.counters.size(), b.counters.size());
  for (std::size_t i = 0; i < a.counters.size(); ++i)
    EXPECT_EQ(a.counters[i], b.counters[i]);
}

TEST(SnapshotMerge, ParseRejectsGarbage) {
  Snapshot out;
  std::string err;
  EXPECT_FALSE(parse_snapshot_json("not json", out, &err));
  EXPECT_FALSE(err.empty());
  EXPECT_FALSE(parse_snapshot_json("{\"counters\": [", out, nullptr));
}

TEST(SnapshotMerge, AbsorbIntoLiveRegistry) {
  Registry& reg = Registry::global();
  reg.reset();
  reg.counter("exp.trials_done").add(10);
  const std::array<double, 3> bounds{1.0, 10.0, 100.0};
  auto& hist = reg.histogram("trial.latency", bounds);
  hist.observe(5.0);  // bucket 1 (1 < 5 <= 10)

  const Snapshot from = make_snapshot(5000);
  const MergeStats ms = absorb_snapshot(from, 0);
  EXPECT_GE(ms.counters_added, 2u);
  EXPECT_EQ(ms.histograms_merged, 1u);

  const Snapshot now = reg.snapshot();
  std::uint64_t trials = 0, adopted = 0;
  for (const auto& [name, v] : now.counters) {
    if (name == "exp.trials_done") trials = v;
    if (name == "worker.only") adopted = v;
  }
  EXPECT_EQ(trials, 110u);
  EXPECT_EQ(adopted, 7u);
  for (const auto& h : now.histograms)
    if (h.name == "trial.latency") {
      EXPECT_EQ(h.data.count, 10u);
      EXPECT_DOUBLE_EQ(h.data.sum, 47.0);
    }

  // A stale snapshot cannot overwrite gauges past the cutoff.
  reg.gauge("exp.eta_s").set(77.0);
  const MergeStats stale = absorb_snapshot(from, /*newer_than_unix_us=*/9000);
  EXPECT_EQ(stale.gauges_taken, 0u);
  const Snapshot after = reg.snapshot();
  for (const auto& [name, v] : after.gauges)
    if (name == "exp.eta_s") EXPECT_DOUBLE_EQ(v, 77.0);
  reg.reset();
}

}  // namespace
