/// Windowed aggregation and SLO tracking: window indexing and ring
/// eviction, exactly-once close callbacks, late-observation accounting,
/// the deterministic merge contract, and the burn-rate / error-budget
/// arithmetic of the SloTracker — all in simulated time, hand-computed.
#include "obs/window.hpp"

#include <gtest/gtest.h>

#include <array>
#include <stdexcept>
#include <vector>

namespace cim::obs {
namespace {

TEST(WindowedCounter, BucketsBySimulatedTimeAndClosesInOrder) {
  WindowedCounter wc(100.0, 4);
  std::vector<WindowCount> closed;
  const auto on_close = [&](const WindowCount& w) { closed.push_back(w); };

  wc.add(10.0, 1, on_close);   // window 0
  wc.add(99.0, 2, on_close);   // window 0
  wc.add(150.0, 1, on_close);  // window 1
  wc.add(320.0, 1, on_close);  // window 3
  EXPECT_TRUE(closed.empty());  // ring of 4 still holds windows 0..3

  // Window 4 pushes window 0 off the ring.
  wc.add(420.0, 1, on_close);
  ASSERT_EQ(closed.size(), 1u);
  EXPECT_EQ(closed[0].index, 0u);
  EXPECT_DOUBLE_EQ(closed[0].start_ns, 0.0);
  EXPECT_EQ(closed[0].count, 3u);

  wc.finalize(on_close);
  ASSERT_EQ(closed.size(), 4u);  // 1, 3, 4 close; empty window 2 never opened
  EXPECT_EQ(closed[1].index, 1u);
  EXPECT_EQ(closed[1].count, 1u);
  EXPECT_EQ(closed[2].index, 3u);
  EXPECT_EQ(closed[3].index, 4u);
  EXPECT_EQ(wc.total(), 6u);
  EXPECT_EQ(wc.late_dropped(), 0u);
}

TEST(WindowedCounter, LateObservationsBeyondRingAreCountedNotMisfiled) {
  WindowedCounter wc(100.0, 2);
  std::vector<WindowCount> closed;
  const auto on_close = [&](const WindowCount& w) { closed.push_back(w); };

  wc.add(950.0, 1, on_close);  // window 9; ring spans {8, 9}
  wc.add(850.0, 1, on_close);  // window 8: still inside the ring
  wc.add(50.0, 1, on_close);   // window 0: older than the ring
  EXPECT_EQ(wc.late_dropped(), 1u);
  EXPECT_EQ(wc.total(), 3u);  // total counts every add, late included

  wc.finalize(on_close);
  ASSERT_EQ(closed.size(), 2u);
  EXPECT_EQ(closed[0].index, 8u);
  EXPECT_EQ(closed[1].index, 9u);
}

TEST(WindowedCounter, NegativeAndPreRingTimesClampToWindowZero) {
  WindowedCounter wc(100.0, 4);
  wc.add(-50.0);  // clamps to window 0 rather than underflowing
  std::vector<WindowCount> closed;
  wc.finalize([&](const WindowCount& w) { closed.push_back(w); });
  ASSERT_EQ(closed.size(), 1u);
  EXPECT_EQ(closed[0].index, 0u);
  EXPECT_EQ(closed[0].count, 1u);
}

TEST(WindowedCounter, MergeEqualsSingleStream) {
  // Split one event stream across two counters; the merge must reproduce
  // the single-counter window series exactly (the determinism contract).
  const std::array<double, 8> ts = {10, 120, 130, 250, 260, 270, 380, 390};
  WindowedCounter whole(100.0, 8);
  WindowedCounter a(100.0, 8);
  WindowedCounter b(100.0, 8);
  for (std::size_t i = 0; i < ts.size(); ++i) {
    whole.add(ts[i]);
    (i % 2 == 0 ? a : b).add(ts[i]);
  }
  a.merge(b);

  std::vector<WindowCount> expect;
  std::vector<WindowCount> got;
  whole.finalize([&](const WindowCount& w) { expect.push_back(w); });
  a.finalize([&](const WindowCount& w) { got.push_back(w); });
  ASSERT_EQ(got.size(), expect.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].index, expect[i].index);
    EXPECT_EQ(got[i].count, expect[i].count);
  }
  EXPECT_EQ(a.total(), whole.total());
}

TEST(WindowedCounter, RejectsInvalidShape) {
  EXPECT_THROW(WindowedCounter(0.0), std::invalid_argument);
  EXPECT_THROW(WindowedCounter(-1.0), std::invalid_argument);
  EXPECT_THROW(WindowedCounter(10.0, 0), std::invalid_argument);
  WindowedCounter a(10.0, 4);
  WindowedCounter b(20.0, 4);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(WindowedHistogram, PerWindowQuantilesAndCounts) {
  const std::array<double, 3> bounds = {10.0, 100.0, 1000.0};
  WindowedHistogram wh(1000.0, bounds, 4);
  std::vector<WindowHistogramSnap> closed;
  const auto on_close =
      [&](const WindowHistogramSnap& s) { closed.push_back(s); };

  // Window 0: latencies well under 100; window 1: all in overflow.
  for (int i = 0; i < 10; ++i) wh.observe(100.0 * i / 10, 50.0, on_close);
  for (int i = 0; i < 10; ++i) wh.observe(1000.0 + i, 5000.0, on_close);
  wh.finalize(on_close);

  ASSERT_EQ(closed.size(), 2u);
  EXPECT_EQ(closed[0].index, 0u);
  EXPECT_EQ(closed[0].hist.count, 10u);
  EXPECT_DOUBLE_EQ(closed[0].hist.sum, 500.0);
  // All mass in the (10, 100] bucket: every quantile lands inside it.
  EXPECT_GT(closed[0].hist.p99(), 10.0);
  EXPECT_LE(closed[0].hist.p99(), 100.0);
  // Overflow-bucket ranks clamp to the largest resolvable bound.
  EXPECT_EQ(closed[1].index, 1u);
  EXPECT_DOUBLE_EQ(closed[1].hist.p50(), 1000.0);
  EXPECT_EQ(wh.total(), 20u);
}

TEST(WindowedHistogram, MergeEqualsSingleStream) {
  const std::array<double, 2> bounds = {10.0, 100.0};
  WindowedHistogram whole(50.0, bounds, 8);
  WindowedHistogram a(50.0, bounds, 8);
  WindowedHistogram b(50.0, bounds, 8);
  const std::array<double, 6> ts = {5, 60, 110, 160, 210, 260};
  const std::array<double, 6> vs = {1, 20, 200, 5, 50, 500};
  for (std::size_t i = 0; i < ts.size(); ++i) {
    whole.observe(ts[i], vs[i]);
    (i < 3 ? a : b).observe(ts[i], vs[i]);
  }
  a.merge(b);

  std::vector<WindowHistogramSnap> expect;
  std::vector<WindowHistogramSnap> got;
  whole.finalize([&](const WindowHistogramSnap& s) { expect.push_back(s); });
  a.finalize([&](const WindowHistogramSnap& s) { got.push_back(s); });
  ASSERT_EQ(got.size(), expect.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].index, expect[i].index);
    EXPECT_EQ(got[i].hist.counts, expect[i].hist.counts);
    EXPECT_DOUBLE_EQ(got[i].hist.sum, expect[i].hist.sum);
  }
}

SloConfig slo_cfg() {
  SloConfig cfg;
  cfg.target_ns = 100.0;
  cfg.objective = 0.9;  // 10% budget: burn = violation_frac / 0.1
  cfg.window_ns = 1000.0;
  cfg.fast_windows = 1;
  cfg.slow_windows = 3;
  cfg.fast_burn_threshold = 5.0;
  cfg.slow_burn_threshold = 2.0;
  return cfg;
}

TEST(SloTracker, BurnRateAndBudgetHandComputed) {
  SloTracker slo(slo_cfg());
  // Window 0: 8 good, 2 bad -> violation 0.2, burn 2.0 (no fast alert).
  for (int i = 0; i < 8; ++i) slo.observe(100.0 * i, 50.0);
  slo.observe(800.0, 200.0);
  slo.record_rejected(900.0);  // rejected counts as bad
  // Window 1: 10 good.
  for (int i = 0; i < 10; ++i) slo.observe(1000.0 + i, 50.0);
  const auto sum = slo.finalize();

  ASSERT_EQ(slo.windows().size(), 2u);
  const SloWindow& w0 = slo.windows()[0];
  EXPECT_EQ(w0.good, 8u);
  EXPECT_EQ(w0.bad, 2u);
  EXPECT_DOUBLE_EQ(w0.burn_rate, 2.0);
  EXPECT_FALSE(w0.fast_alert);  // 2.0 < fast threshold 5.0
  EXPECT_TRUE(w0.slow_alert);   // trailing-3 burn 2.0 >= 2.0

  EXPECT_TRUE(sum.enabled);
  EXPECT_EQ(sum.good, 18u);
  EXPECT_EQ(sum.bad, 2u);
  // budget = bad / ((good + bad) * (1 - objective)) = 2 / (20 * 0.1) = 1.0
  EXPECT_DOUBLE_EQ(sum.budget_consumed, 1.0);
  EXPECT_EQ(sum.fast_alerts, 0u);
  EXPECT_EQ(sum.slow_alerts, 1u);
  EXPECT_TRUE(sum.breached);  // budget fully consumed
}

TEST(SloTracker, FastAlertCountsOnsetsNotWindows) {
  SloTracker slo(slo_cfg());
  // Three consecutive all-bad windows: burn 10 >= 5 in each, but the
  // level-triggered alert fires once at onset, not per window.
  for (int w = 0; w < 3; ++w)
    for (int i = 0; i < 5; ++i) slo.observe(1000.0 * w + i, 500.0);
  // Recovery window, then a second cliff: a second onset.
  for (int i = 0; i < 20; ++i) slo.observe(3000.0 + i, 10.0);
  for (int i = 0; i < 5; ++i) slo.observe(4000.0 + i, 500.0);
  const auto sum = slo.finalize();

  EXPECT_EQ(sum.fast_alerts, 2u);
  EXPECT_TRUE(sum.breached);
  EXPECT_DOUBLE_EQ(sum.first_breach_ns, 0.0);  // first bad window starts at 0
}

TEST(SloTracker, CleanRunDoesNotBreach) {
  SloTracker slo(slo_cfg());
  for (int i = 0; i < 1000; ++i) slo.observe(10.0 * i, 50.0);
  const auto sum = slo.finalize();
  EXPECT_EQ(sum.bad, 0u);
  EXPECT_DOUBLE_EQ(sum.budget_consumed, 0.0);
  EXPECT_EQ(sum.fast_alerts, 0u);
  EXPECT_EQ(sum.slow_alerts, 0u);
  EXPECT_FALSE(sum.breached);
  EXPECT_DOUBLE_EQ(sum.first_breach_ns, -1.0);
}

TEST(SloTracker, FinalizeIsIdempotentAndCtorValidates) {
  SloTracker slo(slo_cfg());
  slo.observe(0.0, 50.0);
  const auto a = slo.finalize();
  const auto b = slo.finalize();
  EXPECT_EQ(a.good, b.good);
  EXPECT_EQ(slo.windows().size(), 1u);

  auto bad_cfg = slo_cfg();
  bad_cfg.target_ns = 0.0;
  EXPECT_THROW(SloTracker{bad_cfg}, std::invalid_argument);
  bad_cfg = slo_cfg();
  bad_cfg.objective = 1.0;
  EXPECT_THROW(SloTracker{bad_cfg}, std::invalid_argument);
  bad_cfg = slo_cfg();
  bad_cfg.fast_windows = 0;
  EXPECT_THROW(SloTracker{bad_cfg}, std::invalid_argument);
}

}  // namespace
}  // namespace cim::obs
