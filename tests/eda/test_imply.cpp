#include "eda/imply_mapper.hpp"

#include <gtest/gtest.h>

#include "eda/bench_circuits.hpp"

namespace cim::eda {
namespace {

Aig xor_aig() {
  Aig aig;
  const auto a = aig.add_input();
  const auto b = aig.add_input();
  aig.mark_output(aig.lxor(a, b));
  return aig;
}

TEST(ImplyMapper, XorCompilesAndVerifies) {
  const auto aig = xor_aig();
  const auto prog = compile_imply(aig);
  EXPECT_GT(prog.delay(), 0u);
  EXPECT_GT(prog.num_cells, aig.num_inputs());
  EXPECT_TRUE(verify_imply(prog, aig));
}

TEST(ImplyMapper, ConstantOutputs) {
  Aig aig;
  (void)aig.add_input();
  aig.mark_output(aig.const0());
  aig.mark_output(aig.const1());
  const auto prog = compile_imply(aig);
  EXPECT_TRUE(verify_imply(prog, aig));
}

TEST(ImplyMapper, InputPassthroughAndComplement) {
  Aig aig;
  const auto a = aig.add_input();
  aig.mark_output(a);
  aig.mark_output(Aig::lnot(a));
  const auto prog = compile_imply(aig);
  EXPECT_TRUE(verify_imply(prog, aig));
}

class ImplySuite : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ImplySuite, BenchmarkCircuitVerifies) {
  const auto suite = standard_suite();
  const auto& bc = suite[GetParam()];
  if (bc.netlist.num_inputs() > 9) GTEST_SKIP() << "exhaustive check too large";
  const auto aig = Aig::from_netlist(bc.netlist);
  const auto prog = compile_imply(aig);
  EXPECT_TRUE(verify_imply(prog, aig)) << bc.name;
}

INSTANTIATE_TEST_SUITE_P(Circuits, ImplySuite,
                         ::testing::Range<std::size_t>(0, 12));

TEST(ImplyMapper, ReuseShrinksAreaKeepsFunction) {
  const auto nl = ripple_carry_adder(3);
  const auto aig = Aig::from_netlist(nl);
  const auto plain = compile_imply(aig, /*reuse=*/false);
  const auto reuse = compile_imply(aig, /*reuse=*/true);
  EXPECT_LE(reuse.num_cells, plain.num_cells);
  EXPECT_TRUE(verify_imply(reuse, aig));
  EXPECT_TRUE(verify_imply(plain, aig));
}

TEST(ImplyMapper, DelayGrowsWithCircuitSize) {
  const auto small = compile_imply(Aig::from_netlist(parity(3)));
  const auto large = compile_imply(Aig::from_netlist(parity(8)));
  EXPECT_GT(large.delay(), small.delay());
}

TEST(ImplyMapper, ProgramUsesOnlyFalseAndImply) {
  const auto prog = compile_imply(xor_aig());
  for (const auto& ins : prog.instrs) {
    EXPECT_TRUE(ins.kind == ImplyInstr::Kind::kFalse ||
                ins.kind == ImplyInstr::Kind::kImply);
    EXPECT_LT(ins.dest, prog.num_cells);
    if (ins.kind == ImplyInstr::Kind::kImply) {
      EXPECT_LT(ins.src, prog.num_cells);
    }
  }
}

TEST(ImplyMapper, NarrowCrossbarThrows) {
  const auto aig = xor_aig();
  const auto prog = compile_imply(aig);
  crossbar::CrossbarConfig cfg;
  cfg.rows = 1;
  cfg.cols = 2;  // far too narrow
  cfg.tech = device::Technology::kSttMram;
  crossbar::Crossbar xbar(cfg);
  EXPECT_THROW((void)execute_imply(xbar, prog, 0), std::invalid_argument);
}

}  // namespace
}  // namespace cim::eda
