#include "eda/mig.hpp"

#include <gtest/gtest.h>

#include "eda/bench_circuits.hpp"

namespace cim::eda {
namespace {

TEST(Mig, MajorityAxioms) {
  Mig mig;
  const auto a = mig.add_input();
  const auto b = mig.add_input();
  // M(x, x, y) = x
  EXPECT_EQ(mig.lmaj(a, a, b), a);
  // M(x, !x, y) = y
  EXPECT_EQ(mig.lmaj(a, Mig::lnot(a), b), b);
  EXPECT_EQ(mig.num_majs(), 0u);
}

TEST(Mig, AndOrViaConstants) {
  Mig mig;
  const auto a = mig.add_input();
  const auto b = mig.add_input();
  mig.mark_output(mig.land(a, b));
  mig.mark_output(mig.lor(a, b));
  const auto tts = mig.truth_tables();
  EXPECT_EQ(tts[0].to_binary_string(), "1000");
  EXPECT_EQ(tts[1].to_binary_string(), "1110");
}

TEST(Mig, SelfDualityCanonicalization) {
  Mig mig;
  const auto a = mig.add_input();
  const auto b = mig.add_input();
  const auto c = mig.add_input();
  const auto m1 = mig.lmaj(a, b, c);
  // M(!a, !b, !c) must hash to the complement of the same node.
  const auto m2 = mig.lmaj(Mig::lnot(a), Mig::lnot(b), Mig::lnot(c));
  EXPECT_EQ(m2, Mig::lnot(m1));
  EXPECT_EQ(mig.num_majs(), 1u);
}

TEST(Mig, XorTruth) {
  Mig mig;
  const auto a = mig.add_input();
  const auto b = mig.add_input();
  mig.mark_output(mig.lxor(a, b));
  EXPECT_EQ(mig.truth_tables()[0].to_binary_string(), "0110");
}

TEST(Mig, StructuralHashingShares) {
  Mig mig;
  const auto a = mig.add_input();
  const auto b = mig.add_input();
  const auto c = mig.add_input();
  const auto m1 = mig.lmaj(a, b, c);
  const auto m2 = mig.lmaj(c, a, b);  // permuted fanins
  EXPECT_EQ(m1, m2);
  EXPECT_EQ(mig.num_majs(), 1u);
}

TEST(Mig, FromAigPreservesFunctions) {
  for (const auto& bc : standard_suite()) {
    const auto aig = Aig::from_netlist(bc.netlist);
    const auto mig = Mig::from_aig(aig);
    EXPECT_TRUE(mig.truth_tables() == aig.truth_tables()) << bc.name;
  }
}

TEST(Mig, MajNodeIsNativeNotThree) {
  // MAJ in an MIG is one node; in an AIG it takes several ANDs.
  Mig mig;
  const auto a = mig.add_input();
  const auto b = mig.add_input();
  const auto c = mig.add_input();
  mig.mark_output(mig.lmaj(a, b, c));
  EXPECT_EQ(mig.num_majs(), 1u);

  Aig aig;
  const auto x = aig.add_input();
  const auto y = aig.add_input();
  const auto z = aig.add_input();
  aig.mark_output(aig.lmaj(x, y, z));
  EXPECT_GT(aig.num_ands(), 1u);
}

TEST(Mig, DepthAndLevels) {
  Mig mig;
  const auto a = mig.add_input();
  const auto b = mig.add_input();
  const auto c = mig.add_input();
  const auto m1 = mig.lmaj(a, b, c);
  const auto m2 = mig.lmaj(m1, a, b);
  mig.mark_output(m2);
  EXPECT_EQ(mig.depth(), 2u);
  const auto lv = mig.levels();
  EXPECT_EQ(lv[Mig::node_of(m1)], 1u);
  EXPECT_EQ(lv[Mig::node_of(m2)], 2u);
}

}  // namespace
}  // namespace cim::eda
