#include "eda/aig.hpp"

#include <gtest/gtest.h>

#include "eda/bench_circuits.hpp"

namespace cim::eda {
namespace {

TEST(Aig, TrivialSimplifications) {
  Aig aig;
  const auto a = aig.add_input();
  EXPECT_EQ(aig.land(a, aig.const0()), aig.const0());
  EXPECT_EQ(aig.land(a, aig.const1()), a);
  EXPECT_EQ(aig.land(a, a), a);
  EXPECT_EQ(aig.land(a, Aig::lnot(a)), aig.const0());
  EXPECT_EQ(aig.num_ands(), 0u);
}

TEST(Aig, StructuralHashingShares) {
  Aig aig;
  const auto a = aig.add_input();
  const auto b = aig.add_input();
  const auto g1 = aig.land(a, b);
  const auto g2 = aig.land(b, a);  // commuted
  EXPECT_EQ(g1, g2);
  EXPECT_EQ(aig.num_ands(), 1u);
}

TEST(Aig, XorTruth) {
  Aig aig;
  const auto a = aig.add_input();
  const auto b = aig.add_input();
  aig.mark_output(aig.lxor(a, b));
  EXPECT_EQ(aig.truth_tables()[0].to_binary_string(), "0110");
}

TEST(Aig, MuxTruth) {
  Aig aig;
  const auto s = aig.add_input();
  const auto t = aig.add_input();
  const auto e = aig.add_input();
  aig.mark_output(aig.lmux(s, t, e));
  const auto tt = aig.truth_tables()[0];
  for (std::uint64_t m = 0; m < 8; ++m) {
    const bool vs = m & 1, vt = (m >> 1) & 1, ve = (m >> 2) & 1;
    EXPECT_EQ(tt.get(m), vs ? vt : ve);
  }
}

TEST(Aig, MajTruth) {
  Aig aig;
  const auto a = aig.add_input();
  const auto b = aig.add_input();
  const auto c = aig.add_input();
  aig.mark_output(aig.lmaj(a, b, c));
  const auto tt = aig.truth_tables()[0];
  for (std::uint64_t m = 0; m < 8; ++m) {
    const int votes = int(m & 1) + int((m >> 1) & 1) + int((m >> 2) & 1);
    EXPECT_EQ(tt.get(m), votes >= 2);
  }
}

TEST(Aig, DepthOfChain) {
  Aig aig;
  auto acc = aig.add_input();
  for (int i = 0; i < 5; ++i) acc = aig.land(acc, aig.add_input());
  aig.mark_output(acc);
  EXPECT_EQ(aig.depth(), 5u);
}

class AigFromTruthTable : public ::testing::TestWithParam<std::string> {};

TEST_P(AigFromTruthTable, SynthesisRoundTrip) {
  const auto tt = TruthTable::from_binary_string(GetParam());
  const auto aig = Aig::from_truth_table(tt);
  EXPECT_TRUE(aig.truth_tables()[0] == tt);
}

INSTANTIATE_TEST_SUITE_P(
    Functions, AigFromTruthTable,
    ::testing::Values("0110", "1000", "1110", "0000", "1111", "10010110",
                      "0110100110010110", "1011000111010010"),
    [](const auto& info) { return "f" + info.param; });

TEST(Aig, FromNetlistEquivalence) {
  for (const auto& bc : standard_suite()) {
    const auto aig = Aig::from_netlist(bc.netlist);
    EXPECT_TRUE(aig.truth_tables() == bc.netlist.truth_tables()) << bc.name;
  }
}

TEST(Aig, ToNetlistEquivalence) {
  const auto tt = TruthTable::from_binary_string("0110100110010110");
  const auto aig = Aig::from_truth_table(tt);
  const auto nl = aig.to_netlist();
  EXPECT_TRUE(nl.truth_tables()[0] == tt);
}

TEST(Aig, SynthesisSkipsIrrelevantVariables) {
  // f = x2 of 4 vars: the AIG must not blow up on the other variables.
  TruthTable tt = TruthTable::var(2, 4);
  const auto aig = Aig::from_truth_table(tt);
  EXPECT_EQ(aig.num_ands(), 0u);  // pure projection needs no gates
  EXPECT_TRUE(aig.truth_tables()[0] == tt);
}

}  // namespace
}  // namespace cim::eda
