#include "eda/netlist.hpp"

#include <gtest/gtest.h>

namespace cim::eda {
namespace {

Netlist xor_gate() {
  Netlist nl;
  const auto a = nl.add_input("a");
  const auto b = nl.add_input("b");
  nl.mark_output(nl.add_gate(GateType::kXor, {a, b}));
  return nl;
}

TEST(Netlist, SimulateAllGateTypes) {
  Netlist nl;
  const auto a = nl.add_input();
  const auto b = nl.add_input();
  const auto c = nl.add_input();
  nl.mark_output(nl.add_gate(GateType::kNot, {a}));
  nl.mark_output(nl.add_gate(GateType::kAnd, {a, b}));
  nl.mark_output(nl.add_gate(GateType::kOr, {a, b}));
  nl.mark_output(nl.add_gate(GateType::kNand, {a, b}));
  nl.mark_output(nl.add_gate(GateType::kNor, {a, b}));
  nl.mark_output(nl.add_gate(GateType::kXor, {a, b}));
  nl.mark_output(nl.add_gate(GateType::kXnor, {a, b}));
  nl.mark_output(nl.add_gate(GateType::kMaj, {a, b, c}));

  for (std::uint64_t m = 0; m < 8; ++m) {
    const bool va = m & 1, vb = (m >> 1) & 1, vc = (m >> 2) & 1;
    const auto out = nl.simulate(m);
    EXPECT_EQ(out[0], !va);
    EXPECT_EQ(out[1], va && vb);
    EXPECT_EQ(out[2], va || vb);
    EXPECT_EQ(out[3], !(va && vb));
    EXPECT_EQ(out[4], !(va || vb));
    EXPECT_EQ(out[5], va != vb);
    EXPECT_EQ(out[6], va == vb);
    EXPECT_EQ(out[7], (int(va) + int(vb) + int(vc)) >= 2);
  }
}

TEST(Netlist, TruthTablesMatchSimulation) {
  const auto nl = xor_gate();
  const auto tts = nl.truth_tables();
  ASSERT_EQ(tts.size(), 1u);
  EXPECT_EQ(tts[0].to_binary_string(), "0110");
}

TEST(Netlist, DepthAndCounts) {
  Netlist nl;
  const auto a = nl.add_input();
  const auto b = nl.add_input();
  const auto g1 = nl.add_gate(GateType::kAnd, {a, b});
  const auto g2 = nl.add_gate(GateType::kNot, {g1});
  nl.mark_output(g2);
  EXPECT_EQ(nl.depth(), 2u);
  EXPECT_EQ(nl.gate_count(), 2u);
  EXPECT_EQ(nl.count(GateType::kAnd), 1u);
  EXPECT_EQ(nl.num_inputs(), 2u);
}

TEST(Netlist, FaninValidation) {
  Netlist nl;
  const auto a = nl.add_input();
  EXPECT_THROW(nl.add_gate(GateType::kNot, {a, a}), std::invalid_argument);
  EXPECT_THROW(nl.add_gate(GateType::kAnd, {a}), std::invalid_argument);
  EXPECT_THROW(nl.add_gate(GateType::kMaj, {a, a}), std::invalid_argument);
  EXPECT_THROW(nl.add_gate(GateType::kAnd, {a, 99}), std::invalid_argument);
  EXPECT_THROW(nl.add_gate(GateType::kInput, {}), std::invalid_argument);
  EXPECT_THROW(nl.mark_output(42), std::out_of_range);
}

TEST(Netlist, ConstantsPropagate) {
  Netlist nl;
  const auto a = nl.add_input();
  const auto one = nl.add_const(true);
  nl.mark_output(nl.add_gate(GateType::kAnd, {a, one}));
  EXPECT_EQ(nl.simulate(0)[0], false);
  EXPECT_EQ(nl.simulate(1)[0], true);
}

class NorOnlyEquivalence : public ::testing::TestWithParam<GateType> {};

TEST_P(NorOnlyEquivalence, TransformPreservesFunction) {
  Netlist nl;
  const auto a = nl.add_input();
  const auto b = nl.add_input();
  const auto c = nl.add_input();
  if (GetParam() == GateType::kNot) {
    nl.mark_output(nl.add_gate(GateType::kNot, {a}));
  } else if (GetParam() == GateType::kMaj) {
    nl.mark_output(nl.add_gate(GateType::kMaj, {a, b, c}));
  } else {
    nl.mark_output(nl.add_gate(GetParam(), {a, b}));
  }
  const auto nor = nl.to_nor_only();
  // Every gate in the result is a NOR (or input/const).
  for (std::size_t i = 0; i < nor.num_nodes(); ++i) {
    const auto t = nor.gate(i).type;
    EXPECT_TRUE(t == GateType::kInput || t == GateType::kConst0 ||
                t == GateType::kConst1 || t == GateType::kNor);
  }
  EXPECT_TRUE(nl.truth_tables() == nor.truth_tables());
}

INSTANTIATE_TEST_SUITE_P(
    Gates, NorOnlyEquivalence,
    ::testing::Values(GateType::kNot, GateType::kAnd, GateType::kOr,
                      GateType::kNand, GateType::kNor, GateType::kXor,
                      GateType::kXnor, GateType::kMaj),
    [](const auto& info) { return std::string(gate_type_name(info.param)); });

TEST(Netlist, NorOnlyPreservesOutputOrder) {
  Netlist nl;
  const auto a = nl.add_input();
  const auto b = nl.add_input();
  nl.mark_output(nl.add_gate(GateType::kAnd, {a, b}));
  nl.mark_output(nl.add_gate(GateType::kOr, {a, b}));
  const auto nor = nl.to_nor_only();
  EXPECT_EQ(nor.num_outputs(), 2u);
  const auto tts = nor.truth_tables();
  EXPECT_EQ(tts[0].to_binary_string(), "1000");
  EXPECT_EQ(tts[1].to_binary_string(), "1110");
}

}  // namespace
}  // namespace cim::eda
