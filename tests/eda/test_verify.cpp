/// \file test_verify.cpp
/// \brief Negative tests for the static micro-op program verifier: each test
///        hand-constructs one malformed program and asserts that exactly the
///        intended rule fires, exactly once, with nothing else flagged.
#include "eda/verify/verify.hpp"

#include <gtest/gtest.h>

#include "eda/aig.hpp"
#include "eda/bench_circuits.hpp"
#include "eda/flow.hpp"
#include "eda/imply_mapper.hpp"
#include "eda/magic_mapper.hpp"
#include "eda/majority_mapper.hpp"
#include "eda/mig.hpp"
#include "eda/netlist.hpp"
#include "eda/revamp_isa.hpp"

namespace cim::eda {
namespace {

using verify::Rule;
using verify::Severity;

RevampOperand rv_const(bool one) {
  RevampOperand op;
  op.src = one ? RevampOperand::Src::kConst1 : RevampOperand::Src::kConst0;
  return op;
}

RevampOperand rv_dmr(std::size_t row, std::size_t col) {
  RevampOperand op;
  op.src = RevampOperand::Src::kDmr;
  op.dmr_row = row;
  op.dmr_col = col;
  return op;
}

// --- use-before-init ---------------------------------------------------------

TEST(VerifyNegative, MagicNorReadsUninitializedCell) {
  MagicProgram prog;
  prog.num_inputs = 1;
  prog.num_cells = 3;
  prog.instrs.push_back({MagicInstr::Kind::kSet, 2, {}});
  // Cell 1 is neither an input nor ever written.
  prog.instrs.push_back({MagicInstr::Kind::kNor, 2, {1}});
  prog.output_cells = {2};

  const auto rep = verify::lint_magic(prog);
  EXPECT_FALSE(rep.clean());
  EXPECT_EQ(rep.errors(), 1u);
  EXPECT_EQ(rep.count(Rule::kUseBeforeInit), 1u);
  EXPECT_EQ(rep.diagnostics.front().instr, 1u);
  EXPECT_EQ(rep.diagnostics.front().cell, 1u);
}

TEST(VerifyNegative, ImplyReadsUninitializedCell) {
  ImplyProgram prog;
  prog.num_inputs = 1;
  prog.zero_cell = 1;
  prog.num_cells = 3;
  prog.instrs.push_back({ImplyInstr::Kind::kFalse, 1, 0});
  // IMPLY is read-modify-write on dest: cell 2 was never initialized.
  prog.instrs.push_back({ImplyInstr::Kind::kImply, 2, 1});
  prog.output_cells = {2};

  const auto rep = verify::lint_imply(prog);
  EXPECT_FALSE(rep.clean());
  EXPECT_EQ(rep.errors(), 1u);
  EXPECT_EQ(rep.count(Rule::kUseBeforeInit), 1u);
}

// --- write-after-write -------------------------------------------------------

TEST(VerifyNegative, MagicNorWithoutReSetIsWriteAfterWrite) {
  MagicProgram prog;
  prog.num_inputs = 1;
  prog.num_cells = 3;
  prog.instrs.push_back({MagicInstr::Kind::kSet, 2, {}});
  prog.instrs.push_back({MagicInstr::Kind::kNor, 2, {0}});
  // Second NOR into cell 2 without the mandatory re-SET.
  prog.instrs.push_back({MagicInstr::Kind::kNor, 2, {0}});
  prog.output_cells = {2};

  const auto rep = verify::lint_magic(prog);
  EXPECT_FALSE(rep.clean());
  EXPECT_EQ(rep.errors(), 1u);
  EXPECT_EQ(rep.count(Rule::kWriteAfterWrite), 1u);
  EXPECT_EQ(rep.diagnostics.front().instr, 2u);
}

// --- dead-cell-read (liveness, re-derived from the source netlist) -----------

TEST(VerifyNegative, MagicReadOfRecycledCellIsDeadCellRead) {
  // nor chain: g2 = NOR(a, b); g3 = NOR(g2); g4 = NOR(g3); output g4.
  Netlist nl;
  const auto a = nl.add_input();
  const auto b = nl.add_input();
  const auto g2 = nl.add_gate(GateType::kNor, {a, b});
  const auto g3 = nl.add_gate(GateType::kNor, {g2});
  const auto g4 = nl.add_gate(GateType::kNor, {g3});
  nl.mark_output(g4);

  MagicProgram prog;
  prog.num_inputs = 2;
  prog.num_cells = 5;
  prog.instrs.push_back({MagicInstr::Kind::kSet, 2, {}, g2});
  prog.instrs.push_back({MagicInstr::Kind::kNor, 2, {0, 1}, g2});
  prog.instrs.push_back({MagicInstr::Kind::kSet, 3, {}, g3});
  prog.instrs.push_back({MagicInstr::Kind::kNor, 3, {2}, g3});
  prog.instrs.push_back({MagicInstr::Kind::kSet, 4, {}, g4});
  // Bug: g4 reads cell 2 (g2's cell, all fanouts consumed) instead of
  // cell 3 — the classic premature-recycle victim.
  prog.instrs.push_back({MagicInstr::Kind::kNor, 4, {2}, g4});
  prog.output_cells = {4};

  const auto rep = verify::lint_magic(prog, &nl);
  EXPECT_FALSE(rep.clean());
  EXPECT_EQ(rep.errors(), 1u);
  EXPECT_EQ(rep.count(Rule::kDeadCellRead), 1u);
  EXPECT_EQ(rep.diagnostics.front().instr, 5u);
  EXPECT_EQ(rep.diagnostics.front().cell, 2u);
}

TEST(VerifyNegative, MagicPrematureRecycleOfLiveCell) {
  // g2 = NOR(a); g3 = NOR(a); output NOR(g2, g3). Recycling g2's cell for
  // g3's SET while g2 still has a live fanout must be flagged.
  Netlist nl;
  const auto a = nl.add_input();
  const auto g1 = nl.add_gate(GateType::kNor, {a});
  const auto g2 = nl.add_gate(GateType::kNor, {a});
  const auto g3 = nl.add_gate(GateType::kNor, {g1, g2});
  nl.mark_output(g3);

  MagicProgram prog;
  prog.num_inputs = 1;
  prog.num_cells = 3;
  prog.instrs.push_back({MagicInstr::Kind::kSet, 1, {}, g1});
  prog.instrs.push_back({MagicInstr::Kind::kNor, 1, {0}, g1});
  // Bug: reuses cell 1 for g2 although g1 is still live (g3 reads it).
  prog.instrs.push_back({MagicInstr::Kind::kSet, 1, {}, g2});
  prog.instrs.push_back({MagicInstr::Kind::kNor, 1, {0}, g2});
  prog.instrs.push_back({MagicInstr::Kind::kSet, 2, {}, g3});
  prog.instrs.push_back({MagicInstr::Kind::kNor, 2, {1, 1}, g3});
  prog.output_cells = {2};

  const auto rep = verify::lint_magic(prog, &nl);
  EXPECT_FALSE(rep.clean());
  EXPECT_GE(rep.count(Rule::kDeadCellRead), 1u);
  // The premature recycle itself is the first finding, at the rogue SET.
  EXPECT_EQ(rep.diagnostics.front().rule, Rule::kDeadCellRead);
  EXPECT_EQ(rep.diagnostics.front().instr, 2u);
}

// --- oob-cell ----------------------------------------------------------------

TEST(VerifyNegative, ImplyWriteOutsideFootprintIsOob) {
  ImplyProgram prog;
  prog.num_inputs = 1;
  prog.zero_cell = 1;
  prog.num_cells = 3;
  prog.instrs.push_back({ImplyInstr::Kind::kFalse, 5, 0});  // cell 5 of 3

  const auto rep = verify::lint_imply(prog);
  EXPECT_FALSE(rep.clean());
  EXPECT_EQ(rep.errors(), 1u);
  EXPECT_EQ(rep.count(Rule::kOobCell), 1u);
  EXPECT_EQ(rep.diagnostics.front().cell, 5u);
}

TEST(VerifyNegative, GeometryTooSmallIsOob) {
  const Aig aig = Aig::from_netlist(ripple_carry_adder(2));
  const auto prog = compile_imply(aig, true);
  verify::VerifyOptions opts;
  opts.geometry = crossbar::Geometry{1, 2};  // 2 columns cannot hold it
  const auto rep = verify::lint_imply(prog, &aig, opts);
  EXPECT_FALSE(rep.clean());
  EXPECT_EQ(rep.count(Rule::kOobCell), 1u);
}

// --- output-unreachable ------------------------------------------------------

TEST(VerifyNegative, OutputNeverWrittenIsUnreachable) {
  ImplyProgram prog;
  prog.num_inputs = 1;
  prog.zero_cell = 1;
  prog.num_cells = 3;
  prog.instrs.push_back({ImplyInstr::Kind::kFalse, 1, 0});
  prog.output_cells = {2};  // cell 2 is never defined

  const auto rep = verify::lint_imply(prog);
  EXPECT_FALSE(rep.clean());
  EXPECT_EQ(rep.errors(), 1u);
  EXPECT_EQ(rep.count(Rule::kOutputUnreachable), 1u);
}

// --- endurance-budget (warning severity) -------------------------------------

TEST(VerifyNegative, EnduranceBudgetExceededIsWarningOnly) {
  MagicProgram prog;
  prog.num_inputs = 1;
  prog.num_cells = 3;
  prog.instrs.push_back({MagicInstr::Kind::kSet, 2, {}});
  prog.instrs.push_back({MagicInstr::Kind::kNor, 2, {0}});  // 2nd write
  prog.output_cells = {2};

  verify::VerifyOptions opts;
  opts.endurance_budget = 1;
  const auto rep = verify::lint_magic(prog, nullptr, opts);
  EXPECT_TRUE(rep.clean());  // warnings do not make a program dirty
  EXPECT_EQ(rep.errors(), 0u);
  EXPECT_EQ(rep.warnings(), 1u);
  EXPECT_EQ(rep.count(Rule::kEnduranceBudget), 1u);
  EXPECT_EQ(rep.max_writes_per_cell, 2u);
}

// --- dmr-not-latched ---------------------------------------------------------

TEST(VerifyNegative, RevampUnlatchedDmrOperand) {
  RevampProgram prog;
  prog.wordlines = 1;
  prog.bitlines = 1;
  prog.num_inputs = 0;

  RevampInstruction reset;
  reset.kind = RevampInstruction::Kind::kApply;
  reset.wordline = 0;
  reset.wl = rv_const(false);
  reset.columns = {rv_const(true)};
  prog.instrs.push_back(reset);

  RevampInstruction apply;
  apply.kind = RevampInstruction::Kind::kApply;
  apply.wordline = 0;
  apply.wl = rv_dmr(0, 0);  // row 0 was never READ into the DMR
  apply.columns = {rv_const(false)};
  prog.instrs.push_back(apply);

  const auto rep = verify::lint_revamp(prog);
  EXPECT_FALSE(rep.clean());
  EXPECT_EQ(rep.errors(), 1u);
  EXPECT_EQ(rep.count(Rule::kDmrNotLatched), 1u);
  EXPECT_EQ(rep.diagnostics.front().instr, 1u);
}

TEST(VerifyNegative, RevampStaleLatchIsFlagged) {
  RevampProgram prog;
  prog.wordlines = 1;
  prog.bitlines = 1;
  prog.num_inputs = 0;

  RevampInstruction reset;
  reset.kind = RevampInstruction::Kind::kApply;
  reset.wordline = 0;
  reset.wl = rv_const(false);
  reset.columns = {rv_const(true)};
  prog.instrs.push_back(reset);

  RevampInstruction read;
  read.kind = RevampInstruction::Kind::kRead;
  read.wordline = 0;
  prog.instrs.push_back(read);

  // The row is rewritten after the READ, so the output tap below reads a
  // stale latch.
  RevampInstruction set;
  set.kind = RevampInstruction::Kind::kApply;
  set.wordline = 0;
  set.wl = rv_const(true);
  set.columns = {rv_const(false)};
  prog.instrs.push_back(set);

  prog.outputs = {rv_dmr(0, 0)};

  const auto rep = verify::lint_revamp(prog);
  EXPECT_FALSE(rep.clean());
  EXPECT_EQ(rep.errors(), 1u);
  EXPECT_EQ(rep.count(Rule::kDmrNotLatched), 1u);
}

TEST(VerifyNegative, RevampUninitializedMajorityState) {
  RevampProgram prog;
  prog.wordlines = 1;
  prog.bitlines = 1;
  prog.num_inputs = 1;

  // Dynamic apply with no prior RESET idiom: NS = MAJ(S, PI, 1) depends on
  // the power-on state S.
  RevampInstruction apply;
  apply.kind = RevampInstruction::Kind::kApply;
  apply.wordline = 0;
  apply.wl.src = RevampOperand::Src::kInput;
  apply.wl.input_index = 0;
  apply.columns = {rv_const(false)};
  prog.instrs.push_back(apply);

  const auto rep = verify::lint_revamp(prog);
  EXPECT_FALSE(rep.clean());
  EXPECT_EQ(rep.errors(), 1u);
  EXPECT_EQ(rep.count(Rule::kUseBeforeInit), 1u);
}

// --- positive control: clean programs stay clean -----------------------------

TEST(VerifyPositive, CompiledProgramsAreClean) {
  const auto nl = ripple_carry_adder(2);
  const Aig aig = Aig::from_netlist(nl);
  for (const bool reuse : {false, true}) {
    const auto iprog = compile_imply(aig, reuse);
    const auto irep = verify::lint_imply(iprog, &aig);
    EXPECT_TRUE(irep.clean()) << (irep.diagnostics.empty()
                                      ? "?"
                                      : irep.diagnostics.front().to_string());
    EXPECT_TRUE(irep.diagnostics.empty());

    const auto nor = aig.to_netlist().to_nor_only();
    const auto mprog = compile_magic(nor, reuse);
    const auto mrep = verify::lint_magic(mprog, &nor);
    EXPECT_TRUE(mrep.clean()) << (mrep.diagnostics.empty()
                                      ? "?"
                                      : mrep.diagnostics.front().to_string());
    EXPECT_TRUE(mrep.diagnostics.empty());
  }
  const Mig mig = Mig::from_aig(aig);
  const auto rrep = verify::lint_revamp(assemble_revamp(mig,
                                                        schedule_revamp(mig)));
  EXPECT_TRUE(rrep.clean());
  EXPECT_TRUE(rrep.diagnostics.empty());
}

TEST(VerifyPositive, FlowReportsCarryLintVerdict) {
  const auto nl = majority_n(5);
  const auto rep = run_flow("maj5", nl, LogicFamily::kMagic,
                            {.reuse_cells = true, .verify = true, .lint = true});
  EXPECT_TRUE(rep.lint_clean);
  EXPECT_EQ(rep.lint_errors, 0u);
  EXPECT_TRUE(rep.verified);
  EXPECT_GT(rep.max_writes_per_cell, 0u);
}

TEST(VerifyPositive, LintTableRendersOneRowPerEntry) {
  const auto nl = parity(3);
  const Aig aig = Aig::from_netlist(nl);
  const auto prog = compile_imply(aig, true);
  std::vector<verify::LintEntry> entries;
  entries.push_back({"parity3", "IMPLY", verify::lint_imply(prog, &aig)});
  const auto t = verify::lint_table(entries);
  EXPECT_EQ(t.rows(), 1u);
}

// --- diagnostics plumbing ----------------------------------------------------

TEST(VerifyDiagnostics, RuleIdsAreStable) {
  EXPECT_EQ(verify::rule_id(Rule::kUseBeforeInit), "use-before-init");
  EXPECT_EQ(verify::rule_id(Rule::kWriteAfterWrite), "write-after-write");
  EXPECT_EQ(verify::rule_id(Rule::kDeadCellRead), "dead-cell-read");
  EXPECT_EQ(verify::rule_id(Rule::kOobCell), "oob-cell");
  EXPECT_EQ(verify::rule_id(Rule::kEnduranceBudget), "endurance-budget");
  EXPECT_EQ(verify::rule_id(Rule::kOutputUnreachable), "output-unreachable");
  EXPECT_EQ(verify::rule_id(Rule::kDmrNotLatched), "dmr-not-latched");
}

TEST(VerifyDiagnostics, ToStringCarriesRuleAndLocation) {
  verify::Diagnostic d{Severity::kError, Rule::kOobCell, 4, 7, "boom"};
  const auto s = d.to_string();
  EXPECT_NE(s.find("oob-cell"), std::string::npos);
  EXPECT_NE(s.find("4"), std::string::npos);
  EXPECT_NE(s.find("7"), std::string::npos);
  EXPECT_NE(s.find("boom"), std::string::npos);
}

// --- netlist construction guard (regression) ---------------------------------

TEST(NetlistGuards, AddGateRejectsForwardReference) {
  Netlist nl;
  const auto a = nl.add_input();
  EXPECT_THROW((void)nl.add_gate(GateType::kNor, {a, 5}),
               std::invalid_argument);
  try {
    (void)nl.add_gate(GateType::kNor, {a, 5});
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("5"), std::string::npos);
    EXPECT_NE(what.find("topological"), std::string::npos);
  }
}

}  // namespace
}  // namespace cim::eda
