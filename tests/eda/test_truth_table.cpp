#include "eda/truth_table.hpp"

#include <gtest/gtest.h>

namespace cim::eda {
namespace {

TEST(TruthTable, ConstantsAndVars) {
  const auto zero = TruthTable::constant(false, 3);
  const auto one = TruthTable::constant(true, 3);
  EXPECT_EQ(zero.count_ones(), 0u);
  EXPECT_EQ(one.count_ones(), 8u);
  const auto x0 = TruthTable::var(0, 3);
  EXPECT_EQ(x0.count_ones(), 4u);
  for (std::uint64_t m = 0; m < 8; ++m) EXPECT_EQ(x0.get(m), (m & 1) != 0);
}

TEST(TruthTable, HighVariablesBeyondWordBoundary) {
  const auto x7 = TruthTable::var(7, 8);  // 256 minterms, 4 words
  for (std::uint64_t m = 0; m < 256; m += 17)
    EXPECT_EQ(x7.get(m), ((m >> 7) & 1) != 0) << m;
}

TEST(TruthTable, BooleanOperators) {
  const auto a = TruthTable::var(0, 2);
  const auto b = TruthTable::var(1, 2);
  EXPECT_EQ((a & b).to_binary_string(), "1000");
  EXPECT_EQ((a | b).to_binary_string(), "1110");
  EXPECT_EQ((a ^ b).to_binary_string(), "0110");
  EXPECT_EQ((~a).to_binary_string(), "0101");
}

TEST(TruthTable, MajOperator) {
  const auto a = TruthTable::var(0, 3);
  const auto b = TruthTable::var(1, 3);
  const auto c = TruthTable::var(2, 3);
  const auto m = TruthTable::maj(a, b, c);
  for (std::uint64_t i = 0; i < 8; ++i) {
    const int votes = int(i & 1) + int((i >> 1) & 1) + int((i >> 2) & 1);
    EXPECT_EQ(m.get(i), votes >= 2);
  }
}

TEST(TruthTable, BinaryStringRoundTrip) {
  const std::string s = "01101001";
  const auto tt = TruthTable::from_binary_string(s);
  EXPECT_EQ(tt.vars(), 3);
  EXPECT_EQ(tt.to_binary_string(), s);
}

TEST(TruthTable, FromBinaryStringValidation) {
  EXPECT_THROW((void)TruthTable::from_binary_string(""), std::invalid_argument);
  EXPECT_THROW((void)TruthTable::from_binary_string("011"), std::invalid_argument);
  EXPECT_THROW((void)TruthTable::from_binary_string("0a"), std::invalid_argument);
}

TEST(TruthTable, Cofactors) {
  // f = x0 & x1 : f|x0=1 = x1, f|x0=0 = 0.
  const auto f = TruthTable::var(0, 2) & TruthTable::var(1, 2);
  EXPECT_TRUE(f.cofactor(0, true) == TruthTable::var(1, 2));
  EXPECT_TRUE(f.cofactor(0, false) == TruthTable::constant(false, 2));
}

TEST(TruthTable, CofactorIsIndependentOfVariable) {
  const auto f = TruthTable::var(0, 3) ^ TruthTable::var(2, 3);
  const auto g = f.cofactor(0, true);
  EXPECT_FALSE(g.depends_on(0));
  EXPECT_TRUE(g.depends_on(2));
}

TEST(TruthTable, DependsOn) {
  const auto f = TruthTable::var(1, 4);
  EXPECT_FALSE(f.depends_on(0));
  EXPECT_TRUE(f.depends_on(1));
  EXPECT_FALSE(f.depends_on(3));
}

TEST(TruthTable, ShannonExpansionIdentity) {
  // f == (x & f|x=1) | (!x & f|x=0) for every variable.
  const auto f = (TruthTable::var(0, 4) & TruthTable::var(1, 4)) ^
                 TruthTable::var(3, 4);
  for (int v = 0; v < 4; ++v) {
    const auto x = TruthTable::var(v, 4);
    const auto rebuilt =
        (x & f.cofactor(v, true)) | (~x & f.cofactor(v, false));
    EXPECT_TRUE(rebuilt == f) << "var " << v;
  }
}

TEST(TruthTable, IsConstant) {
  EXPECT_TRUE(TruthTable::constant(false, 4).is_constant());
  EXPECT_TRUE(TruthTable::constant(true, 4).is_constant());
  EXPECT_FALSE(TruthTable::var(2, 4).is_constant());
}

TEST(TruthTable, MismatchedVarsThrow) {
  const auto a = TruthTable::var(0, 2);
  const auto b = TruthTable::var(0, 3);
  EXPECT_THROW((void)(a & b), std::invalid_argument);
}

TEST(TruthTable, ZeroVarTables) {
  auto t = TruthTable::constant(true, 0);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_TRUE(t.get(0));
}

TEST(TruthTable, BoundsChecked) {
  TruthTable t(2);
  EXPECT_THROW((void)t.get(4), std::out_of_range);
  EXPECT_THROW(t.set(4, true), std::out_of_range);
  EXPECT_THROW((void)TruthTable::var(2, 2), std::invalid_argument);
  EXPECT_THROW(TruthTable(17), std::invalid_argument);
}

}  // namespace
}  // namespace cim::eda
