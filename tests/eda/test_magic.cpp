#include "eda/magic_mapper.hpp"

#include <gtest/gtest.h>

#include "eda/aig.hpp"
#include "eda/bench_circuits.hpp"

namespace cim::eda {
namespace {

Netlist nor_of(const Netlist& nl) {
  return Aig::from_netlist(nl).to_netlist().to_nor_only();
}

TEST(MagicMapper, SimpleNorCompiles) {
  Netlist nl;
  const auto a = nl.add_input();
  const auto b = nl.add_input();
  nl.mark_output(nl.add_gate(GateType::kNor, {a, b}));
  const auto prog = compile_magic(nl);
  EXPECT_EQ(prog.nor_count(), 1u);
  EXPECT_EQ(prog.delay(), 2u);  // SET + NOR
  EXPECT_TRUE(verify_magic(prog, nl));
}

TEST(MagicMapper, RejectsNonNorNetlist) {
  Netlist nl;
  const auto a = nl.add_input();
  const auto b = nl.add_input();
  nl.mark_output(nl.add_gate(GateType::kAnd, {a, b}));
  EXPECT_THROW((void)compile_magic(nl), std::invalid_argument);
}

class MagicSuite : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MagicSuite, BenchmarkCircuitVerifies) {
  const auto suite = standard_suite();
  const auto& bc = suite[GetParam()];
  if (bc.netlist.num_inputs() > 9) GTEST_SKIP() << "exhaustive check too large";
  const auto nor = nor_of(bc.netlist);
  const auto prog = compile_magic(nor);
  EXPECT_TRUE(verify_magic(prog, nor)) << bc.name;
}

INSTANTIATE_TEST_SUITE_P(Circuits, MagicSuite,
                         ::testing::Range<std::size_t>(0, 12));

TEST(MagicMapper, ReuseShrinksAreaSameDelay) {
  const auto nor = nor_of(ripple_carry_adder(4));
  const auto plain = compile_magic(nor, /*reuse=*/false);
  const auto reuse = compile_magic(nor, /*reuse=*/true);
  EXPECT_LT(reuse.num_cells, plain.num_cells);
  EXPECT_EQ(reuse.delay(), plain.delay());
  EXPECT_TRUE(verify_magic(reuse, nor));
}

TEST(MagicMapper, DelayIsTwoPerGate) {
  const auto nor = nor_of(parity(4));
  const auto prog = compile_magic(nor);
  EXPECT_EQ(prog.delay(), 2u * prog.nor_count());
}

TEST(MagicMapper, ConstantOutputsResolvedStatically) {
  Netlist nl;
  const auto a = nl.add_input();
  const auto one = nl.add_const(true);
  // NOR(a, 1) == 0 regardless of a.
  nl.mark_output(nl.add_gate(GateType::kNor, {a, one}));
  const auto prog = compile_magic(nl);
  EXPECT_EQ(prog.nor_count(), 0u);  // folded away
  EXPECT_TRUE(verify_magic(prog, nl));
}

TEST(MagicMapper, ConstZeroFaninsDropped) {
  Netlist nl;
  const auto a = nl.add_input();
  const auto zero = nl.add_const(false);
  nl.mark_output(nl.add_gate(GateType::kNor, {a, zero}));  // == NOT a
  const auto prog = compile_magic(nl);
  EXPECT_EQ(prog.nor_count(), 1u);
  EXPECT_TRUE(verify_magic(prog, nl));
}

TEST(MagicMapper, AreaDelayTradeoffMeasured) {
  // Area-constrained mapping (CONTRA-flavoured) gives a strictly better
  // area-delay product here since delay is unchanged.
  const auto nor = nor_of(array_multiplier(3));
  const auto plain = compile_magic(nor, false);
  const auto reuse = compile_magic(nor, true);
  const double adp_plain =
      static_cast<double>(plain.num_cells) * static_cast<double>(plain.delay());
  const double adp_reuse =
      static_cast<double>(reuse.num_cells) * static_cast<double>(reuse.delay());
  EXPECT_LT(adp_reuse, adp_plain);
}

}  // namespace
}  // namespace cim::eda
