/// Fixpoint dataflow engine (eda/verify/dataflow.hpp): lattice join laws,
/// the straight-line driver, and the general worklist engine on DAGs and
/// cyclic graphs — the substrate the per-family linters run on.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "eda/verify/dataflow.hpp"

namespace cim::eda::verify {
namespace {

TEST(CellStateJoin, EqualStatesJoinToThemselves) {
  for (const auto s : {CellState::kUnknown, CellState::kSet, CellState::kReset,
                       CellState::kDriven, CellState::kDead})
    EXPECT_EQ(join_cell_state(s, s), s);
}

TEST(CellStateJoin, UnknownAbsorbsEverything) {
  for (const auto s : {CellState::kSet, CellState::kReset, CellState::kDriven,
                       CellState::kDead}) {
    EXPECT_EQ(join_cell_state(CellState::kUnknown, s), CellState::kUnknown);
    EXPECT_EQ(join_cell_state(s, CellState::kUnknown), CellState::kUnknown);
  }
}

TEST(CellStateJoin, DeadAbsorbsReadableStates) {
  for (const auto s :
       {CellState::kSet, CellState::kReset, CellState::kDriven}) {
    EXPECT_EQ(join_cell_state(CellState::kDead, s), CellState::kDead);
    EXPECT_EQ(join_cell_state(s, CellState::kDead), CellState::kDead);
  }
}

TEST(CellStateJoin, MixedReadableStatesJoinToDriven) {
  EXPECT_EQ(join_cell_state(CellState::kSet, CellState::kReset),
            CellState::kDriven);
  EXPECT_EQ(join_cell_state(CellState::kSet, CellState::kDriven),
            CellState::kDriven);
  EXPECT_EQ(join_cell_state(CellState::kReset, CellState::kDriven),
            CellState::kDriven);
}

TEST(CellStateJoin, JoinIsCommutative) {
  const CellState all[] = {CellState::kUnknown, CellState::kSet,
                           CellState::kReset, CellState::kDriven,
                           CellState::kDead};
  for (const auto a : all)
    for (const auto b : all)
      EXPECT_EQ(join_cell_state(a, b), join_cell_state(b, a));
}

TEST(CellJoin, WriteCountersTakeTheMaxAndDisagreeingNodesDrop) {
  CellInfo a;
  a.state = CellState::kDriven;
  a.node = 3;
  a.writes = 2;
  CellInfo b;
  b.state = CellState::kDriven;
  b.node = 5;
  b.writes = 7;
  EXPECT_TRUE(join_cell(a, b));
  EXPECT_EQ(a.writes, 7u);       // upper bound over either path
  EXPECT_EQ(a.node, kNoNode);    // resident node kept only on agreement
  // Joining an identical state is a no-op.
  CellInfo c = a;
  EXPECT_FALSE(join_cell(a, c));
}

TEST(StraightLine, VisitsEveryInstructionInOrderInPlace) {
  std::vector<std::size_t> order;
  std::size_t acc = 0;
  run_straight_line(5, acc, [&](std::size_t& s, std::size_t i) {
    order.push_back(i);
    s += i;
  });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
  EXPECT_EQ(acc, 0u + 1 + 2 + 3 + 4);
}

// Integer max-lattice join for the scalar-state engine tests.
bool join_max(std::size_t& into, const std::size_t& other) {
  if (other > into) {
    into = other;
    return true;
  }
  return false;
}

TEST(Fixpoint, ForwardDagFiresEveryTransferExactlyOnce) {
  // 0 -> 1 -> 3, 0 -> 2 -> 3 (diamond). Transfer adds the node id; the join
  // takes the max, so node 3 sees max(in1, in2) + 3.
  const std::vector<std::vector<std::size_t>> succs{{1, 2}, {3}, {3}, {}};
  const auto res = run_fixpoint<std::size_t>(
      4, succs, 0,
      [](const std::size_t& in, std::size_t n) { return in + n; }, join_max);
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.transfers, 4u);  // index order: each node exactly once
  EXPECT_EQ(res.out[0], 0u);
  EXPECT_EQ(res.out[1], 1u);
  EXPECT_EQ(res.out[2], 2u);
  EXPECT_EQ(res.in[3], 2u);   // join of out[1]=1 and out[2]=2
  EXPECT_EQ(res.out[3], 5u);
}

TEST(Fixpoint, CycleIteratesToConvergence) {
  // 0 -> 1 <-> 2 with a saturating transfer: state climbs to a cap, then
  // stabilizes — the loop must terminate with converged = true.
  const std::vector<std::vector<std::size_t>> succs{{1}, {2}, {1}};
  constexpr std::size_t kCap = 10;
  const auto res = run_fixpoint<std::size_t>(
      3, succs, 0,
      [](const std::size_t& in, std::size_t) {
        return in < kCap ? in + 1 : in;
      },
      join_max);
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.out[1], kCap);
  EXPECT_EQ(res.out[2], kCap);
  EXPECT_GT(res.transfers, 3u);  // the cycle re-fired its members
}

TEST(Fixpoint, DivergenceCapReportsNonConvergence) {
  // 0 <-> 1 with an ever-growing transfer never stabilizes; the cap must
  // stop it and report converged = false.
  const std::vector<std::vector<std::size_t>> succs{{1}, {0}};
  const auto res = run_fixpoint<std::size_t>(
      2, succs, 0,
      [](const std::size_t& in, std::size_t) { return in + 1; }, join_max,
      /*max_transfers=*/16);
  EXPECT_FALSE(res.converged);
  EXPECT_EQ(res.transfers, 16u);
}

TEST(Fixpoint, EmptyGraphConvergesTrivially) {
  const auto res = run_fixpoint<std::size_t>(
      0, {}, 0, [](const std::size_t& in, std::size_t) { return in; },
      join_max);
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.transfers, 0u);
}

TEST(Fixpoint, CellTableStateJoinsAtMergePoints) {
  // Two branches drive cell 0 to different states; the merge node must see
  // the lattice join (Set vs Reset -> Driven), not either branch's value.
  const std::vector<std::vector<std::size_t>> succs{{1, 2}, {3}, {3}, {}};
  CellTable entry(1);
  const auto res = run_fixpoint<CellTable>(
      4, succs, entry,
      [](const CellTable& in, std::size_t n) {
        CellTable out = in;
        if (n == 1) out[0].state = CellState::kSet;
        if (n == 2) out[0].state = CellState::kReset;
        return out;
      },
      [](CellTable& into, const CellTable& other) {
        return join_cells(into, other);
      });
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.in[3][0].state, CellState::kDriven);
}

}  // namespace
}  // namespace cim::eda::verify
