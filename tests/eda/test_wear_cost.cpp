/// Static wear & cost certification (eda/verify/wear_cost.hpp): the cost
/// estimate must bracket and predict what the executors actually charge
/// through the crossbar, the wear certificate must gate on the device
/// endurance, and the static wear heatmap must export valid
/// cim-health-heatmap-v1 JSON.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "crossbar/crossbar.hpp"
#include "device/technology.hpp"
#include "eda/aig.hpp"
#include "eda/bench_circuits.hpp"
#include "eda/imply_mapper.hpp"
#include "eda/magic_mapper.hpp"
#include "eda/majority_mapper.hpp"
#include "eda/mig.hpp"
#include "eda/netlist.hpp"
#include "eda/revamp_isa.hpp"
#include "eda/verify/access.hpp"
#include "eda/verify/wear_cost.hpp"

namespace cim::eda::verify {
namespace {

const device::TechnologyParams kTech =
    device::technology_params(device::Technology::kSttMram);

crossbar::CrossbarConfig exec_config(std::size_t rows, std::size_t cols,
                                     std::uint64_t seed) {
  crossbar::CrossbarConfig cfg;
  cfg.rows = rows;
  cfg.cols = cols;
  cfg.tech = device::Technology::kSttMram;
  cfg.levels = 2;
  cfg.model_ir_drop = false;
  cfg.seed = seed;
  return cfg;
}

/// Measured time/energy of all 2^n executions plus per-run bracket checks.
struct Measured {
  double mean_energy_pj = 0.0;
  double time_ns = 0.0;  ///< identical across runs (data-blind schedules)
};

template <typename ExecFn>
Measured measure(std::size_t rows, std::size_t cols, std::size_t num_inputs,
                 const CostEstimate& est, ExecFn&& exec) {
  Measured m;
  const std::uint64_t n = 1ULL << num_inputs;
  double sum_e = 0.0;
  for (std::uint64_t a = 0; a < n; ++a) {
    crossbar::Crossbar xbar(exec_config(rows, cols, 1000 + a));
    exec(xbar, a);
    const double dt = xbar.stats().time_ns;
    const double de = xbar.stats().energy_pj;
    // Time is data-blind: every run must land exactly on the estimate.
    EXPECT_NEAR(dt, est.time_ns, 1e-9 * est.time_ns + 1e-12);
    // The energy bracket is computed at nominal conductances; stochastic
    // device variation wobbles the read term a few percent at most.
    EXPECT_GE(de, est.energy_pj_min * 0.95 - 1e-9);
    EXPECT_LE(de, est.energy_pj_max * 1.05 + 1e-9);
    sum_e += de;
    m.time_ns = dt;
  }
  m.mean_energy_pj = sum_e / static_cast<double>(n);
  return m;
}

TEST(CostEstimate, ImplyMeasuredEnergyWithin15PercentOfExpectation) {
  const auto nl = ripple_carry_adder(2);
  const auto aig = Aig::from_netlist(nl);
  const auto prog = compile_imply(aig, true);
  const auto est = estimate_cost(prog, kTech);
  ASSERT_GT(est.time_ns, 0.0);
  ASSERT_TRUE(est.exact_expectation);
  ASSERT_LE(est.energy_pj_min, est.energy_pj_exp);
  ASSERT_LE(est.energy_pj_exp, est.energy_pj_max);
  const auto m = measure(1, prog.num_cells, prog.num_inputs, est,
                         [&](crossbar::Crossbar& x, std::uint64_t a) {
                           execute_imply(x, prog, a);
                         });
  EXPECT_NEAR(m.mean_energy_pj, est.energy_pj_exp,
              0.15 * est.energy_pj_exp);
}

TEST(CostEstimate, MagicMeasuredEnergyWithin15PercentOfExpectation) {
  const auto nl = ripple_carry_adder(2);
  const auto nor = Aig::from_netlist(nl).to_netlist().to_nor_only();
  const auto prog = compile_magic(nor, true);
  const auto est = estimate_cost(prog, kTech);
  ASSERT_TRUE(est.exact_expectation);
  const auto m = measure(1, prog.num_cells, prog.num_inputs, est,
                         [&](crossbar::Crossbar& x, std::uint64_t a) {
                           execute_magic(x, prog, a);
                         });
  EXPECT_NEAR(m.mean_energy_pj, est.energy_pj_exp,
              0.15 * est.energy_pj_exp);
}

TEST(CostEstimate, RevampMeasuredEnergyWithin15PercentOfExpectation) {
  const auto nl = ripple_carry_adder(2);
  const auto mig = Mig::from_aig(Aig::from_netlist(nl));
  const auto prog = assemble_revamp(mig, schedule_revamp(mig));
  const auto est = estimate_cost(prog, kTech);
  ASSERT_TRUE(est.exact_expectation);
  const auto m =
      measure(prog.wordlines, prog.bitlines, prog.num_inputs, est,
              [&](crossbar::Crossbar& x, std::uint64_t a) {
                execute_revamp_program(x, prog, a);
              });
  EXPECT_NEAR(m.mean_energy_pj, est.energy_pj_exp,
              0.15 * est.energy_pj_exp);
}

TEST(CostEstimate, TimeFollowsTheChargeModelExactly) {
  // One launch write, one FALSE, one IMPLY, one sensed output read:
  // 3 pulse windows + 1 read slot.
  ImplyProgram prog;
  prog.num_inputs = 1;
  prog.num_cells = 2;
  prog.zero_cell = 1;
  prog.instrs.push_back({ImplyInstr::Kind::kFalse, 1, 0, SIZE_MAX});
  prog.instrs.push_back({ImplyInstr::Kind::kImply, 1, 0, SIZE_MAX});
  prog.output_cells = {1};
  const auto est = estimate_cost(prog, kTech);
  EXPECT_DOUBLE_EQ(est.time_ns, 3 * kTech.t_write_ns + kTech.t_read_ns);
  EXPECT_EQ(est.write_slots, 3u);
  EXPECT_EQ(est.conditional_ops, 1u);
  EXPECT_EQ(est.sensed_reads, 1u);
}

TEST(CostEstimate, SlotCountsAgreeWithAccessSets) {
  const auto nl = ripple_carry_adder(2);
  const auto aig = Aig::from_netlist(nl);
  {
    const auto prog = compile_imply(aig, true);
    const auto est = estimate_cost(prog, kTech);
    const auto acc = access_of(prog);
    EXPECT_EQ(est.write_slots, acc.total_writes);
    EXPECT_EQ(est.sensed_reads, acc.sensed_reads);
  }
  {
    const auto prog = compile_magic(aig.to_netlist().to_nor_only(), true);
    const auto est = estimate_cost(prog, kTech);
    const auto acc = access_of(prog);
    EXPECT_EQ(est.write_slots, acc.total_writes);
    EXPECT_EQ(est.sensed_reads, acc.sensed_reads);
  }
  {
    const auto mig = Mig::from_aig(aig);
    const auto prog = assemble_revamp(mig, schedule_revamp(mig));
    const auto est = estimate_cost(prog, kTech);
    const auto acc = access_of(prog);
    EXPECT_EQ(est.write_slots, acc.total_writes);
    EXPECT_EQ(est.sensed_reads, acc.sensed_reads);
  }
}

TEST(CostCertify, BudgetGatesFireIndependently) {
  CostEstimate est;
  est.time_ns = 100.0;
  est.energy_pj_max = 50.0;
  {
    VerifyReport rep;
    certify_cost(est, {/*time_ns=*/10.0, /*energy_pj=*/0.0}, rep);
    EXPECT_EQ(rep.count(Rule::kCostBudget), 1u);
    EXPECT_FALSE(rep.clean());
  }
  {
    VerifyReport rep;
    certify_cost(est, {0.0, 10.0}, rep);
    EXPECT_EQ(rep.count(Rule::kCostBudget), 1u);
  }
  {
    VerifyReport rep;
    certify_cost(est, {10.0, 10.0}, rep);
    EXPECT_EQ(rep.count(Rule::kCostBudget), 2u);
  }
  {  // 0 dimensions are unconstrained; generous budgets pass.
    VerifyReport rep;
    certify_cost(est, {}, rep);
    certify_cost(est, {1000.0, 1000.0}, rep);
    EXPECT_TRUE(rep.clean());
    EXPECT_TRUE(rep.diagnostics.empty());
  }
}

TEST(WearCertify, CertificateMatchesAccessBoundsAndEndurance) {
  const auto nl = ripple_carry_adder(2);
  const auto prog = compile_imply(Aig::from_netlist(nl), true);
  const auto acc = access_of(prog);
  VerifyReport rep;
  const auto cert = certify_wear(acc, {}, /*planned_evaluations=*/0, rep);
  EXPECT_TRUE(rep.diagnostics.empty());  // no gate without a plan
  EXPECT_EQ(cert.max_writes_per_run, acc.max_write_bound());
  EXPECT_EQ(cert.total_writes_per_run, acc.total_writes);
  EXPECT_DOUBLE_EQ(cert.endurance_mean, kTech.endurance_mean);
  EXPECT_EQ(cert.certified_evaluations,
            static_cast<std::uint64_t>(
                cert.endurance_mean /
                static_cast<double>(cert.max_writes_per_run)));
}

TEST(WearCertify, PlanWithinBudgetIsCleanBeyondBudgetErrors) {
  const auto nl = ripple_carry_adder(2);
  const auto prog = compile_imply(Aig::from_netlist(nl), true);
  const auto acc = access_of(prog);
  VerifyOptions opts;
  opts.tech = device::Technology::kPcm;  // endurance_mean = 1e9
  {
    VerifyReport rep;
    const auto cert = certify_wear(acc, opts, 10, rep);
    EXPECT_TRUE(rep.clean());
    EXPECT_TRUE(rep.diagnostics.empty());
    EXPECT_GT(cert.certified_evaluations, 10u);
  }
  {
    VerifyReport rep;
    const auto cert = certify_wear(
        acc, opts, std::numeric_limits<std::uint32_t>::max(), rep);
    EXPECT_FALSE(rep.clean());
    EXPECT_GE(rep.count(Rule::kWearBudget), 1u);
    EXPECT_LT(cert.certified_evaluations,
              std::numeric_limits<std::uint32_t>::max());
    // Per-cell diagnostics are capped (4) with a suppression summary.
    EXPECT_LE(rep.count(Rule::kWearBudget), 5u);
  }
}

TEST(WearCertify, WritelessProgramCertifiesUnlimitedEvaluations) {
  ProgramAccess acc;
  acc.rows = 1;
  acc.cols = 2;
  acc.write_bound.assign(2, 0);
  acc.read.assign(2, 1);
  acc.written.assign(2, 0);
  acc.sensed_cols.assign(2, 1);
  acc.driven_rows.assign(1, 1);
  VerifyReport rep;
  const auto cert = certify_wear(acc, {}, 1'000'000, rep);
  EXPECT_TRUE(rep.diagnostics.empty());
  EXPECT_EQ(cert.certified_evaluations,
            std::numeric_limits<std::uint64_t>::max());
}

TEST(StaticWearJson, ExportsHeatmapV1Schema) {
  const auto nl = ripple_carry_adder(2);
  const auto prog = compile_imply(Aig::from_netlist(nl), true);
  const auto acc = access_of(prog);
  std::ostringstream os;
  write_static_wear_json(os, {{"rca2/IMPLY", &acc}});
  const std::string json = os.str();
  EXPECT_NE(json.find("\"schema\":\"cim-health-heatmap-v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"name\":\"rca2/IMPLY\""), std::string::npos);
  EXPECT_NE(json.find("\"wear\":["), std::string::npos);
  // The summary totals must agree with the access sets.
  std::ostringstream total;
  total << "\"total_writes\":" << acc.total_writes;
  EXPECT_NE(json.find(total.str()), std::string::npos);
  std::ostringstream maxw;
  maxw << "\"max_wear\":" << acc.max_write_bound();
  EXPECT_NE(json.find(maxw.str()), std::string::npos);
}

}  // namespace
}  // namespace cim::eda::verify
