/// \file test_verify_all_benches.cpp
/// \brief The lint gate: every benchmark circuit must compile to a
///        statically hazard-free program in all three logic families and
///        both allocator modes — zero diagnostics, not merely zero errors.
///        Registered under the `lint` ctest label so `ctest -L lint` runs
///        the static checks standalone.
#include <gtest/gtest.h>

#include "eda/aig.hpp"
#include "eda/bench_circuits.hpp"
#include "eda/flow.hpp"
#include "eda/imply_mapper.hpp"
#include "eda/magic_mapper.hpp"
#include "eda/majority_mapper.hpp"
#include "eda/mig.hpp"
#include "eda/revamp_isa.hpp"
#include "eda/verify/verify.hpp"

namespace cim::eda {
namespace {

std::string dump(const verify::VerifyReport& rep) {
  std::string s;
  for (const auto& d : rep.diagnostics) s += d.to_string() + "\n";
  return s;
}

class LintGate
    : public ::testing::TestWithParam<std::tuple<std::size_t, bool>> {
 protected:
  const BenchmarkCircuit& circuit() const {
    static const auto suite = standard_suite();
    return suite[std::get<0>(GetParam())];
  }
  bool reuse() const { return std::get<1>(GetParam()); }
};

TEST_P(LintGate, ImplyProgramIsLintClean) {
  const auto& bc = circuit();
  const Aig aig = Aig::from_netlist(bc.netlist);
  const auto prog = compile_imply(aig, reuse());
  const auto rep = verify::lint_imply(prog, &aig);
  EXPECT_TRUE(rep.diagnostics.empty()) << bc.name << "\n" << dump(rep);
}

TEST_P(LintGate, MagicProgramIsLintClean) {
  const auto& bc = circuit();
  const auto nor =
      Aig::from_netlist(bc.netlist).to_netlist().to_nor_only();
  const auto prog = compile_magic(nor, reuse());
  const auto rep = verify::lint_magic(prog, &nor);
  EXPECT_TRUE(rep.diagnostics.empty()) << bc.name << "\n" << dump(rep);
}

TEST_P(LintGate, RevampProgramIsLintClean) {
  const auto& bc = circuit();
  const Mig mig = Mig::from_aig(Aig::from_netlist(bc.netlist));
  const auto prog = assemble_revamp(mig, schedule_revamp(mig));
  const auto rep = verify::lint_revamp(prog);
  EXPECT_TRUE(rep.diagnostics.empty()) << bc.name << "\n" << dump(rep);
}

INSTANTIATE_TEST_SUITE_P(
    Circuits, LintGate,
    ::testing::Combine(::testing::Range<std::size_t>(0, 12),
                       ::testing::Bool()),
    [](const auto& info) {
      static const auto suite = standard_suite();
      return suite[std::get<0>(info.param)].name +
             (std::get<1>(info.param) ? "_reuse" : "_naive");
    });

// The flow-level gate: run_suite must report every mapping lint-clean, and
// the cim-lint summary table must carry one row per report.
TEST(LintGateFlow, WholeSuiteIsLintClean) {
  const auto reports =
      run_suite(standard_suite(), {.reuse_cells = true, .verify = false,
                                   .lint = true});
  for (const auto& r : reports) {
    EXPECT_TRUE(r.lint_clean) << r.circuit << " / "
                              << logic_family_name(r.family);
    EXPECT_EQ(r.lint_errors, 0u);
    EXPECT_EQ(r.lint_warnings, 0u);
  }
  EXPECT_EQ(lint_summary(reports).rows(), reports.size());
}

}  // namespace
}  // namespace cim::eda
