#include "eda/majority_mapper.hpp"

#include <gtest/gtest.h>

#include "eda/bench_circuits.hpp"

namespace cim::eda {
namespace {

Mig from_bench(const Netlist& nl) { return Mig::from_aig(Aig::from_netlist(nl)); }

TEST(MajorityMapper, SingleMajNode) {
  Mig mig;
  const auto a = mig.add_input();
  const auto b = mig.add_input();
  const auto c = mig.add_input();
  mig.mark_output(mig.lmaj(a, b, c));
  const auto sched = schedule_revamp(mig);
  EXPECT_EQ(sched.num_levels, 1u);
  EXPECT_EQ(sched.device_count, 1u);
  EXPECT_TRUE(verify_revamp(mig, sched));
}

TEST(MajorityMapper, ConstantAndInputOutputs) {
  Mig mig;
  const auto a = mig.add_input();
  mig.mark_output(mig.const1());
  mig.mark_output(a);
  mig.mark_output(Mig::lnot(a));
  const auto sched = schedule_revamp(mig);
  EXPECT_TRUE(verify_revamp(mig, sched));
}

class MajoritySuite : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MajoritySuite, BenchmarkCircuitVerifies) {
  const auto suite = standard_suite();
  const auto& bc = suite[GetParam()];
  if (bc.netlist.num_inputs() > 9) GTEST_SKIP() << "exhaustive check too large";
  const auto mig = from_bench(bc.netlist);
  const auto sched = schedule_revamp(mig);
  EXPECT_TRUE(verify_revamp(mig, sched)) << bc.name;
  EXPECT_EQ(sched.device_count, mig.num_majs());
}

INSTANTIATE_TEST_SUITE_P(Circuits, MajoritySuite,
                         ::testing::Range<std::size_t>(0, 12));

TEST(MajorityMapper, DelayRespectsLowerBound) {
  // [67]: delay-optimal mapping achieves MIG levels + 1 with unconstrained
  // devices; any realizable schedule is at least that.
  for (const auto& bc : standard_suite()) {
    const auto mig = from_bench(bc.netlist);
    const auto sched = schedule_revamp(mig);
    if (mig.num_majs() == 0) continue;
    EXPECT_GE(sched.delay(), sched.delay_lower_bound()) << bc.name;
  }
}

TEST(MajorityMapper, DelayDecomposition) {
  const auto mig = from_bench(ripple_carry_adder(3));
  const auto sched = schedule_revamp(mig);
  EXPECT_EQ(sched.delay(), sched.read_steps + sched.init_steps + sched.maj_steps);
  // Two init steps per occupied level (reset + preload write).
  EXPECT_EQ(sched.init_steps, 2u * sched.rows);
}

TEST(MajorityMapper, GroupingBoundedByLevelWidth) {
  const auto mig = from_bench(array_multiplier(2));
  const auto sched = schedule_revamp(mig);
  // Apply steps can never exceed one group per node.
  EXPECT_LE(sched.maj_steps, mig.num_majs());
  EXPECT_LE(sched.max_row_width * sched.rows + sched.rows,
            mig.num_majs() + sched.rows + sched.max_row_width * sched.rows);
}

TEST(MajorityMapper, PlanCoversEveryMajNode) {
  const auto mig = from_bench(comparator_gt(3));
  const auto sched = schedule_revamp(mig);
  EXPECT_EQ(sched.plan.size(), mig.num_majs());
}

class MajorityOnCrossbar : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MajorityOnCrossbar, HardwareExecutionVerifies) {
  const auto suite = standard_suite();
  const auto& bc = suite[GetParam()];
  if (bc.netlist.num_inputs() > 8) GTEST_SKIP() << "exhaustive check too large";
  const auto mig = from_bench(bc.netlist);
  const auto sched = schedule_revamp(mig);
  EXPECT_TRUE(verify_revamp_on_crossbar(mig, sched)) << bc.name;
}

INSTANTIATE_TEST_SUITE_P(Circuits, MajorityOnCrossbar,
                         ::testing::Values(0, 1, 2, 4, 6, 9));

TEST(MajorityOnCrossbar, TooSmallArrayThrows) {
  const auto mig = from_bench(ripple_carry_adder(2));
  const auto sched = schedule_revamp(mig);
  crossbar::CrossbarConfig cfg;
  cfg.rows = 1;
  cfg.cols = 1;
  crossbar::Crossbar xbar(cfg);
  EXPECT_THROW((void)execute_revamp_on_crossbar(xbar, mig, sched, 0),
               std::invalid_argument);
}

TEST(MajorityOnCrossbar, ChargesDeviceOperations) {
  const auto mig = from_bench(parity(3));
  const auto sched = schedule_revamp(mig);
  crossbar::CrossbarConfig cfg;
  cfg.rows = std::max<std::size_t>(1, sched.rows);
  cfg.cols = std::max<std::size_t>(1, sched.max_row_width);
  cfg.tech = device::Technology::kSttMram;
  cfg.levels = 2;
  crossbar::Crossbar xbar(cfg);
  (void)execute_revamp_on_crossbar(xbar, mig, sched, 5);
  // Three device writes per node (RESET, INIT, APPLY).
  EXPECT_EQ(xbar.stats().logic_ops, 3 * mig.num_majs());
  EXPECT_GT(xbar.stats().energy_pj, 0.0);
}

}  // namespace
}  // namespace cim::eda
