#include "eda/bdd.hpp"

#include <gtest/gtest.h>

namespace cim::eda {
namespace {

TEST(Bdd, TerminalsAndVars) {
  BddManager mgr(3);
  EXPECT_TRUE(mgr.is_terminal(mgr.zero()));
  EXPECT_TRUE(mgr.is_terminal(mgr.one()));
  const auto x0 = mgr.var(0);
  EXPECT_FALSE(mgr.is_terminal(x0));
  EXPECT_EQ(mgr.size(x0), 1u);
}

TEST(Bdd, VarIsCanonical) {
  BddManager mgr(3);
  EXPECT_EQ(mgr.var(1), mgr.var(1));
}

TEST(Bdd, BasicOperations) {
  BddManager mgr(2);
  const auto a = mgr.var(0);
  const auto b = mgr.var(1);
  EXPECT_EQ(mgr.to_truth_table(mgr.band(a, b)).to_binary_string(), "1000");
  EXPECT_EQ(mgr.to_truth_table(mgr.bor(a, b)).to_binary_string(), "1110");
  EXPECT_EQ(mgr.to_truth_table(mgr.bxor(a, b)).to_binary_string(), "0110");
  EXPECT_EQ(mgr.to_truth_table(mgr.bnot(a)).to_binary_string(), "0101");
}

TEST(Bdd, CanonicityAcrossConstructions) {
  BddManager mgr(3);
  const auto a = mgr.var(0);
  const auto b = mgr.var(1);
  // De Morgan: !(a & b) == !a | !b — identical node refs in a canonical BDD.
  EXPECT_EQ(mgr.bnot(mgr.band(a, b)), mgr.bor(mgr.bnot(a), mgr.bnot(b)));
  // a ^ b == (a|b) & !(a&b)
  EXPECT_EQ(mgr.bxor(a, b),
            mgr.band(mgr.bor(a, b), mgr.bnot(mgr.band(a, b))));
}

TEST(Bdd, FromTruthTableRoundTrip) {
  BddManager mgr(4);
  const auto tt = TruthTable::from_binary_string("0110100110010110");
  const auto f = mgr.from_truth_table(tt);
  EXPECT_TRUE(mgr.to_truth_table(f) == tt);
}

TEST(Bdd, ParityHasLinearSize) {
  // XOR chains are the BDD sweet spot: n internal levels, 2 nodes per level.
  BddManager mgr(8);
  auto f = mgr.var(0);
  for (int i = 1; i < 8; ++i) f = mgr.bxor(f, mgr.var(i));
  EXPECT_LE(mgr.size(f), 2u * 8u);
  EXPECT_EQ(mgr.sat_count(f), 128u);  // half of 2^8
}

TEST(Bdd, SatCount) {
  BddManager mgr(3);
  const auto a = mgr.var(0);
  const auto b = mgr.var(1);
  EXPECT_EQ(mgr.sat_count(mgr.band(a, b)), 2u);  // 2 of 8 (x2 free)
  EXPECT_EQ(mgr.sat_count(mgr.bor(a, b)), 6u);
  EXPECT_EQ(mgr.sat_count(mgr.one()), 8u);
  EXPECT_EQ(mgr.sat_count(mgr.zero()), 0u);
}

TEST(Bdd, ReductionEliminatesRedundantTests) {
  BddManager mgr(2);
  const auto a = mgr.var(0);
  // ite(a, b, b) == b: the test on a must vanish.
  const auto b = mgr.var(1);
  EXPECT_EQ(mgr.ite(a, b, b), b);
}

TEST(Bdd, ConstantTruthTables) {
  BddManager mgr(2);
  const auto t0 = mgr.from_truth_table(TruthTable::constant(false, 2));
  const auto t1 = mgr.from_truth_table(TruthTable::constant(true, 2));
  EXPECT_EQ(t0, mgr.zero());
  EXPECT_EQ(t1, mgr.one());
}

TEST(Bdd, TruthTableAndIteConstructionsShareCanonicalForm) {
  // The same function built via from_truth_table and via ITE operations
  // must hash to the identical node (one shared variable order).
  BddManager mgr(3);
  const auto via_tt = mgr.from_truth_table(TruthTable::var(0, 3) &
                                           TruthTable::var(2, 3));
  const auto via_ite = mgr.band(mgr.var(0), mgr.var(2));
  EXPECT_EQ(via_tt, via_ite);
  // And mixing them in further operations behaves.
  EXPECT_EQ(mgr.band(via_tt, mgr.var(1)),
            mgr.band(via_ite, mgr.var(1)));
}

TEST(Bdd, Validation) {
  EXPECT_THROW(BddManager(-1), std::invalid_argument);
  EXPECT_THROW(BddManager(21), std::invalid_argument);
  BddManager mgr(2);
  EXPECT_THROW((void)mgr.var(2), std::invalid_argument);
  EXPECT_THROW((void)mgr.from_truth_table(TruthTable::constant(false, 3)),
               std::invalid_argument);
}

}  // namespace
}  // namespace cim::eda
