/// cim-prog-v1 serialization (eda/verify/program_io.hpp): dump -> parse ->
/// dump must be a fixpoint for every mapper output, parsed programs must
/// lint identically to the originals, and malformed input must fail with a
/// line-numbered error instead of a partial program.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "eda/aig.hpp"
#include "eda/bench_circuits.hpp"
#include "eda/imply_mapper.hpp"
#include "eda/magic_mapper.hpp"
#include "eda/majority_mapper.hpp"
#include "eda/mig.hpp"
#include "eda/netlist.hpp"
#include "eda/revamp_isa.hpp"
#include "eda/verify/program_io.hpp"
#include "eda/verify/verify.hpp"

namespace cim::eda::verify {
namespace {

template <typename Prog>
std::string dumped(const Prog& prog) {
  std::ostringstream os;
  dump_program(os, prog);
  return os.str();
}

ParsedProgram parse_or_die(const std::string& text) {
  std::istringstream is(text);
  std::string error;
  auto parsed = parse_program(is, &error);
  EXPECT_TRUE(parsed.has_value()) << error;
  return parsed.value_or(ParsedProgram{});
}

TEST(ProgramIo, ImplyRoundTripIsAFixpoint) {
  for (const auto& bc : standard_suite()) {
    const auto prog = compile_imply(Aig::from_netlist(bc.netlist), true);
    const auto text = dumped(prog);
    const auto parsed = parse_or_die(text);
    ASSERT_EQ(parsed.family, ProgramFamily::kImply) << bc.name;
    EXPECT_EQ(dumped(parsed.imply), text) << bc.name;
  }
}

TEST(ProgramIo, MagicRoundTripIsAFixpoint) {
  for (const auto& bc : standard_suite()) {
    const auto nor = Aig::from_netlist(bc.netlist).to_netlist().to_nor_only();
    const auto prog = compile_magic(nor, true);
    const auto text = dumped(prog);
    const auto parsed = parse_or_die(text);
    ASSERT_EQ(parsed.family, ProgramFamily::kMagic) << bc.name;
    EXPECT_EQ(dumped(parsed.magic), text) << bc.name;
  }
}

TEST(ProgramIo, RevampRoundTripIsAFixpoint) {
  for (const auto& bc : standard_suite()) {
    const auto mig = Mig::from_aig(Aig::from_netlist(bc.netlist));
    const auto prog = assemble_revamp(mig, schedule_revamp(mig));
    const auto text = dumped(prog);
    const auto parsed = parse_or_die(text);
    ASSERT_EQ(parsed.family, ProgramFamily::kRevamp) << bc.name;
    EXPECT_EQ(dumped(parsed.revamp), text) << bc.name;
  }
}

TEST(ProgramIo, ParsedProgramLintsIdenticallyToTheOriginal) {
  const auto nl = ripple_carry_adder(2);
  const auto prog = compile_imply(Aig::from_netlist(nl), true);
  const auto parsed = parse_or_die(dumped(prog));
  // Program-local rules only on both sides (the dump carries @node
  // annotations, so liveness context survives serialization too).
  const auto before = lint_imply(prog);
  const auto after = lint_imply(parsed.imply);
  EXPECT_EQ(before.errors(), after.errors());
  EXPECT_EQ(before.warnings(), after.warnings());
  EXPECT_EQ(before.max_writes_per_cell, after.max_writes_per_cell);
}

TEST(ProgramIo, NodeAnnotationsSurviveTheRoundTrip) {
  const auto prog =
      compile_imply(Aig::from_netlist(ripple_carry_adder(2)), true);
  const auto parsed = parse_or_die(dumped(prog));
  ASSERT_EQ(parsed.imply.instrs.size(), prog.instrs.size());
  for (std::size_t i = 0; i < prog.instrs.size(); ++i)
    EXPECT_EQ(parsed.imply.instrs[i].def_node, prog.instrs[i].def_node) << i;
}

TEST(ProgramIo, CommentsAndBlankLinesAreIgnored)
{
  const std::string text =
      "# a tiny NOT-ish program\n"
      "cim-prog-v1 imply\n"
      "\n"
      "inputs 1   # one primary input\n"
      "cells 2\n"
      "zero 1\n"
      "false 1 @-\n"
      "imply 1 0 @2\n"
      "output 1\n";
  const auto parsed = parse_or_die(text);
  EXPECT_EQ(parsed.imply.num_inputs, 1u);
  EXPECT_EQ(parsed.imply.num_cells, 2u);
  ASSERT_EQ(parsed.imply.instrs.size(), 2u);
  EXPECT_EQ(parsed.imply.instrs[1].def_node, 2u);
  EXPECT_EQ(parsed.imply.output_cells, (std::vector<std::size_t>{1}));
}

void expect_parse_error(const std::string& text, const std::string& needle) {
  std::istringstream is(text);
  std::string error;
  const auto parsed = parse_program(is, &error);
  EXPECT_FALSE(parsed.has_value()) << text;
  EXPECT_NE(error.find("parse error"), std::string::npos) << error;
  EXPECT_NE(error.find(needle), std::string::npos) << error;
}

TEST(ProgramIo, MalformedInputFailsWithLineNumberedErrors) {
  expect_parse_error("bogus header\n", "line 1");
  expect_parse_error("cim-prog-v1 fpga\n", "unknown family");
  expect_parse_error("cim-prog-v1 imply\nfrob 1\n", "unknown directive");
  expect_parse_error("cim-prog-v1 imply\nimply 1\n", "missing operands");
  expect_parse_error("cim-prog-v1 imply\nimply 1 0 @x\n", "node annotation");
  expect_parse_error("cim-prog-v1 magic\nnor 3\n", "nor without inputs");
  expect_parse_error("cim-prog-v1 revamp\napply 0 q7\n", "operand");
  expect_parse_error("cim-prog-v1 revamp\nbitlines 2\napply 0 c1 0:c0\n",
                     "<col>=<operand>");
  expect_parse_error("", "empty stream");
}

TEST(ProgramIo, RevampOperandGrammarCoversAllSources) {
  const std::string text =
      "cim-prog-v1 revamp\n"
      "inputs 2\n"
      "wordlines 2\n"
      "bitlines 2\n"
      "apply 0 c1 0=!i1 1=c0\n"
      "read 0\n"
      "apply 1 !d0.1 0=i0\n"
      "read 1\n"
      "output d1.0\n"
      "output !c1\n";
  const auto parsed = parse_or_die(text);
  const auto& p = parsed.revamp;
  ASSERT_EQ(p.instrs.size(), 4u);
  const auto& a0 = p.instrs[0];
  EXPECT_EQ(a0.wl.src, RevampOperand::Src::kConst1);
  ASSERT_TRUE(a0.columns[0].has_value());
  EXPECT_EQ(a0.columns[0]->src, RevampOperand::Src::kInput);
  EXPECT_EQ(a0.columns[0]->input_index, 1u);
  EXPECT_TRUE(a0.columns[0]->complemented);
  const auto& a1 = p.instrs[2];
  EXPECT_EQ(a1.wl.src, RevampOperand::Src::kDmr);
  EXPECT_EQ(a1.wl.dmr_row, 0u);
  EXPECT_EQ(a1.wl.dmr_col, 1u);
  EXPECT_TRUE(a1.wl.complemented);
  ASSERT_EQ(p.outputs.size(), 2u);
  EXPECT_EQ(p.outputs[0].src, RevampOperand::Src::kDmr);
  EXPECT_TRUE(p.outputs[1].complemented);
}

}  // namespace
}  // namespace cim::eda::verify
