#include "eda/aig.hpp"
#include "eda/bench_circuits.hpp"

#include <gtest/gtest.h>

namespace cim::eda {
namespace {

TEST(BenchCircuits, RippleCarryAdderAddsCorrectly) {
  const int bits = 3;
  const auto nl = ripple_carry_adder(bits);
  ASSERT_EQ(nl.num_inputs(), 2u * bits + 1);
  ASSERT_EQ(nl.num_outputs(), static_cast<std::size_t>(bits) + 1);
  for (std::uint64_t a = 0; a < 8; ++a) {
    for (std::uint64_t b = 0; b < 8; ++b) {
      for (std::uint64_t cin = 0; cin < 2; ++cin) {
        const std::uint64_t assignment = a | (b << bits) | (cin << (2 * bits));
        const auto out = nl.simulate(assignment);
        std::uint64_t sum = 0;
        for (int i = 0; i <= bits; ++i)
          sum |= static_cast<std::uint64_t>(out[static_cast<std::size_t>(i)]) << i;
        EXPECT_EQ(sum, a + b + cin) << a << "+" << b << "+" << cin;
      }
    }
  }
}

TEST(BenchCircuits, ArrayMultiplierMultiplies) {
  const int bits = 3;
  const auto nl = array_multiplier(bits);
  ASSERT_EQ(nl.num_outputs(), 2u * bits);
  for (std::uint64_t a = 0; a < 8; ++a) {
    for (std::uint64_t b = 0; b < 8; ++b) {
      const auto out = nl.simulate(a | (b << bits));
      std::uint64_t prod = 0;
      for (std::size_t i = 0; i < out.size(); ++i)
        prod |= static_cast<std::uint64_t>(out[i]) << i;
      EXPECT_EQ(prod, a * b) << a << "*" << b;
    }
  }
}

TEST(BenchCircuits, ParityIsXorOfInputs) {
  const auto nl = parity(5);
  for (std::uint64_t m = 0; m < 32; ++m) {
    const auto out = nl.simulate(m);
    EXPECT_EQ(out[0], (__builtin_popcountll(m) & 1) != 0);
  }
}

TEST(BenchCircuits, MuxSelectsCorrectInput) {
  const auto nl = mux_tree(2);  // 4 data + 2 select
  for (std::uint64_t d = 0; d < 16; ++d) {
    for (std::uint64_t s = 0; s < 4; ++s) {
      const auto out = nl.simulate(d | (s << 4));
      EXPECT_EQ(out[0], ((d >> s) & 1) != 0) << "d=" << d << " s=" << s;
    }
  }
}

TEST(BenchCircuits, ComparatorComputesGreaterThan) {
  const auto nl = comparator_gt(3);
  for (std::uint64_t a = 0; a < 8; ++a)
    for (std::uint64_t b = 0; b < 8; ++b)
      EXPECT_EQ(nl.simulate(a | (b << 3))[0], a > b) << a << ">" << b;
}

TEST(BenchCircuits, MajorityNThresholds) {
  const auto nl = majority_n(5);
  for (std::uint64_t m = 0; m < 32; ++m)
    EXPECT_EQ(nl.simulate(m)[0], __builtin_popcountll(m) >= 3);
}

TEST(BenchCircuits, RandomFunctionIsNonConstant) {
  util::Rng rng(3);
  const auto nl = random_function(5, rng);
  const auto tt = nl.truth_tables()[0];
  EXPECT_FALSE(tt.is_constant());
}

TEST(BenchCircuits, StandardSuiteIsWellFormed) {
  const auto suite = standard_suite();
  EXPECT_GE(suite.size(), 10u);
  for (const auto& bc : suite) {
    EXPECT_FALSE(bc.name.empty());
    EXPECT_GE(bc.netlist.num_outputs(), 1u);
    EXPECT_LE(bc.netlist.num_inputs(), 16u);
    EXPECT_GT(bc.netlist.gate_count(), 0u) << bc.name;
  }
}

TEST(BenchCircuits, AddressDecoderIsOneHot) {
  const auto nl = address_decoder(3);
  ASSERT_EQ(nl.num_outputs(), 8u);
  for (std::uint64_t a = 0; a < 8; ++a) {
    const auto out = nl.simulate(a);
    for (std::size_t line = 0; line < 8; ++line)
      EXPECT_EQ(out[line], line == a) << "a=" << a << " line=" << line;
  }
}

TEST(BenchCircuits, GrayToBinaryInvertsEncoding) {
  const auto nl = gray_to_binary(5);
  for (std::uint64_t v = 0; v < 32; ++v) {
    const std::uint64_t gray = v ^ (v >> 1);
    const auto out = nl.simulate(gray);
    std::uint64_t decoded = 0;
    for (std::size_t b = 0; b < 5; ++b)
      decoded |= static_cast<std::uint64_t>(out[b]) << b;
    EXPECT_EQ(decoded, v);
  }
}

TEST(BenchCircuits, AluSliceAllOps) {
  const auto nl = alu_slice();
  for (std::uint64_t m = 0; m < 32; ++m) {
    const bool a = m & 1, b = (m >> 1) & 1, cin = (m >> 2) & 1;
    const bool op0 = (m >> 3) & 1, op1 = (m >> 4) & 1;
    const auto out = nl.simulate(m);
    bool expected;
    if (!op1 && !op0) expected = a && b;
    else if (!op1 && op0) expected = a || b;
    else if (op1 && !op0) expected = a != b;
    else expected = (a != b) != cin;  // sum
    EXPECT_EQ(out[0], expected) << "m=" << m;
    EXPECT_EQ(out[1], (int(a) + int(b) + int(cin)) >= 2);  // cout
  }
}

TEST(BenchCircuits, ExtendedSuiteStillVerifiesThroughFlows) {
  // The appended circuits must pass all three mapping flows too.
  const auto suite = standard_suite();
  ASSERT_GE(suite.size(), 15u);
  for (std::size_t k = 12; k < 15; ++k) {
    const auto aig = Aig::from_netlist(suite[k].netlist);
    EXPECT_TRUE(aig.truth_tables() == suite[k].netlist.truth_tables())
        << suite[k].name;
  }
}

TEST(BenchCircuits, ParameterValidation) {
  EXPECT_THROW((void)ripple_carry_adder(0), std::invalid_argument);
  EXPECT_THROW((void)ripple_carry_adder(9), std::invalid_argument);
  EXPECT_THROW((void)array_multiplier(5), std::invalid_argument);
  EXPECT_THROW((void)parity(1), std::invalid_argument);
  EXPECT_THROW((void)mux_tree(5), std::invalid_argument);
  EXPECT_THROW((void)majority_n(4), std::invalid_argument);
  util::Rng rng(5);
  EXPECT_THROW((void)random_function(1, rng), std::invalid_argument);
}

}  // namespace
}  // namespace cim::eda
