#include "eda/esop_mapper.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace cim::eda {
namespace {

Esop esop_of(const std::string& bits) {
  return Esop::from_truth_table(TruthTable::from_binary_string(bits));
}

TEST(EsopMapper, XorMapsAndVerifies) {
  const auto prog = compile_esop(esop_of("0110"));
  EXPECT_EQ(prog.rows, 3u);  // 2 cubes + accumulator
  EXPECT_TRUE(verify_esop(prog));
}

TEST(EsopMapper, AndOrConstants) {
  EXPECT_TRUE(verify_esop(compile_esop(esop_of("1000"))));   // AND
  EXPECT_TRUE(verify_esop(compile_esop(esop_of("1110"))));   // OR
  EXPECT_TRUE(verify_esop(compile_esop(esop_of("1111"))));   // const 1
  EXPECT_TRUE(verify_esop(compile_esop(esop_of("0000"))));   // const 0
}

class EsopMapperRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EsopMapperRandom, RandomFunctionsVerify) {
  util::Rng rng(GetParam());
  TruthTable tt(5);
  for (std::uint64_t m = 0; m < tt.size(); ++m)
    if (rng.bernoulli(0.5)) tt.set(m, true);
  const auto prog = compile_esop(Esop::from_truth_table(tt));
  EXPECT_TRUE(verify_esop(prog));
}

INSTANTIATE_TEST_SUITE_P(Seeds, EsopMapperRandom,
                         ::testing::Range<std::uint64_t>(0, 8));

TEST(EsopMapper, TimeMultiplexedLayoutVerifies) {
  const auto prog =
      compile_esop(esop_of("10010110"), EsopLayout::kTimeMultiplexed);
  EXPECT_EQ(prog.rows, 2u);  // the 3x2-style minimal-area layout
  EXPECT_TRUE(verify_esop(prog));
}

TEST(EsopMapper, AreaDelayTradeoffBetweenLayouts) {
  const auto esop = esop_of("0110100110010110");
  const auto parallel = compile_esop(esop, EsopLayout::kRowPerCube);
  const auto mux = compile_esop(esop, EsopLayout::kTimeMultiplexed);
  EXPECT_LT(mux.device_count, parallel.device_count);
  EXPECT_GT(mux.delay, parallel.delay);
}

TEST(EsopMapper, DelayScalesWithCubes) {
  const auto small = compile_esop(esop_of("0110"));
  const auto big = compile_esop(esop_of("0110100110010110"));
  EXPECT_GT(big.esop.cube_count(), small.esop.cube_count());
  EXPECT_GT(big.delay, small.delay);
}

TEST(EsopMapper, TooSmallCrossbarThrows) {
  const auto prog = compile_esop(esop_of("0110"));
  crossbar::CrossbarConfig cfg;
  cfg.rows = 1;
  cfg.cols = 2;
  crossbar::Crossbar xbar(cfg);
  EXPECT_THROW((void)execute_esop(xbar, prog, 0), std::invalid_argument);
}

}  // namespace
}  // namespace cim::eda
