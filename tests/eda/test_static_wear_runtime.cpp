/// Static-vs-runtime wear cross-check: the per-cell write-count upper bound
/// (eda/verify/access.hpp) must dominate the runtime obs::HealthMonitor
/// wear counters on every mapper / bench-circuit pair. The contract only
/// holds for non-verified writes (CrossbarConfig::verified_writes = false):
/// program-and-verify retries a stochastic pulse count no static bound can
/// cap — which this suite also demonstrates is the *only* leak.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "crossbar/crossbar.hpp"
#include "eda/aig.hpp"
#include "eda/bench_circuits.hpp"
#include "eda/imply_mapper.hpp"
#include "eda/magic_mapper.hpp"
#include "eda/majority_mapper.hpp"
#include "eda/mig.hpp"
#include "eda/revamp_isa.hpp"
#include "eda/verify/access.hpp"
#include "obs/health.hpp"
#include "obs/obs.hpp"

namespace cim::eda::verify {
namespace {

class StaticWearRuntimeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_mode(obs::Mode::kHealth);
    obs::reset();
    obs::HealthRegistry::global().clear();
  }
  void TearDown() override {
    obs::set_mode(obs::Mode::kOff);
    obs::reset();
    obs::HealthRegistry::global().clear();
  }
};

crossbar::CrossbarConfig exec_config(std::size_t rows, std::size_t cols,
                                     bool verified_writes,
                                     std::uint64_t seed) {
  crossbar::CrossbarConfig cfg;
  cfg.rows = rows;
  cfg.cols = cols;
  cfg.tech = device::Technology::kSttMram;
  cfg.levels = 2;
  cfg.model_ir_drop = false;
  cfg.verified_writes = verified_writes;
  cfg.seed = seed;
  return cfg;
}

/// Executes `exec` for `runs` assignments on one crossbar and checks the
/// monitor's per-cell wear against `bound * runs`.
template <typename ExecFn>
void check_dominates(const std::string& tag, const ProgramAccess& access,
                     std::size_t num_inputs, ExecFn&& exec) {
  const std::uint64_t n = 1ULL << std::min<std::size_t>(num_inputs, 6);
  crossbar::Crossbar xbar(
      exec_config(access.rows, access.cols, false, 99));
  xbar.set_health_name("static-wear-" + tag);
  for (std::uint64_t a = 0; a < n; ++a) exec(xbar, a);
  const auto snap = xbar.health_monitor().snapshot();
  ASSERT_EQ(snap.wear.size(), access.rows * access.cols) << tag;
  for (std::size_t r = 0; r < access.rows; ++r) {
    for (std::size_t c = 0; c < access.cols; ++c) {
      const auto runtime = snap.wear[r * access.cols + c];
      const auto bound =
          static_cast<std::uint64_t>(access.write_bound[access.flat(r, c)]) *
          n;
      EXPECT_LE(runtime, bound) << tag << " cell r" << r << ",c" << c;
    }
  }
  EXPECT_LE(snap.total_writes,
            static_cast<std::uint64_t>(access.total_writes) * n)
      << tag;
  EXPECT_GT(snap.total_writes, 0u) << tag;  // the check is not vacuous
}

TEST_F(StaticWearRuntimeTest, BoundDominatesEveryMapperAndCircuit) {
  for (const auto& bc : standard_suite()) {
    const auto aig = Aig::from_netlist(bc.netlist);
    {
      const auto prog = compile_imply(aig, true);
      check_dominates("imply-" + bc.name, access_of(prog), prog.num_inputs,
                      [&](crossbar::Crossbar& x, std::uint64_t a) {
                        execute_imply(x, prog, a);
                      });
    }
    {
      const auto nor = aig.to_netlist().to_nor_only();
      const auto prog = compile_magic(nor, true);
      check_dominates("magic-" + bc.name, access_of(prog), prog.num_inputs,
                      [&](crossbar::Crossbar& x, std::uint64_t a) {
                        execute_magic(x, prog, a);
                      });
    }
    {
      const auto mig = Mig::from_aig(aig);
      const auto prog = assemble_revamp(mig, schedule_revamp(mig));
      check_dominates("revamp-" + bc.name, access_of(prog), prog.num_inputs,
                      [&](crossbar::Crossbar& x, std::uint64_t a) {
                        execute_revamp_program(x, prog, a);
                      });
    }
  }
}

TEST_F(StaticWearRuntimeTest, VerifiedWritesBreakTheBoundOnlyViaRetries) {
  // With program-and-verify enabled the launch writes may retry; the static
  // bound no longer caps pulses. This locks in *why* the contract requires
  // verified_writes = false: runtime wear stays bounded by bound * attempts,
  // and every extra pulse is a retry of a cell the bound already covers
  // (no wear appears on cells the static analysis calls write-free).
  const auto aig = Aig::from_netlist(ripple_carry_adder(2));
  const auto prog = compile_imply(aig, true);
  const auto access = access_of(prog);
  crossbar::Crossbar xbar(exec_config(1, access.cols, true, 7));
  xbar.set_health_name("static-wear-verified");
  const std::uint64_t n = 16;
  for (std::uint64_t a = 0; a < n; ++a) execute_imply(xbar, prog, a);
  const auto snap = xbar.health_monitor().snapshot();
  for (std::size_t c = 0; c < access.cols; ++c) {
    if (access.write_bound[c] == 0) {
      EXPECT_EQ(snap.wear[c], 0u) << c;
    }
  }
}

}  // namespace
}  // namespace cim::eda::verify
