#include "eda/flow.hpp"

#include <gtest/gtest.h>

namespace cim::eda {
namespace {

TEST(Flow, SingleCircuitAllFamiliesVerified) {
  const auto nl = ripple_carry_adder(2);
  for (const auto family : all_logic_families()) {
    const auto rep = run_flow("rca2", nl, family);
    EXPECT_TRUE(rep.verified) << logic_family_name(family);
    EXPECT_GT(rep.devices, 0u);
    EXPECT_GT(rep.delay, 0u);
    EXPECT_DOUBLE_EQ(rep.area_delay_product,
                     static_cast<double>(rep.devices * rep.delay));
  }
}

TEST(Flow, SynthesisStatsPopulated) {
  const auto nl = comparator_gt(3);
  const auto rep = run_flow("cmp3", nl, LogicFamily::kMagic);
  EXPECT_GT(rep.aig_nodes, 0u);
  EXPECT_GT(rep.aig_depth, 0u);
  EXPECT_GT(rep.mig_nodes, 0u);
  // Single-output circuit: ESOP and BDD stats present.
  EXPECT_GT(rep.esop_cubes, 0u);
  EXPECT_GT(rep.bdd_nodes, 0u);
}

TEST(Flow, MultiOutputSkipsSingleOutputStats) {
  const auto nl = ripple_carry_adder(2);
  const auto rep = run_flow("rca2", nl, LogicFamily::kImply);
  EXPECT_EQ(rep.esop_cubes, 0u);
  EXPECT_EQ(rep.bdd_nodes, 0u);
}

TEST(Flow, SuiteRunsAllCombinations) {
  // A reduced suite keeps the exhaustive verification quick.
  std::vector<BenchmarkCircuit> suite;
  suite.push_back({"xor2", parity(2)});
  suite.push_back({"rca2", ripple_carry_adder(2)});
  const auto reports = run_suite(suite);
  EXPECT_EQ(reports.size(), 6u);  // 2 circuits x 3 families
  for (const auto& rep : reports) EXPECT_TRUE(rep.verified) << rep.circuit;
}

TEST(Flow, MigDepthNeverExceedsAigDepthByMuch) {
  // AND -> MAJ conversion is depth-preserving.
  for (const auto& bc : standard_suite()) {
    const auto rep = run_flow(bc.name, bc.netlist, LogicFamily::kMajority,
                              {.reuse_cells = true, .verify = false});
    EXPECT_LE(rep.mig_depth, rep.aig_depth) << bc.name;
  }
}

TEST(Flow, FamilyNamesKnown) {
  for (const auto f : all_logic_families())
    EXPECT_NE(logic_family_name(f), "unknown");
}

}  // namespace
}  // namespace cim::eda
