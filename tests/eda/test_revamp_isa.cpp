#include "eda/revamp_isa.hpp"

#include <gtest/gtest.h>

#include "eda/aig.hpp"
#include "eda/bench_circuits.hpp"

namespace cim::eda {
namespace {

Mig mig_of(const Netlist& nl) { return Mig::from_aig(Aig::from_netlist(nl)); }

TEST(RevampIsa, SingleMajAssemblesToThreeApplies) {
  Mig mig;
  const auto a = mig.add_input();
  const auto b = mig.add_input();
  const auto c = mig.add_input();
  mig.mark_output(mig.lmaj(a, b, c));
  const auto sched = schedule_revamp(mig);
  const auto prog = assemble_revamp(mig, sched);
  // RESET + PRELOAD + one group apply; no producer reads (inputs ride the
  // PIR), one final read for the output.
  EXPECT_EQ(prog.apply_count(), 3u);
  EXPECT_EQ(prog.read_count(), 1u);
  EXPECT_TRUE(verify_revamp_program(mig, sched));
}

class RevampIsaSuite : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RevampIsaSuite, AssembledProgramVerifies) {
  const auto suite = standard_suite();
  const auto& bc = suite[GetParam()];
  if (bc.netlist.num_inputs() > 8) GTEST_SKIP() << "exhaustive check too large";
  const auto mig = mig_of(bc.netlist);
  const auto sched = schedule_revamp(mig);
  EXPECT_TRUE(verify_revamp_program(mig, sched)) << bc.name;
}

INSTANTIATE_TEST_SUITE_P(Circuits, RevampIsaSuite,
                         ::testing::Values(0, 1, 2, 3, 4, 6, 8, 9));

TEST(RevampIsa, InstructionCountMatchesScheduleDelay) {
  const auto mig = mig_of(ripple_carry_adder(3));
  const auto sched = schedule_revamp(mig);
  const auto prog = assemble_revamp(mig, sched);
  // Applies = 2 per level (reset+preload) + one per group = init + maj steps.
  EXPECT_EQ(prog.apply_count(), sched.init_steps + sched.maj_steps);
  // Reads >= the schedule's conservative estimate (plus output latching).
  EXPECT_GE(prog.read_count(), sched.read_steps);
}

TEST(RevampIsa, DisassemblyIsReadable) {
  Mig mig;
  const auto a = mig.add_input();
  const auto b = mig.add_input();
  mig.mark_output(mig.land(a, b));
  const auto prog = assemble_revamp(mig, schedule_revamp(mig));
  const auto listing = prog.disassemble();
  EXPECT_NE(listing.find("APPLY r0"), std::string::npos);
  EXPECT_NE(listing.find("PI[0]"), std::string::npos);
  EXPECT_NE(listing.find("READ"), std::string::npos);
  EXPECT_NE(listing.find("; outputs:"), std::string::npos);
}

TEST(RevampIsa, ConstantAndPassthroughOutputs) {
  Mig mig;
  const auto a = mig.add_input();
  mig.mark_output(mig.const1());
  mig.mark_output(Mig::lnot(a));
  const auto sched = schedule_revamp(mig);
  EXPECT_TRUE(verify_revamp_program(mig, sched));
}

TEST(RevampIsa, ExecutionRequiresBigEnoughArray) {
  const auto mig = mig_of(ripple_carry_adder(2));
  const auto prog = assemble_revamp(mig, schedule_revamp(mig));
  crossbar::CrossbarConfig cfg;
  cfg.rows = 1;
  cfg.cols = 1;
  crossbar::Crossbar xbar(cfg);
  EXPECT_THROW((void)execute_revamp_program(xbar, prog, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace cim::eda
