/// Pass manager (eda/verify/pass.hpp): the standard pipeline must aggregate
/// the family linter plus both certifiers over one shared analysis cache,
/// the flow must surface the certificates in its report, and the pipeline's
/// verdict must match the stand-alone linters it re-hosts.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>

#include "eda/aig.hpp"
#include "eda/bench_circuits.hpp"
#include "eda/flow.hpp"
#include "eda/imply_mapper.hpp"
#include "eda/magic_mapper.hpp"
#include "eda/majority_mapper.hpp"
#include "eda/mig.hpp"
#include "eda/netlist.hpp"
#include "eda/revamp_isa.hpp"
#include "eda/verify/pass.hpp"
#include "eda/verify/verify.hpp"

namespace cim::eda::verify {
namespace {

ProgramUnit imply_unit(const ImplyProgram& prog, const Aig& aig) {
  ProgramUnit unit;
  unit.name = "unit-under-test";
  unit.imply = &prog;
  unit.aig = &aig;
  return unit;
}

TEST(PassManager, StandardPipelineHasTheThreePasses) {
  const auto pm = PassManager::standard();
  EXPECT_EQ(pm.size(), 3u);
}

TEST(PassManager, CleanProgramPassesEveryStandardPass) {
  const auto aig = Aig::from_netlist(ripple_carry_adder(2));
  const auto prog = compile_imply(aig, true);
  auto pm = PassManager::standard();
  AnalysisResults results;
  const auto rep = pm.run(imply_unit(prog, aig), results);
  EXPECT_TRUE(rep.clean());
  EXPECT_EQ(rep.errors(), 0u);
  EXPECT_GT(rep.cells_tracked, 0u);
  EXPECT_GT(rep.max_writes_per_cell, 0u);
  // The certifiers left their shared facts behind for the caller.
  ASSERT_TRUE(results.wear().has_value());
  EXPECT_GT(results.wear()->certified_evaluations, 0u);
}

TEST(PassManager, VerdictMatchesTheStandaloneLinters) {
  for (const auto& bc : standard_suite()) {
    const auto aig = Aig::from_netlist(bc.netlist);
    const auto prog = compile_imply(aig, true);
    const auto direct = lint_imply(prog, &aig);
    auto pm = PassManager::standard();
    const auto hosted = pm.run(imply_unit(prog, aig));
    // Clean programs gain no diagnostics from the certifiers (no budget
    // set), so the re-hosted pipeline must agree with the direct linter.
    EXPECT_EQ(hosted.errors(), direct.errors()) << bc.name;
    EXPECT_EQ(hosted.warnings(), direct.warnings()) << bc.name;
    EXPECT_EQ(hosted.max_writes_per_cell, direct.max_writes_per_cell)
        << bc.name;
  }
}

TEST(PassManager, AnalysisResultsAreComputedOnceAndShared) {
  const auto aig = Aig::from_netlist(ripple_carry_adder(2));
  const auto prog = compile_imply(aig, true);
  const auto unit = imply_unit(prog, aig);
  AnalysisResults results;
  const auto* access_first = &results.access(unit);
  const auto* cost_first = &results.cost(unit);
  EXPECT_EQ(access_first, &results.access(unit));
  EXPECT_EQ(cost_first, &results.cost(unit));
}

TEST(PassManager, TimingsAccumulateAcrossRuns) {
  const auto aig = Aig::from_netlist(ripple_carry_adder(2));
  const auto prog = compile_imply(aig, true);
  auto pm = PassManager::standard();
  pm.run(imply_unit(prog, aig));
  pm.run(imply_unit(prog, aig));
  ASSERT_EQ(pm.timings().size(), 3u);
  for (const auto& t : pm.timings()) {
    EXPECT_EQ(t.runs, 2u) << t.name;
    EXPECT_GE(t.wall_ms, 0.0) << t.name;
    EXPECT_FALSE(t.name.empty());
  }
}

TEST(PassManager, WearAndCostGatesFeedTheAggregatedReport) {
  const auto aig = Aig::from_netlist(ripple_carry_adder(2));
  const auto prog = compile_imply(aig, true);
  auto unit = imply_unit(prog, aig);
  unit.opts.tech = device::Technology::kPcm;  // endurance 1e9
  unit.planned_evaluations = UINT64_C(1) << 62;
  unit.cost_budget = {1.0, 1.0};  // 1 ns / 1 pJ: impossible
  auto pm = PassManager::standard();
  const auto rep = pm.run(unit);
  EXPECT_FALSE(rep.clean());
  EXPECT_GE(rep.count(Rule::kWearBudget), 1u);
  EXPECT_EQ(rep.count(Rule::kCostBudget), 2u);
}

TEST(PassManager, EveryFamilyRunsThroughTheStandardPipeline) {
  const auto nl = ripple_carry_adder(2);
  const auto aig = Aig::from_netlist(nl);
  auto pm = PassManager::standard();
  {
    const auto prog = compile_imply(aig, true);
    EXPECT_TRUE(pm.run(imply_unit(prog, aig)).clean());
  }
  {
    const auto nor = aig.to_netlist().to_nor_only();
    const auto prog = compile_magic(nor, true);
    ProgramUnit unit;
    unit.name = "magic";
    unit.magic = &prog;
    unit.netlist = &nor;
    EXPECT_EQ(unit.family(), "MAGIC");
    EXPECT_TRUE(pm.run(unit).clean());
  }
  {
    const auto mig = Mig::from_aig(aig);
    const auto prog = assemble_revamp(mig, schedule_revamp(mig));
    ProgramUnit unit;
    unit.name = "revamp";
    unit.revamp = &prog;
    EXPECT_EQ(unit.family(), "ReVAMP");
    EXPECT_TRUE(pm.run(unit).clean());
  }
}

// --- flow integration --------------------------------------------------------

TEST(FlowStatic, ReportCarriesTheCertificates) {
  const auto nl = ripple_carry_adder(2);
  const auto rep = run_flow("rca2", nl, LogicFamily::kImply,
                            {.reuse_cells = true, .verify = false,
                             .lint = true});
  EXPECT_TRUE(rep.lint_clean);
  EXPECT_GT(rep.static_max_writes_per_cell, 0u);
  EXPECT_GE(rep.static_max_writes_per_cell, rep.max_writes_per_cell);
  EXPECT_GT(rep.certified_evaluations, 0u);
  EXPECT_GT(rep.static_time_ns, 0.0);
  EXPECT_LE(rep.static_energy_pj_min, rep.static_energy_pj_exp);
  EXPECT_LE(rep.static_energy_pj_exp, rep.static_energy_pj_max);
  EXPECT_TRUE(rep.static_cost_exact);
}

TEST(FlowStatic, CostBudgetGateSurfacesInTheFlowVerdict) {
  const auto nl = ripple_carry_adder(2);
  FlowOptions opts;
  opts.verify = false;
  opts.cost_budget = {1.0, 0.0};  // 1 ns is impossible for any program
  const auto rep = run_flow("rca2", nl, LogicFamily::kMagic, opts);
  EXPECT_FALSE(rep.lint_clean);
  EXPECT_GE(rep.lint_errors, 1u);
}

TEST(FlowStatic, LintOffSkipsThePipeline) {
  const auto nl = ripple_carry_adder(2);
  const auto rep = run_flow("rca2", nl, LogicFamily::kImply,
                            {.reuse_cells = true, .verify = false,
                             .lint = false});
  EXPECT_EQ(rep.static_time_ns, 0.0);
  EXPECT_EQ(rep.static_max_writes_per_cell, 0u);
  EXPECT_EQ(rep.certified_evaluations, 0u);
}

TEST(FlowStatic, SuiteHazardGateIsCleanAndCountsAttribute) {
  const auto reports = run_suite(standard_suite(),
                                 {.reuse_cells = true, .verify = false,
                                  .lint = true});
  for (const auto& r : reports) {
    EXPECT_TRUE(r.hazard_clean) << r.circuit;
    EXPECT_EQ(r.hazard_findings, 0u) << r.circuit;
    EXPECT_TRUE(r.lint_clean) << r.circuit;
  }
}

}  // namespace
}  // namespace cim::eda::verify
