#include "eda/esop.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace cim::eda {
namespace {

TEST(Esop, XorIsTwoCubes) {
  const auto tt = TruthTable::from_binary_string("0110");
  const auto e = Esop::from_truth_table(tt);
  EXPECT_EQ(e.cube_count(), 2u);  // x0 ^ x1
  EXPECT_TRUE(e.to_truth_table() == tt);
}

TEST(Esop, AndIsOneCube) {
  const auto tt = TruthTable::from_binary_string("1000");
  const auto e = Esop::from_truth_table(tt);
  EXPECT_EQ(e.cube_count(), 1u);  // x0.x1
  EXPECT_EQ(e.literal_count(), 2u);
}

TEST(Esop, OrNeedsThreeCubes) {
  // a | b = a ^ b ^ ab in PPRM.
  const auto tt = TruthTable::from_binary_string("1110");
  const auto e = Esop::from_truth_table(tt);
  EXPECT_EQ(e.cube_count(), 3u);
  EXPECT_TRUE(e.to_truth_table() == tt);
}

TEST(Esop, ConstantFunctions) {
  EXPECT_EQ(Esop::from_truth_table(TruthTable::constant(false, 3)).cube_count(),
            0u);
  const auto one = Esop::from_truth_table(TruthTable::constant(true, 3));
  EXPECT_EQ(one.cube_count(), 1u);
  EXPECT_EQ(one.cubes()[0].mask, 0u);  // the constant-1 cube
}

class EsopRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EsopRoundTrip, RandomFunctionsRoundTrip) {
  util::Rng rng(GetParam());
  TruthTable tt(6);
  for (std::uint64_t m = 0; m < tt.size(); ++m)
    if (rng.bernoulli(0.5)) tt.set(m, true);
  const auto e = Esop::from_truth_table(tt);
  EXPECT_TRUE(e.to_truth_table() == tt);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EsopRoundTrip, ::testing::Range<std::uint64_t>(0, 10));

TEST(Esop, EvalMatchesTruthTable) {
  const auto tt = TruthTable::from_binary_string("10010110");
  const auto e = Esop::from_truth_table(tt);
  for (std::uint64_t m = 0; m < 8; ++m) EXPECT_EQ(e.eval(m), tt.get(m));
}

TEST(Esop, ToStringReadable) {
  const auto e =
      Esop::from_truth_table(TruthTable::from_binary_string("0110"));
  EXPECT_EQ(e.to_string(), "x0 ^ x1");
  const auto zero =
      Esop::from_truth_table(TruthTable::constant(false, 2));
  EXPECT_EQ(zero.to_string(), "0");
}

TEST(Esop, PprmIsUnique) {
  // The PPRM of a function is unique: recomputing gives identical cubes.
  const auto tt = TruthTable::from_binary_string("0110100110010110");
  const auto a = Esop::from_truth_table(tt);
  const auto b = Esop::from_truth_table(tt);
  ASSERT_EQ(a.cube_count(), b.cube_count());
  for (std::size_t i = 0; i < a.cube_count(); ++i)
    EXPECT_EQ(a.cubes()[i].mask, b.cubes()[i].mask);
}

}  // namespace
}  // namespace cim::eda
