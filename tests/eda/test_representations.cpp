/// Cross-representation property tests: for random functions, every
/// intermediate representation of the Fig. 8 flow (AIG, MIG, BDD, ESOP) and
/// every mapping path must agree with the source truth table.
#include <gtest/gtest.h>

#include "eda/aig.hpp"
#include "eda/bdd.hpp"
#include "eda/esop.hpp"
#include "eda/esop_mapper.hpp"
#include "eda/imply_mapper.hpp"
#include "eda/magic_mapper.hpp"
#include "eda/majority_mapper.hpp"
#include "eda/mig.hpp"
#include "util/rng.hpp"

namespace cim::eda {
namespace {

class CrossRepresentation : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  TruthTable random_tt(int vars) {
    util::Rng rng(GetParam() * 77 + 13);
    TruthTable tt(vars);
    for (std::uint64_t m = 0; m < tt.size(); ++m)
      if (rng.bernoulli(0.5)) tt.set(m, true);
    return tt;
  }
};

TEST_P(CrossRepresentation, AllRepresentationsAgree) {
  const auto tt = random_tt(5);

  const auto aig = Aig::from_truth_table(tt);
  EXPECT_TRUE(aig.truth_tables()[0] == tt);

  const auto mig = Mig::from_aig(aig);
  EXPECT_TRUE(mig.truth_tables()[0] == tt);

  BddManager bdd(tt.vars());
  EXPECT_TRUE(bdd.to_truth_table(bdd.from_truth_table(tt)) == tt);

  const auto esop = Esop::from_truth_table(tt);
  EXPECT_TRUE(esop.to_truth_table() == tt);
}

TEST_P(CrossRepresentation, AllMappingPathsAgree) {
  const auto tt = random_tt(4);
  const auto aig = Aig::from_truth_table(tt);
  const auto mig = Mig::from_aig(aig);

  // IMPLY path.
  EXPECT_TRUE(verify_imply(compile_imply(aig, true), aig));
  // Majority path (functional and on-crossbar).
  const auto sched = schedule_revamp(mig);
  EXPECT_TRUE(verify_revamp(mig, sched));
  EXPECT_TRUE(verify_revamp_on_crossbar(mig, sched));
  // MAGIC path.
  const auto nor = aig.to_netlist().to_nor_only();
  EXPECT_TRUE(verify_magic(compile_magic(nor, true), nor));
  // ESOP path.
  EXPECT_TRUE(verify_esop(compile_esop(Esop::from_truth_table(tt))));
}

TEST_P(CrossRepresentation, BddSatCountMatchesTruthTable) {
  const auto tt = random_tt(6);
  BddManager bdd(tt.vars());
  EXPECT_EQ(bdd.sat_count(bdd.from_truth_table(tt)), tt.count_ones());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossRepresentation,
                         ::testing::Range<std::uint64_t>(0, 10));

}  // namespace
}  // namespace cim::eda
