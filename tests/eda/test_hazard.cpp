/// Cross-tile hazard analysis (eda/verify/hazard.hpp): one minimal failing
/// schedule per diagnostic rule, the serialization/isolation laws that make
/// correct schedules clean, and the zero-false-positive sweep over every
/// mapper output of the bench-circuit suite.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "eda/aig.hpp"
#include "eda/bench_circuits.hpp"
#include "eda/flow.hpp"
#include "eda/imply_mapper.hpp"
#include "eda/magic_mapper.hpp"
#include "eda/majority_mapper.hpp"
#include "eda/mig.hpp"
#include "eda/revamp_isa.hpp"
#include "eda/verify/access.hpp"
#include "eda/verify/hazard.hpp"

namespace cim::eda::verify {
namespace {

/// A 1 x `cols` synthetic program footprint with explicit access patterns.
ProgramAccess make_access(std::size_t cols, std::vector<std::size_t> reads,
                          std::vector<std::size_t> writes,
                          std::vector<std::size_t> sensed = {},
                          bool drives_row = false) {
  ProgramAccess a;
  a.rows = 1;
  a.cols = cols;
  a.write_bound.assign(cols, 0);
  a.read.assign(cols, 0);
  a.written.assign(cols, 0);
  a.sensed_cols.assign(cols, 0);
  a.driven_rows.assign(1, drives_row ? 1 : 0);
  for (const auto c : reads) a.read[c] = 1;
  for (const auto c : writes) {
    a.written[c] = 1;
    a.write_bound[c] = 1;
    ++a.total_writes;
  }
  for (const auto c : sensed) {
    a.sensed_cols[c] = 1;
    ++a.sensed_reads;
  }
  return a;
}

ScheduledProgram place(std::string name, const ProgramAccess& access,
                       std::size_t tile, double start, double duration,
                       std::size_t col0 = 0) {
  ScheduledProgram p;
  p.name = std::move(name);
  p.tile = tile;
  p.col0 = col0;
  p.start = start;
  p.duration = duration;
  p.access = access;
  return p;
}

TilePool one_tile(std::size_t cols, std::size_t adcs = 8) {
  TilePool pool;
  pool.tiles.push_back({1, cols, adcs});
  return pool;
}

TEST(HazardMinimal, RawHazardWhenLaterProgramReadsEarlierWrites) {
  const auto writer = make_access(4, {}, {0});
  const auto reader = make_access(4, {0}, {});
  const auto rep = analyze_hazards(
      one_tile(4), {place("w", writer, 0, 0.0, 10.0),
                    place("r", reader, 0, 5.0, 10.0)});
  EXPECT_EQ(rep.count(Rule::kRawHazard), 1u);
  EXPECT_EQ(rep.errors(), 1u);
  EXPECT_EQ(rep.diagnostics[0].cell, 0u);
  EXPECT_NE(rep.diagnostics[0].message.find("'w'"), std::string::npos);
  EXPECT_NE(rep.diagnostics[0].message.find("'r'"), std::string::npos);
}

TEST(HazardMinimal, WawHazardWhenBothProgramsWriteTheSameCell) {
  const auto a = make_access(4, {}, {2});
  const auto b = make_access(4, {}, {2});
  const auto rep = analyze_hazards(
      one_tile(4),
      {place("a", a, 0, 0.0, 10.0), place("b", b, 0, 5.0, 10.0)});
  EXPECT_EQ(rep.count(Rule::kWawHazard), 1u);
  EXPECT_EQ(rep.errors(), 1u);
  EXPECT_EQ(rep.diagnostics[0].cell, 2u);
}

TEST(HazardMinimal, WarHazardWhenLaterProgramWritesEarlierReads) {
  const auto reader = make_access(4, {1}, {});
  const auto writer = make_access(4, {}, {1});
  const auto rep = analyze_hazards(
      one_tile(4), {place("r", reader, 0, 0.0, 10.0),
                    place("w", writer, 0, 5.0, 10.0)});
  EXPECT_EQ(rep.count(Rule::kWarHazard), 1u);
  EXPECT_EQ(rep.errors(), 1u);
  EXPECT_EQ(rep.diagnostics[0].cell, 1u);
}

TEST(HazardMinimal, RawWarClassificationFollowsStartOrderNotListOrder) {
  // Same pair as above but passed later-first: classification must still
  // name the *earlier* program as the writer side of RAW.
  const auto writer = make_access(4, {}, {0});
  const auto reader = make_access(4, {0}, {});
  const auto rep = analyze_hazards(
      one_tile(4), {place("r", reader, 0, 5.0, 10.0),
                    place("w", writer, 0, 0.0, 10.0)});
  EXPECT_EQ(rep.count(Rule::kRawHazard), 1u);
  EXPECT_EQ(rep.count(Rule::kWarHazard), 0u);
}

TEST(HazardMinimal, SharedAdcChannelConflictAcrossColumnMux) {
  // 8 physical ADCs: absolute columns 0 and 8 mux onto channel 0. The two
  // programs touch disjoint cells, so the only contention is the ADC.
  const auto a = make_access(1, {0}, {}, /*sensed=*/{0});
  const auto b = make_access(1, {0}, {}, /*sensed=*/{0});
  const auto rep = analyze_hazards(
      one_tile(16, 8), {place("a", a, 0, 0.0, 10.0, /*col0=*/0),
                        place("b", b, 0, 0.0, 10.0, /*col0=*/8)});
  EXPECT_EQ(rep.count(Rule::kAdcConflict), 1u);
  EXPECT_EQ(rep.errors(), 1u);
  EXPECT_EQ(rep.diagnostics[0].cell, 0u);  // the contended channel id
}

TEST(HazardMinimal, DisjointAdcChannelsAreClean) {
  const auto a = make_access(1, {0}, {}, {0});
  const auto b = make_access(1, {0}, {}, {0});
  const auto rep = analyze_hazards(
      one_tile(16, 8), {place("a", a, 0, 0.0, 10.0, 0),
                        place("b", b, 0, 0.0, 10.0, 3)});
  EXPECT_EQ(rep.count(Rule::kAdcConflict), 0u);
  EXPECT_TRUE(rep.clean());
}

TEST(HazardMinimal, SharedRowDriverIsAWarningNotAnError) {
  // Disjoint cells, no sensing, but both engage the row-0 wordline driver.
  const auto a = make_access(2, {}, {0}, {}, /*drives_row=*/true);
  const auto b = make_access(2, {}, {0}, {}, /*drives_row=*/true);
  const auto rep = analyze_hazards(
      one_tile(8), {place("a", a, 0, 0.0, 10.0, 0),
                    place("b", b, 0, 0.0, 10.0, 4)});
  EXPECT_EQ(rep.count(Rule::kRowDriverConflict), 1u);
  EXPECT_EQ(rep.errors(), 0u);
  EXPECT_EQ(rep.warnings(), 1u);
  EXPECT_TRUE(rep.clean());  // warnings do not make a schedule un-clean
}

TEST(HazardMinimal, OutOfPoolTileAndFootprintOverflowAreErrors) {
  const auto a = make_access(4, {}, {0});
  {
    const auto rep =
        analyze_hazards(one_tile(8), {place("ghost", a, 3, 0.0, 10.0)});
    EXPECT_EQ(rep.count(Rule::kOobCell), 1u);
  }
  {
    // Footprint of 4 columns placed at col0 = 6 of an 8-wide tile.
    const auto rep =
        analyze_hazards(one_tile(8), {place("wide", a, 0, 0.0, 10.0, 6)});
    EXPECT_EQ(rep.count(Rule::kOobCell), 1u);
  }
}

TEST(HazardIsolation, DisjointWindowsOnOneTileAreClean) {
  const auto a = make_access(4, {0}, {0}, {0}, true);
  const auto rep = analyze_hazards(
      one_tile(4), {place("first", a, 0, 0.0, 10.0),
                    place("second", a, 0, 10.0, 10.0)});
  EXPECT_TRUE(rep.clean());
  EXPECT_TRUE(rep.diagnostics.empty());
}

TEST(HazardIsolation, DifferentTilesNeverConflict) {
  TilePool pool;
  pool.tiles.assign(2, TileInfo{1, 4, 1});
  const auto a = make_access(4, {0}, {0}, {0}, true);
  const auto rep = analyze_hazards(
      pool, {place("left", a, 0, 0.0, 10.0), place("right", a, 1, 0.0, 10.0)});
  EXPECT_TRUE(rep.diagnostics.empty());
}

TEST(HazardIsolation, NonPositiveDurationIsAlwaysActive) {
  const auto w = make_access(4, {}, {0});
  const auto rep = analyze_hazards(
      one_tile(4), {place("open", w, 0, 0.0, 0.0),
                    place("late", w, 0, 1000.0, 1.0)});
  EXPECT_EQ(rep.count(Rule::kWawHazard), 1u);
}

// The zero-false-positive contract: every mapper output of the bench suite,
// scheduled alone or serialized, yields no hazard findings. run_suite's
// cross-tile gate (round-robin pool, per-tile serialized windows) must come
// back clean for the whole standard suite.
TEST(HazardSweep, StandardSuiteSchedulesClean) {
  const auto reports =
      run_suite(standard_suite(), {.reuse_cells = true, .verify = false,
                                   .lint = true});
  ASSERT_FALSE(reports.empty());
  for (const auto& r : reports) {
    EXPECT_TRUE(r.hazard_clean)
        << r.circuit << "/" << logic_family_name(r.family);
    EXPECT_EQ(r.hazard_findings, 0u)
        << r.circuit << "/" << logic_family_name(r.family);
  }
}

// Concurrent dispatch of one program against itself on one tile must trip
// every cell-level hazard class at once — the analyzer sees real mapper
// access sets here, not synthetic ones.
TEST(HazardSweep, RealProgramRacesItselfWhenWindowsOverlap) {
  const auto nl = ripple_carry_adder(2);
  const auto aig = Aig::from_netlist(nl);
  const auto prog = compile_imply(aig, true);
  const auto access = access_of(prog);
  TilePool pool;
  pool.tiles.push_back({access.rows, access.cols, 8});
  const auto rep = analyze_hazards(
      pool, {place("self/0", access, 0, 0.0, 0.0),
             place("self/1", access, 0, 0.0, 0.0)});
  EXPECT_FALSE(rep.clean());
  EXPECT_GE(rep.count(Rule::kWawHazard), 1u);
  EXPECT_GE(rep.count(Rule::kRawHazard), 1u);
  EXPECT_GE(rep.count(Rule::kAdcConflict), 1u);
}

}  // namespace
}  // namespace cim::eda::verify
