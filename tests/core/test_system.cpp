#include "core/cim_system.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace cim::core {
namespace {

CimSystemConfig sys_cfg(std::size_t tile_rows = 8, std::size_t tile_cols = 8) {
  CimSystemConfig cfg;
  cfg.tile.tile.rows = tile_rows;
  cfg.tile.tile.cols = tile_cols;
  cfg.tile.tile.adc_bits = 10;
  cfg.tile.weight_bits = 4;
  cfg.tile.array.model_ir_drop = false;
  cfg.tile.seed = 3;
  return cfg;
}

util::Matrix random_weights(std::size_t out, std::size_t in,
                            std::uint64_t seed) {
  util::Rng rng(seed);
  util::Matrix w(out, in);
  for (auto& v : w.flat())
    v = static_cast<double>(static_cast<long>(rng.uniform_int(31)) - 15);
  return w;
}

TEST(CimSystem, PartitionsIntoExpectedTileGrid) {
  const auto w = random_weights(20, 20, 3);
  CimSystem sys(w, sys_cfg(8, 8));
  // ceil(20/8) x ceil(20/8) = 3 x 3 tiles.
  EXPECT_EQ(sys.tile_count(), 9u);
  EXPECT_EQ(sys.in_dim(), 20u);
  EXPECT_EQ(sys.out_dim(), 20u);
}

TEST(CimSystem, SingleTileWhenFits) {
  const auto w = random_weights(4, 6, 5);
  CimSystem sys(w, sys_cfg(8, 8));
  EXPECT_EQ(sys.tile_count(), 1u);
}

TEST(CimSystem, IdealOracleExact) {
  const auto w = random_weights(10, 12, 7);
  CimSystem sys(w, sys_cfg(8, 8));
  util::Rng rng(9);
  std::vector<std::uint32_t> x(12);
  for (auto& v : x) v = static_cast<std::uint32_t>(rng.uniform_int(16));
  const auto y = sys.ideal_vmm_int(x);
  for (std::size_t o = 0; o < 10; ++o) {
    long ref = 0;
    for (std::size_t i = 0; i < 12; ++i)
      ref += static_cast<long>(w(o, i)) * static_cast<long>(x[i]);
    EXPECT_EQ(y[o], ref);
  }
}

TEST(CimSystem, PartitionedVmmTracksOracle) {
  const auto w = random_weights(20, 24, 11);
  CimSystem sys(w, sys_cfg(8, 8));
  util::Rng rng(13);
  util::RunningStats rel_err;
  for (int t = 0; t < 5; ++t) {
    std::vector<std::uint32_t> x(24);
    for (auto& v : x) v = static_cast<std::uint32_t>(rng.uniform_int(16));
    const auto y = sys.vmm_int(x, 4);
    const auto ref = sys.ideal_vmm_int(x);
    for (std::size_t o = 0; o < 20; ++o) {
      const double scale = std::max(32.0, std::abs(double(ref[o])));
      rel_err.add(std::abs(double(y[o] - ref[o])) / scale);
    }
  }
  EXPECT_LT(rel_err.mean(), 0.15);
}

TEST(CimSystem, StatsAggregateAcrossTiles) {
  const auto w = random_weights(16, 16, 15);
  CimSystem sys(w, sys_cfg(8, 8));
  std::vector<std::uint32_t> x(16, 5);
  (void)sys.vmm_int(x, 4);
  const auto& s = sys.stats();
  EXPECT_EQ(s.vmm_ops, 1u);
  EXPECT_GT(s.time_ns, 0.0);
  EXPECT_GT(s.energy_pj, 0.0);
  EXPECT_GT(s.movement_energy_pj, 0.0);  // partial sums crossed tiles
  EXPECT_GT(s.area_um2, 0.0);
}

TEST(CimSystem, MoreTilesMoreAreaAndMovement) {
  const auto w = random_weights(16, 16, 17);
  CimSystem coarse(w, sys_cfg(16, 16));
  CimSystem fine(w, sys_cfg(4, 4));
  EXPECT_GT(fine.tile_count(), coarse.tile_count());

  std::vector<std::uint32_t> x(16, 5);
  (void)coarse.vmm_int(x, 4);
  (void)fine.vmm_int(x, 4);
  EXPECT_GT(fine.stats().movement_energy_pj,
            coarse.stats().movement_energy_pj);
}

TEST(CimSystem, ClassifiedAsCimPeriphery) {
  EXPECT_EQ(CimSystem::arch_class(), arch::ArchClass::kCimPeriphery);
}

TEST(CimSystem, Validation) {
  util::Matrix empty;
  EXPECT_THROW(CimSystem(empty, sys_cfg()), std::invalid_argument);
  const auto w = random_weights(4, 4, 19);
  CimSystem sys(w, sys_cfg());
  std::vector<std::uint32_t> bad(3, 0);
  EXPECT_THROW((void)sys.vmm_int(bad, 4), std::invalid_argument);
}

}  // namespace
}  // namespace cim::core
