#include "core/bulk_bitwise.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace cim::core {
namespace {

TEST(BulkBitwise, StoreLoadRoundTrip) {
  BulkBitwiseEngine eng(4, 32);
  eng.store(0, 0xDEADBEEFu);
  eng.store(3, 0x12345678u);
  EXPECT_EQ(eng.load(0), 0xDEADBEEFu);
  EXPECT_EQ(eng.load(3), 0x12345678u);
}

class BulkOps : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BulkOps, AndOrXorMatchSoftware) {
  util::Rng rng(GetParam());
  BulkBitwiseEngine eng(8, 32, GetParam() + 1);
  const std::uint64_t a = rng() & 0xFFFFFFFFu;
  const std::uint64_t b = rng() & 0xFFFFFFFFu;
  eng.store(0, a);
  eng.store(1, b);
  eng.op_rows(2, 0, 1, crossbar::ScoutOp::kAnd);
  eng.op_rows(3, 0, 1, crossbar::ScoutOp::kOr);
  eng.op_rows(4, 0, 1, crossbar::ScoutOp::kXor);
  EXPECT_EQ(eng.load(2), a & b);
  EXPECT_EQ(eng.load(3), a | b);
  EXPECT_EQ(eng.load(4), a ^ b);
  // Operands unchanged (computation in the periphery, not the cells).
  EXPECT_EQ(eng.load(0), a);
  EXPECT_EQ(eng.load(1), b);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BulkOps, ::testing::Range<std::uint64_t>(0, 6));

TEST(BulkBitwise, LockstepTimeIndependentOfWidth) {
  BulkBitwiseEngine narrow(4, 8), wide(4, 64);
  narrow.store(0, 0xA5);
  narrow.store(1, 0x5A);
  wide.store(0, 0xA5A5A5A5A5A5A5A5ull);
  wide.store(1, 0x5A5A5A5A5A5A5A5Aull);
  narrow.op_rows(2, 0, 1, crossbar::ScoutOp::kAnd);
  wide.op_rows(2, 0, 1, crossbar::ScoutOp::kAnd);
  // One sense + one write cycle regardless of word width.
  EXPECT_DOUBLE_EQ(narrow.stats().lockstep_time_ns,
                   wide.stats().lockstep_time_ns);
}

TEST(BulkBitwise, BeatsComFBaselineOnEnergy) {
  BulkBitwiseEngine eng(8, 64);
  util::Rng rng(3);
  eng.store(0, rng());
  eng.store(1, rng());
  eng.reset_stats();
  for (int k = 0; k < 16; ++k)
    eng.op_rows(2, 0, 1, crossbar::ScoutOp::kXor);
  const auto base = eng.com_f_baseline(16);
  // CIM-P: no operand ever crosses the bus — the energy win holds at any
  // word width. (The latency win additionally needs the full memory-row
  // width, which the 64-bit word interface cannot express; see the
  // lockstep-time-vs-width test above.)
  EXPECT_LT(eng.stats().energy_pj, base.energy_pj);
}

TEST(BulkBitwise, Validation) {
  EXPECT_THROW(BulkBitwiseEngine(0, 8), std::invalid_argument);
  EXPECT_THROW(BulkBitwiseEngine(2, 65), std::invalid_argument);
  BulkBitwiseEngine eng(2, 8);
  EXPECT_THROW(eng.store(2, 0), std::out_of_range);
  EXPECT_THROW(eng.op_rows(0, 0, 2, crossbar::ScoutOp::kOr), std::out_of_range);
}

}  // namespace
}  // namespace cim::core
