#include "core/quantized_mlp.hpp"

#include <gtest/gtest.h>

namespace cim::core {
namespace {

struct Trained {
  nn::Dataset train;
  nn::Dataset test;
  nn::Mlp net;
};

Trained make_trained() {
  util::Rng rng(3);
  Trained t{nn::generate_digits(500, rng, 0.1),
            nn::generate_digits(150, rng, 0.1),
            nn::Mlp({nn::kPixels, 16, nn::kClasses}, rng)};
  t.net.fit(t.train, 40, 0.05, rng);
  return t;
}

TEST(QuantizedMlp, ReferenceKeepsAccuracy) {
  auto t = make_trained();
  ASSERT_GT(t.net.accuracy(t.test), 0.85);
  const auto q = QuantizedMlp::from_mlp(t.net, 4, 4, t.train);
  // INT4 weights/activations cost little on this task.
  EXPECT_GT(q.accuracy_reference(t.test), t.net.accuracy(t.test) - 0.1);
}

TEST(QuantizedMlp, MoreBitsNeverHurt) {
  auto t = make_trained();
  const auto q2 = QuantizedMlp::from_mlp(t.net, 2, 2, t.train);
  const auto q6 = QuantizedMlp::from_mlp(t.net, 6, 6, t.train);
  EXPECT_GE(q6.accuracy_reference(t.test) + 0.02,
            q2.accuracy_reference(t.test));
}

TEST(QuantizedMlp, WeightsWithinRange) {
  auto t = make_trained();
  const auto q = QuantizedMlp::from_mlp(t.net, 4, 4, t.train);
  for (const auto& layer : q.layers)
    for (const double w : layer.w_int.flat()) {
      EXPECT_LE(std::abs(w), 7.0);  // 2^(4-1) - 1
    }
}

TEST(QuantizedMlp, BitValidation) {
  auto t = make_trained();
  EXPECT_THROW((void)QuantizedMlp::from_mlp(t.net, 1, 4, t.train),
               std::invalid_argument);
  EXPECT_THROW((void)QuantizedMlp::from_mlp(t.net, 4, 9, t.train),
               std::invalid_argument);
}

TEST(CimMlpRunner, TileInferenceTracksReference) {
  auto t = make_trained();
  const auto q = QuantizedMlp::from_mlp(t.net, 4, 4, t.train);
  const double ref_acc = q.accuracy_reference(t.test);
  ASSERT_GT(ref_acc, 0.8);

  CimSystemConfig cfg;
  cfg.tile.tile.rows = 32;
  cfg.tile.tile.cols = 16;
  cfg.tile.tile.adc_bits = 10;
  cfg.tile.array.model_ir_drop = false;
  cfg.tile.seed = 5;
  CimMlpRunner runner(q, cfg);
  // The analog path adds device/ADC noise on top of quantization.
  EXPECT_GT(runner.accuracy(t.test), ref_acc - 0.15);

  const auto totals = runner.totals();
  EXPECT_GT(totals.tiles, 1u);
  EXPECT_GT(totals.energy_pj, 0.0);
  EXPECT_GT(totals.time_ns, 0.0);
  EXPECT_GT(totals.area_um2, 0.0);
}

TEST(CimMlpRunner, EmptyNetworkThrows) {
  QuantizedMlp empty;
  CimSystemConfig cfg;
  EXPECT_THROW(CimMlpRunner(empty, cfg), std::invalid_argument);
}

}  // namespace
}  // namespace cim::core
