#include "core/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace cim::core {
namespace {

TEST(Trace, RecordsEntries) {
  Trace trace(16);
  trace.record({OpKind::kRowActivate, 0, 1, 1.0, 0.5});
  trace.record({OpKind::kSenseColumns, 0, 1, 2.0, 1.5});
  EXPECT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace.total_recorded(), 2u);
}

TEST(Trace, RingBufferKeepsRecentWindow) {
  Trace trace(4);
  for (std::uint64_t i = 0; i < 10; ++i)
    trace.record({OpKind::kShiftAdd, 0, i, 0.0, 0.0});
  EXPECT_EQ(trace.size(), 4u);
  EXPECT_EQ(trace.total_recorded(), 10u);
}

TEST(Trace, WraparoundRetainsMostRecentEntriesInOrder) {
  Trace trace(4);
  for (std::uint64_t i = 0; i < 10; ++i)
    trace.record({OpKind::kShiftAdd, 0, /*cycle=*/i, 0.0, 0.0});
  // After 10 records into a 4-entry ring, the window is cycles 6..9,
  // chronological oldest-first.
  const auto win = trace.window();
  ASSERT_EQ(win.size(), 4u);
  for (std::uint64_t k = 0; k < 4; ++k) EXPECT_EQ(win[k].cycle, 6 + k);
}

TEST(Trace, WraparoundExactlyAtCapacityBoundary) {
  Trace trace(3);
  for (std::uint64_t i = 0; i < 4; ++i)  // one past capacity
    trace.record({OpKind::kRowActivate, 0, i, 0.0, 0.0});
  const auto win = trace.window();
  ASSERT_EQ(win.size(), 3u);
  EXPECT_EQ(win[0].cycle, 1u);  // oldest retained
  EXPECT_EQ(win[2].cycle, 3u);  // newest
}

TEST(Trace, PrintShowsNewestEntriesAfterWraparound) {
  Trace trace(4);
  for (std::uint64_t i = 0; i < 9; ++i)
    trace.record({OpKind::kShiftAdd, 0, i, 0.0, 0.0});
  std::ostringstream os;
  trace.print(os, 2);
  const auto s = os.str();
  // Window is cycles 5..8; the last 2 are 7 and 8, and the dropped ones
  // must not appear.
  EXPECT_NE(s.find("[7]"), std::string::npos);
  EXPECT_NE(s.find("[8]"), std::string::npos);
  EXPECT_EQ(s.find("[4]"), std::string::npos);
  EXPECT_NE(s.find("window of last 4"), std::string::npos);
  EXPECT_NE(s.find("9 ops total"), std::string::npos);
}

TEST(Trace, HistogramSurvivesWraparoundAndIsSortedByKind) {
  Trace trace(2);  // tiny ring: almost everything is evicted
  for (int i = 0; i < 5; ++i)
    trace.record({OpKind::kRowActivate, 0, 0, 0, 0});
  for (int i = 0; i < 3; ++i)
    trace.record({OpKind::kTileTransfer, 0, 0, 0, 0});
  trace.record({OpKind::kProgramCell, 0, 0, 0, 0});
  const auto hist = trace.histogram();
  // Counts cover total_recorded(), not just the 2 retained entries.
  ASSERT_EQ(hist.size(), 3u);
  EXPECT_EQ(hist[0].first, OpKind::kProgramCell);
  EXPECT_EQ(hist[0].second, 1u);
  EXPECT_EQ(hist[1].first, OpKind::kRowActivate);
  EXPECT_EQ(hist[1].second, 5u);
  EXPECT_EQ(hist[2].first, OpKind::kTileTransfer);
  EXPECT_EQ(hist[2].second, 3u);
}

TEST(Trace, HistogramCountsKinds) {
  Trace trace(16);
  trace.record({OpKind::kRowActivate, 0, 0, 0, 0});
  trace.record({OpKind::kRowActivate, 0, 1, 0, 0});
  trace.record({OpKind::kSenseColumns, 0, 2, 0, 0});
  const auto hist = trace.histogram();
  std::size_t activates = 0;
  for (const auto& [kind, n] : hist)
    if (kind == OpKind::kRowActivate) activates = n;
  EXPECT_EQ(activates, 2u);
}

TEST(Trace, PrintProducesReadableOutput) {
  Trace trace(8);
  trace.record({OpKind::kProgramCell, 3, 7, 1.5, 2.5});
  std::ostringstream os;
  trace.print(os);
  const auto s = os.str();
  EXPECT_NE(s.find("program"), std::string::npos);
  EXPECT_NE(s.find("tile 3"), std::string::npos);
}

TEST(Trace, ClearResets) {
  Trace trace(8);
  trace.record({OpKind::kLogicStep, 0, 0, 0, 0});
  trace.clear();
  EXPECT_EQ(trace.size(), 0u);
  EXPECT_EQ(trace.total_recorded(), 0u);
}

TEST(Trace, OpKindNamesKnown) {
  for (const auto k :
       {OpKind::kProgramCell, OpKind::kRowActivate, OpKind::kSenseColumns,
        OpKind::kShiftAdd, OpKind::kLogicStep, OpKind::kTileTransfer})
    EXPECT_NE(op_kind_name(k), "unknown");
}

}  // namespace
}  // namespace cim::core
