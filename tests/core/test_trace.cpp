#include "core/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace cim::core {
namespace {

TEST(Trace, RecordsEntries) {
  Trace trace(16);
  trace.record({OpKind::kRowActivate, 0, 1, 1.0, 0.5});
  trace.record({OpKind::kSenseColumns, 0, 1, 2.0, 1.5});
  EXPECT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace.total_recorded(), 2u);
}

TEST(Trace, RingBufferKeepsRecentWindow) {
  Trace trace(4);
  for (std::uint64_t i = 0; i < 10; ++i)
    trace.record({OpKind::kShiftAdd, 0, i, 0.0, 0.0});
  EXPECT_EQ(trace.size(), 4u);
  EXPECT_EQ(trace.total_recorded(), 10u);
}

TEST(Trace, HistogramCountsKinds) {
  Trace trace(16);
  trace.record({OpKind::kRowActivate, 0, 0, 0, 0});
  trace.record({OpKind::kRowActivate, 0, 1, 0, 0});
  trace.record({OpKind::kSenseColumns, 0, 2, 0, 0});
  const auto hist = trace.histogram();
  std::size_t activates = 0;
  for (const auto& [kind, n] : hist)
    if (kind == OpKind::kRowActivate) activates = n;
  EXPECT_EQ(activates, 2u);
}

TEST(Trace, PrintProducesReadableOutput) {
  Trace trace(8);
  trace.record({OpKind::kProgramCell, 3, 7, 1.5, 2.5});
  std::ostringstream os;
  trace.print(os);
  const auto s = os.str();
  EXPECT_NE(s.find("program"), std::string::npos);
  EXPECT_NE(s.find("tile 3"), std::string::npos);
}

TEST(Trace, ClearResets) {
  Trace trace(8);
  trace.record({OpKind::kLogicStep, 0, 0, 0, 0});
  trace.clear();
  EXPECT_EQ(trace.size(), 0u);
  EXPECT_EQ(trace.total_recorded(), 0u);
}

TEST(Trace, OpKindNamesKnown) {
  for (const auto k :
       {OpKind::kProgramCell, OpKind::kRowActivate, OpKind::kSenseColumns,
        OpKind::kShiftAdd, OpKind::kLogicStep, OpKind::kTileTransfer})
    EXPECT_NE(op_kind_name(k), "unknown");
}

}  // namespace
}  // namespace cim::core
