#include "core/cim_tile.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace cim::core {
namespace {

CimTileConfig small_tile(std::size_t rows = 16, std::size_t cols = 8) {
  CimTileConfig cfg;
  cfg.tile.rows = rows;
  cfg.tile.cols = cols;
  cfg.tile.adc_bits = 10;
  cfg.tile.adcs = 2;
  cfg.weight_bits = 4;
  cfg.array.model_ir_drop = false;
  cfg.seed = 7;
  return cfg;
}

util::Matrix random_weights(std::size_t out, std::size_t in, int bits,
                            std::uint64_t seed) {
  util::Rng rng(seed);
  util::Matrix w(out, in);
  const int span = (1 << bits) - 1;
  for (auto& v : w.flat())
    v = static_cast<double>(static_cast<long>(rng.uniform_int(2 * span + 1)) -
                            span);
  return w;
}

TEST(CimTile, IdealOracleIsExact) {
  CimTile tile(small_tile());
  const auto w = random_weights(8, 16, 4, 3);
  tile.program_weights(w);
  std::vector<std::uint32_t> x(16);
  util::Rng rng(5);
  for (auto& v : x) v = static_cast<std::uint32_t>(rng.uniform_int(16));
  const auto y = tile.ideal_vmm_int(x);
  for (std::size_t o = 0; o < 8; ++o) {
    long ref = 0;
    for (std::size_t i = 0; i < 16; ++i)
      ref += static_cast<long>(w(o, i)) * static_cast<long>(x[i]);
    EXPECT_EQ(y[o], ref);
  }
}

TEST(CimTile, AnalogVmmTracksOracle) {
  CimTile tile(small_tile());
  const auto w = random_weights(8, 16, 4, 7);
  tile.program_weights(w);
  util::Rng rng(9);
  util::RunningStats rel_err;
  for (int t = 0; t < 10; ++t) {
    std::vector<std::uint32_t> x(16);
    for (auto& v : x) v = static_cast<std::uint32_t>(rng.uniform_int(16));
    const auto y = tile.vmm_int(x, 4);
    const auto ref = tile.ideal_vmm_int(x);
    for (std::size_t o = 0; o < 8; ++o) {
      const double scale = std::max(16.0, std::abs(double(ref[o])));
      rel_err.add(std::abs(double(y[o] - ref[o])) / scale);
    }
  }
  EXPECT_LT(rel_err.mean(), 0.15);
}

TEST(CimTile, ZeroInputGivesZeroOutput) {
  CimTile tile(small_tile());
  tile.program_weights(random_weights(8, 16, 4, 11));
  std::vector<std::uint32_t> x(16, 0);
  for (const long y : tile.vmm_int(x, 4)) EXPECT_EQ(y, 0);
}

TEST(CimTile, LowAdcResolutionDegradesAccuracy) {
  auto hi_cfg = small_tile();
  hi_cfg.tile.adc_bits = 12;
  auto lo_cfg = small_tile();
  lo_cfg.tile.adc_bits = 3;

  const auto w = random_weights(8, 16, 4, 13);
  CimTile hi(hi_cfg), lo(lo_cfg);
  hi.program_weights(w);
  lo.program_weights(w);

  util::Rng rng(15);
  util::RunningStats err_hi, err_lo;
  for (int t = 0; t < 10; ++t) {
    std::vector<std::uint32_t> x(16);
    for (auto& v : x) v = static_cast<std::uint32_t>(rng.uniform_int(16));
    const auto ref = hi.ideal_vmm_int(x);
    const auto yh = hi.vmm_int(x, 4);
    const auto yl = lo.vmm_int(x, 4);
    for (std::size_t o = 0; o < 8; ++o) {
      err_hi.add(std::abs(double(yh[o] - ref[o])));
      err_lo.add(std::abs(double(yl[o] - ref[o])));
    }
  }
  EXPECT_GT(err_lo.mean(), err_hi.mean());
}

TEST(CimTile, EnergyDominatedByAdc) {
  // Fig. 5's power story holds at tile level too.
  CimTile tile(small_tile());
  tile.program_weights(random_weights(8, 16, 4, 17));
  std::vector<std::uint32_t> x(16, 7);
  (void)tile.vmm_int(x, 8);
  const auto& s = tile.stats();
  EXPECT_GT(s.adc_energy_pj, s.array_energy_pj);
  EXPECT_GT(s.adc_energy_pj, s.dac_energy_pj);
  EXPECT_NEAR(s.energy_pj,
              s.adc_energy_pj + s.array_energy_pj + s.dac_energy_pj +
                  s.digital_energy_pj,
              1e-6);
}

TEST(CimTile, CyclesEqualInputBits) {
  CimTile tile(small_tile());
  tile.program_weights(random_weights(8, 16, 4, 19));
  std::vector<std::uint32_t> x(16, 3);
  (void)tile.vmm_int(x, 6);
  EXPECT_EQ(tile.stats().cycles, 6u);
  EXPECT_EQ(tile.stats().vmm_ops, 1u);
}

TEST(CimTile, FaultsSkewResults) {
  const auto w = random_weights(8, 16, 4, 21);
  CimTile clean(small_tile()), faulty(small_tile());
  clean.program_weights(w);

  util::Rng rng(23);
  const auto map = fault::FaultMap::from_yield(
      16, 8, 0.7, fault::FaultMix::stuck_at_only(), rng);
  faulty.apply_faults(map, map);
  faulty.program_weights(w);

  std::vector<std::uint32_t> x(16, 10);
  const auto ref = clean.ideal_vmm_int(x);
  const auto yc = clean.vmm_int(x, 4);
  const auto yf = faulty.vmm_int(x, 4);
  double err_c = 0.0, err_f = 0.0;
  for (std::size_t o = 0; o < 8; ++o) {
    err_c += std::abs(double(yc[o] - ref[o]));
    err_f += std::abs(double(yf[o] - ref[o]));
  }
  EXPECT_GT(err_f, err_c);
}

TEST(CimTile, AreaIncludesPeriphery) {
  CimTile tile(small_tile());
  EXPECT_GT(tile.area_um2(), 0.0);
}

TEST(CimTile, ShapeValidation) {
  CimTile tile(small_tile());
  util::Matrix wrong(3, 3, 0.0);
  EXPECT_THROW(tile.program_weights(wrong), std::invalid_argument);
  std::vector<std::uint32_t> bad(5, 0);
  EXPECT_THROW((void)tile.vmm_int(bad, 4), std::invalid_argument);
  std::vector<std::uint32_t> ok(16, 0);
  EXPECT_THROW((void)tile.vmm_int(ok, 0), std::invalid_argument);
}

TEST(CimTile, TraceRecordsOps) {
  CimTile tile(small_tile());
  tile.program_weights(random_weights(8, 16, 4, 25));
  std::vector<std::uint32_t> x(16, 1);
  (void)tile.vmm_int(x, 4);
  EXPECT_GT(tile.trace().total_recorded(), 4u);
}

}  // namespace
}  // namespace cim::core
