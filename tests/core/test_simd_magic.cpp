#include "core/simd_magic.hpp"

#include <gtest/gtest.h>

#include "eda/aig.hpp"
#include "eda/bench_circuits.hpp"

namespace cim::core {
namespace {

eda::MagicProgram program_of(const eda::Netlist& nl) {
  return eda::compile_magic(
      eda::Aig::from_netlist(nl).to_netlist().to_nor_only(), true);
}

TEST(SimdMagic, BatchMatchesTruthTablesOnEveryLane) {
  const auto nl = eda::ripple_carry_adder(2);
  const auto tts = nl.truth_tables();
  SimdMagicUnit unit(program_of(nl), /*rows=*/16);

  std::vector<std::uint64_t> batch;
  for (std::uint64_t a = 0; a < 16; ++a) batch.push_back(a);
  const auto out = unit.execute_batch(batch);
  ASSERT_EQ(out.size(), 16u);
  for (std::size_t lane = 0; lane < 16; ++lane)
    for (std::size_t o = 0; o < tts.size(); ++o)
      EXPECT_EQ(out[lane][o], tts[o].get(batch[lane]))
          << "lane " << lane << " out " << o;
}

TEST(SimdMagic, LatencyIndependentOfLaneCount) {
  const auto prog = program_of(eda::parity(4));
  SimdMagicUnit small(prog, 4);
  SimdMagicUnit large(prog, 64);
  std::vector<std::uint64_t> a4(4, 5), a64(64, 5);
  (void)small.execute_batch(a4);
  (void)large.execute_batch(a64);
  EXPECT_DOUBLE_EQ(small.last_batch().latency_ns,
                   large.last_batch().latency_ns);
  // Throughput scales with rows (the [70] SIMD claim).
  EXPECT_NEAR(large.last_batch().throughput_per_us /
                  small.last_batch().throughput_per_us,
              16.0, 0.01);
}

TEST(SimdMagic, EnergyScalesWithLanes) {
  const auto prog = program_of(eda::parity(4));
  SimdMagicUnit unit(prog, 32);
  std::vector<std::uint64_t> a8(8, 3), a32(32, 3);
  (void)unit.execute_batch(a8);
  const double e8 = unit.last_batch().energy_pj;
  (void)unit.execute_batch(a32);
  const double e32 = unit.last_batch().energy_pj;
  EXPECT_GT(e32, 2.0 * e8);
}

TEST(SimdMagic, PartialBatchLeavesLanesIdle) {
  const auto prog = program_of(eda::parity(3));
  SimdMagicUnit unit(prog, 8);
  std::vector<std::uint64_t> three = {1, 2, 3};
  const auto out = unit.execute_batch(three);
  EXPECT_EQ(out.size(), 3u);
  EXPECT_EQ(unit.last_batch().rows, 3u);
}

TEST(SimdMagic, Validation) {
  const auto prog = program_of(eda::parity(3));
  EXPECT_THROW(SimdMagicUnit(prog, 0), std::invalid_argument);
  SimdMagicUnit unit(prog, 2);
  std::vector<std::uint64_t> too_many(3, 0);
  EXPECT_THROW((void)unit.execute_batch(too_many), std::invalid_argument);
}

}  // namespace
}  // namespace cim::core
