#include "fault/defects.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace cim::fault {
namespace {

TEST(Defects, OxidePinholeMapsToSa1) {
  util::Rng rng(3);
  const auto faults =
      map_defect_to_faults({DefectKind::kOxidePinhole, 2, 3}, 8, 8, rng);
  ASSERT_EQ(faults.size(), 1u);
  EXPECT_EQ(faults[0].kind, FaultKind::kStuckAtOne);
  EXPECT_EQ(faults[0].row, 2u);
  EXPECT_EQ(faults[0].col, 3u);
}

TEST(Defects, FormingFailureMapsToSa0) {
  util::Rng rng(5);
  const auto faults =
      map_defect_to_faults({DefectKind::kFormingFailure, 0, 0}, 8, 8, rng);
  ASSERT_EQ(faults.size(), 1u);
  EXPECT_EQ(faults[0].kind, FaultKind::kStuckAtZero);
}

TEST(Defects, BrokenWordlineAffectsRowTail) {
  // Paper: "a broken word-line ... leads to the SA1 behavior".
  util::Rng rng(7);
  const auto faults =
      map_defect_to_faults({DefectKind::kBrokenWordline, 3, 5}, 8, 8, rng);
  ASSERT_EQ(faults.size(), 3u);  // columns 5, 6, 7
  for (const auto& fd : faults) {
    EXPECT_EQ(fd.kind, FaultKind::kStuckAtOne);
    EXPECT_EQ(fd.row, 3u);
    EXPECT_GE(fd.col, 5u);
  }
}

TEST(Defects, BrokenBitlineAffectsColumnTail) {
  util::Rng rng(9);
  const auto faults =
      map_defect_to_faults({DefectKind::kBrokenBitline, 6, 2}, 8, 8, rng);
  ASSERT_EQ(faults.size(), 2u);  // rows 6, 7
  for (const auto& fd : faults) {
    EXPECT_EQ(fd.kind, FaultKind::kStuckAtZero);
    EXPECT_EQ(fd.col, 2u);
  }
}

TEST(Defects, DecoderDefectAliasesToDifferentRow) {
  util::Rng rng(11);
  for (int i = 0; i < 20; ++i) {
    const auto faults =
        map_defect_to_faults({DefectKind::kDecoderDefect, 4, 0}, 8, 8, rng);
    ASSERT_EQ(faults.size(), 1u);
    EXPECT_EQ(faults[0].kind, FaultKind::kAddressDecoder);
    EXPECT_NE(faults[0].aux_row, 4u);
    EXPECT_LT(faults[0].aux_row, 8u);
  }
}

TEST(Defects, BridgeCouplesToHorizontalNeighbour) {
  util::Rng rng(13);
  const auto faults =
      map_defect_to_faults({DefectKind::kCellBridge, 1, 7}, 8, 8, rng);
  ASSERT_EQ(faults.size(), 1u);
  EXPECT_EQ(faults[0].kind, FaultKind::kCoupling);
  EXPECT_EQ(faults[0].aux_col, 6u);  // last column bridges left
}

TEST(Defects, NarrowFilamentRaisesWriteVariation) {
  util::Rng rng(15);
  const auto faults =
      map_defect_to_faults({DefectKind::kNarrowFilament, 0, 0}, 8, 8, rng);
  ASSERT_EQ(faults.size(), 1u);
  EXPECT_EQ(faults[0].kind, FaultKind::kWriteVariation);
  EXPECT_GE(faults[0].severity, 3.0);
}

TEST(Defects, OutOfArrayThrows) {
  util::Rng rng(17);
  EXPECT_THROW(
      (void)map_defect_to_faults({DefectKind::kOxidePinhole, 8, 0}, 8, 8, rng),
      std::out_of_range);
}

TEST(Defects, InjectDefectsPopulatesMap) {
  util::Rng rng(19);
  const auto map = inject_defects(32, 32, 20, rng);
  EXPECT_FALSE(map.empty());
  // Line breaks expand to multiple cell faults, so usually >= injected count.
  EXPECT_GE(map.all().size(), 10u);
}

TEST(Defects, AllDefectKindsHaveNames) {
  for (const auto k : all_defect_kinds()) EXPECT_NE(defect_name(k), "unknown");
  EXPECT_EQ(all_defect_kinds().size(), 8u);
}

}  // namespace
}  // namespace cim::fault
