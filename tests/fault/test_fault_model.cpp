#include "fault/fault_model.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string_view>

namespace cim::fault {
namespace {

TEST(FaultModel, HardSoftClassificationMatchesFig6) {
  // Hard faults freeze the cell.
  EXPECT_TRUE(is_hard(FaultKind::kStuckAtZero));
  EXPECT_TRUE(is_hard(FaultKind::kStuckAtOne));
  EXPECT_TRUE(is_hard(FaultKind::kOverForming));
  EXPECT_TRUE(is_hard(FaultKind::kEnduranceWearout));
  // Soft faults deviate but remain tunable.
  EXPECT_FALSE(is_hard(FaultKind::kReadDisturb));
  EXPECT_FALSE(is_hard(FaultKind::kWriteDisturb));
  EXPECT_FALSE(is_hard(FaultKind::kWriteVariation));
  EXPECT_FALSE(is_hard(FaultKind::kTransitionUp));
}

TEST(FaultModel, StaticDynamicClassificationMatchesFig6) {
  // Static: fabrication-time.
  EXPECT_TRUE(is_static(FaultKind::kStuckAtZero));
  EXPECT_TRUE(is_static(FaultKind::kOverForming));
  // Dynamic: field operation.
  EXPECT_FALSE(is_static(FaultKind::kReadDisturb));
  EXPECT_FALSE(is_static(FaultKind::kWriteDisturb));
  EXPECT_FALSE(is_static(FaultKind::kWriteVariation));
  EXPECT_FALSE(is_static(FaultKind::kEnduranceWearout));
}

TEST(FaultModel, Fig6QuadrantsAreAllPopulated) {
  // The four quadrants of Fig. 6 must each contain at least one fault kind.
  bool hard_static = false, hard_dynamic = false;
  bool soft_static = false, soft_dynamic = false;
  for (const auto k : cell_fault_kinds()) {
    if (is_hard(k) && is_static(k)) hard_static = true;
    if (is_hard(k) && !is_static(k)) hard_dynamic = true;
    if (!is_hard(k) && is_static(k)) soft_static = true;
    if (!is_hard(k) && !is_static(k)) soft_dynamic = true;
  }
  EXPECT_TRUE(hard_static);    // fabrication defect
  EXPECT_TRUE(hard_dynamic);   // endurance limitation
  EXPECT_TRUE(soft_static);    // fabrication variation (via transition)
  EXPECT_TRUE(soft_dynamic);   // read/write disturbance, write variation
}

TEST(FaultModel, ArrayLevelKinds) {
  EXPECT_TRUE(is_array_level(FaultKind::kAddressDecoder));
  EXPECT_TRUE(is_array_level(FaultKind::kCoupling));
  EXPECT_FALSE(is_array_level(FaultKind::kStuckAtZero));
}

TEST(FaultModel, NamesAreUniqueAndKnown) {
  std::set<std::string_view> names;
  for (const auto k : all_fault_kinds()) {
    const auto n = fault_name(k);
    EXPECT_NE(n, "unknown");
    EXPECT_TRUE(names.insert(n).second) << "duplicate name " << n;
  }
}

TEST(FaultModel, KindListsConsistent) {
  EXPECT_EQ(all_fault_kinds().size(), cell_fault_kinds().size() + 2);
}

}  // namespace
}  // namespace cim::fault
