#include "fault/fault_map.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace cim::fault {
namespace {

TEST(FaultMap, EmptyByDefault) {
  FaultMap map(8, 8);
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.cell_fault_count(), 0u);
  EXPECT_DOUBLE_EQ(map.faulty_cell_fraction(), 0.0);
}

TEST(FaultMap, AddAndQueryCellFault) {
  FaultMap map(4, 4);
  map.add({FaultKind::kStuckAtOne, 2, 3, 0, 0, 1.0});
  const auto fd = map.cell_fault(2, 3);
  ASSERT_TRUE(fd.has_value());
  EXPECT_EQ(fd->kind, FaultKind::kStuckAtOne);
  EXPECT_FALSE(map.cell_fault(3, 2).has_value());
}

TEST(FaultMap, CellFaultReplacesExisting) {
  FaultMap map(4, 4);
  map.add({FaultKind::kStuckAtOne, 1, 1, 0, 0, 1.0});
  map.add({FaultKind::kStuckAtZero, 1, 1, 0, 0, 1.0});
  EXPECT_EQ(map.cell_fault(1, 1)->kind, FaultKind::kStuckAtZero);
  EXPECT_EQ(map.cell_fault_count(), 1u);
}

TEST(FaultMap, OutOfRangeThrows) {
  FaultMap map(4, 4);
  EXPECT_THROW(map.add({FaultKind::kStuckAtZero, 4, 0, 0, 0, 1.0}),
               std::out_of_range);
  EXPECT_THROW(map.add({FaultKind::kAddressDecoder, 0, 0, 9, 0, 1.0}),
               std::out_of_range);
}

TEST(FaultMap, ArrayLevelFaultsAccumulate) {
  FaultMap map(4, 4);
  map.add({FaultKind::kAddressDecoder, 0, 0, 1, 0, 1.0});
  map.add({FaultKind::kAddressDecoder, 2, 0, 3, 0, 1.0});
  map.add({FaultKind::kCoupling, 1, 1, 1, 2, 1.0});
  EXPECT_EQ(map.decoder_faults().size(), 2u);
  EXPECT_EQ(map.coupling_faults().size(), 1u);
  EXPECT_EQ(map.all().size(), 3u);
}

TEST(FaultMap, FromYieldHitsTargetFraction) {
  util::Rng rng(3);
  const auto map = FaultMap::from_yield(64, 64, 0.9, FaultMix{}, rng);
  EXPECT_NEAR(map.faulty_cell_fraction(), 0.1, 0.03);
}

TEST(FaultMap, PerfectYieldMeansNoFaults) {
  util::Rng rng(5);
  const auto map = FaultMap::from_yield(32, 32, 1.0, FaultMix{}, rng);
  EXPECT_TRUE(map.empty());
}

TEST(FaultMap, ZeroYieldFaultsEverything) {
  util::Rng rng(7);
  const auto map = FaultMap::from_yield(16, 16, 0.0, FaultMix{}, rng);
  EXPECT_EQ(map.cell_fault_count(), 256u);
}

TEST(FaultMap, InvalidYieldThrows) {
  util::Rng rng(9);
  EXPECT_THROW((void)FaultMap::from_yield(8, 8, 1.5, FaultMix{}, rng),
               std::invalid_argument);
}

TEST(FaultMap, WithFaultCountExact) {
  util::Rng rng(11);
  const auto map =
      FaultMap::with_fault_count(32, 32, 100, FaultMix::stuck_at_only(), rng);
  EXPECT_EQ(map.cell_fault_count(), 100u);
}

TEST(FaultMap, WithFaultCountTooManyThrows) {
  util::Rng rng(13);
  EXPECT_THROW((void)FaultMap::with_fault_count(4, 4, 17, FaultMix{}, rng),
               std::invalid_argument);
}

TEST(FaultMap, StuckAtOnlyMixProducesOnlyStuckFaults) {
  util::Rng rng(15);
  const auto map =
      FaultMap::with_fault_count(32, 32, 200, FaultMix::stuck_at_only(), rng);
  EXPECT_EQ(map.count(FaultKind::kStuckAtZero) +
                map.count(FaultKind::kStuckAtOne),
            200u);
}

TEST(FaultMap, MixProportionsApproximatelyRespected) {
  util::Rng rng(17);
  FaultMix mix;  // default: 40% SA0, 25% SA1, ...
  const auto map = FaultMap::with_fault_count(64, 64, 2000, mix, rng);
  const double sa0 = static_cast<double>(map.count(FaultKind::kStuckAtZero));
  EXPECT_NEAR(sa0 / 2000.0, 0.40, 0.05);
}

TEST(FaultMap, AllZeroMixThrows) {
  util::Rng rng(19);
  FaultMix mix;
  mix.sa0 = mix.sa1 = mix.transition = mix.write_variation = 0.0;
  mix.read_disturb = mix.write_disturb = mix.over_forming = 0.0;
  EXPECT_THROW((void)FaultMap::with_fault_count(8, 8, 2, mix, rng),
               std::invalid_argument);
}

TEST(FaultMap, WriteVariationCarriesSeverity) {
  util::Rng rng(21);
  FaultMix mix;
  mix.sa0 = mix.sa1 = mix.transition = 0.0;
  mix.write_variation = 1.0;
  mix.read_disturb = mix.write_disturb = mix.over_forming = 0.0;
  const auto map = FaultMap::with_fault_count(8, 8, 10, mix, rng);
  for (const auto& fd : map.all()) {
    EXPECT_EQ(fd.kind, FaultKind::kWriteVariation);
    EXPECT_GE(fd.severity, 2.0);
  }
}

}  // namespace
}  // namespace cim::fault
