#include "periphery/adc.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace cim::periphery {
namespace {

TEST(Adc, QuantizeDequantizeRoundTrip) {
  Adc adc({.bits = 8, .full_scale_ua = 1000.0});
  for (double x = 0.0; x <= 1000.0; x += 37.0) {
    const double back = adc.dequantize(adc.quantize(x));
    EXPECT_NEAR(back, x, adc.lsb_ua());
  }
}

TEST(Adc, ClipsOutsideRange) {
  Adc adc({.bits = 4, .full_scale_ua = 100.0});
  EXPECT_EQ(adc.quantize(-5.0), 0u);
  EXPECT_EQ(adc.quantize(500.0), adc.max_code());
}

TEST(Adc, MaxCodeMatchesBits) {
  EXPECT_EQ(Adc({.bits = 1}).max_code(), 1u);
  EXPECT_EQ(Adc({.bits = 8}).max_code(), 255u);
  EXPECT_EQ(Adc({.bits = 12}).max_code(), 4095u);
}

TEST(Adc, LsbShrinksWithResolution) {
  Adc a4({.bits = 4, .full_scale_ua = 100.0});
  Adc a8({.bits = 8, .full_scale_ua = 100.0});
  EXPECT_GT(a4.lsb_ua(), 15.0 * a8.lsb_ua());
  EXPECT_DOUBLE_EQ(a8.max_quantization_error_ua(), 0.5 * a8.lsb_ua());
}

class AdcBitsSweep : public ::testing::TestWithParam<int> {};

TEST_P(AdcBitsSweep, QuantizationErrorBounded) {
  const int bits = GetParam();
  Adc adc({.bits = bits, .full_scale_ua = 512.0});
  for (double x = 0.0; x < 512.0; x += 11.3) {
    const double err = std::abs(adc.dequantize(adc.quantize(x)) - x);
    EXPECT_LE(err, adc.max_quantization_error_ua() * 1.0001);
  }
}

TEST_P(AdcBitsSweep, CostGrowsWithResolution) {
  const int bits = GetParam();
  if (bits >= 14) return;
  Adc lo({.bits = bits});
  Adc hi({.bits = bits + 1});
  EXPECT_GT(hi.area_um2(), lo.area_um2());
  EXPECT_GT(hi.power_mw(), lo.power_mw());
}

INSTANTIATE_TEST_SUITE_P(Resolutions, AdcBitsSweep,
                         ::testing::Values(2, 4, 6, 8, 10, 12));

TEST(Adc, IsaacReferencePoint) {
  // The cost model is anchored at ISAAC's 8-bit 1.28 GS/s SAR ADC.
  Adc adc({.bits = 8, .kind = AdcKind::kSar, .sample_rate_gsps = 1.28});
  EXPECT_NEAR(adc.area_um2(), 1200.0, 1.0);
  EXPECT_NEAR(adc.power_mw(), 2.0, 0.01);
}

TEST(Adc, AreaDoublesPerBit) {
  // "area/power increases drastically as we [add levels]" (Section II.E).
  Adc a({.bits = 6});
  Adc b({.bits = 8});
  EXPECT_NEAR(b.area_um2() / a.area_um2(), 4.0, 0.01);
}

TEST(Adc, FlashCostsMoreButConvertsFaster) {
  Adc sar({.bits = 8, .kind = AdcKind::kSar});
  Adc flash({.bits = 8, .kind = AdcKind::kFlash});
  EXPECT_GT(flash.area_um2(), sar.area_um2());
  EXPECT_GT(flash.power_mw(), sar.power_mw());
  EXPECT_LE(flash.latency_ns(), sar.latency_ns());
}

TEST(Adc, EnergyPerSampleConsistent) {
  Adc adc({.bits = 8, .sample_rate_gsps = 2.0});
  EXPECT_NEAR(adc.energy_per_sample_pj(), adc.power_mw() / 2.0, 1e-9);
}

TEST(Adc, InvalidConfigThrows) {
  EXPECT_THROW(Adc({.bits = 0}), std::invalid_argument);
  EXPECT_THROW(Adc({.bits = 15}), std::invalid_argument);
  EXPECT_THROW(Adc({.bits = 8, .sample_rate_gsps = 0.0}), std::invalid_argument);
  EXPECT_THROW(Adc({.bits = 8, .full_scale_ua = -1.0}), std::invalid_argument);
}

}  // namespace
}  // namespace cim::periphery
