#include "periphery/tile_cost.hpp"

#include <gtest/gtest.h>

namespace cim::periphery {
namespace {

TileConfig isaac_like() {
  TileConfig cfg;
  cfg.rows = 128;
  cfg.cols = 128;
  cfg.adc_bits = 8;
  cfg.adcs = 1;
  cfg.dac_bits = 1;
  cfg.input_bits = 8;
  return cfg;
}

TEST(TileCost, AllBlocksPresent) {
  const auto blocks = tile_breakdown(isaac_like());
  ASSERT_EQ(blocks.size(), 7u);
  for (const auto& b : blocks) {
    EXPECT_GT(b.area_um2, 0.0) << b.name;
    EXPECT_GT(b.power_mw, 0.0) << b.name;
  }
}

TEST(TileCost, AdcDominatesAreaAtEightBits) {
  // Fig. 5: ADC dominates CIM die area and power.
  const auto blocks = tile_breakdown(isaac_like());
  EXPECT_GT(area_share(blocks, "ADC"), 0.5);
  EXPECT_GT(power_share(blocks, "ADC"), 0.5);
}

TEST(TileCost, CrossbarItselfIsTiny) {
  const auto blocks = tile_breakdown(isaac_like());
  EXPECT_LT(area_share(blocks, "crossbar"), 0.1);
}

TEST(TileCost, AdcShareGrowsWithResolution) {
  auto lo = isaac_like();
  lo.adc_bits = 4;
  auto hi = isaac_like();
  hi.adc_bits = 8;
  EXPECT_GT(area_share(tile_breakdown(hi), "ADC"),
            area_share(tile_breakdown(lo), "ADC"));
}

TEST(TileCost, MoreAdcsMoreAreaLessLatency) {
  auto one = isaac_like();
  auto eight = isaac_like();
  eight.adcs = 8;
  EXPECT_GT(total_cost(tile_breakdown(eight)).area_um2,
            total_cost(tile_breakdown(one)).area_um2);
  EXPECT_LT(tile_vmm_latency_ns(eight), tile_vmm_latency_ns(one));
}

TEST(TileCost, TotalsAreSums) {
  const auto blocks = tile_breakdown(isaac_like());
  const auto t = total_cost(blocks);
  double area = 0.0, power = 0.0;
  for (const auto& b : blocks) {
    area += b.area_um2;
    power += b.power_mw;
  }
  EXPECT_DOUBLE_EQ(t.area_um2, area);
  EXPECT_DOUBLE_EQ(t.power_mw, power);
}

TEST(TileCost, SharesSumToOne) {
  const auto blocks = tile_breakdown(isaac_like());
  double share = 0.0;
  for (const auto& b : blocks) share += area_share(blocks, b.name);
  EXPECT_NEAR(share, 1.0, 1e-9);
}

TEST(TileCost, LatencyScalesWithInputBits) {
  auto cfg = isaac_like();
  cfg.input_bits = 8;
  const double t8 = tile_vmm_latency_ns(cfg);
  cfg.input_bits = 4;
  EXPECT_NEAR(tile_vmm_latency_ns(cfg), t8 / 2.0, 1e-9);
}

TEST(TileCost, EnergyScalesWithInputBits) {
  auto cfg = isaac_like();
  cfg.input_bits = 8;
  const double e8 = tile_vmm_energy_pj(cfg);
  cfg.input_bits = 4;
  EXPECT_NEAR(tile_vmm_energy_pj(cfg), e8 / 2.0, 1e-9);
}

TEST(TileCost, InvalidConfigThrows) {
  auto cfg = isaac_like();
  cfg.rows = 0;
  EXPECT_THROW((void)tile_breakdown(cfg), std::invalid_argument);
  cfg = isaac_like();
  cfg.adcs = 0;
  EXPECT_THROW((void)tile_breakdown(cfg), std::invalid_argument);
}

TEST(TileCost, UnknownBlockShareIsZero) {
  const auto blocks = tile_breakdown(isaac_like());
  EXPECT_DOUBLE_EQ(area_share(blocks, "no-such-block"), 0.0);
  EXPECT_DOUBLE_EQ(power_share(blocks, "no-such-block"), 0.0);
}

}  // namespace
}  // namespace cim::periphery
