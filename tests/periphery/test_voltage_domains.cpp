#include "periphery/voltage_domains.hpp"

#include <gtest/gtest.h>

namespace cim::periphery {
namespace {

TEST(VoltageDomains, ReadRailIsFree) {
  // v_read below vdd needs no pump; a same-rail write plan has no overhead.
  VoltagePlan plan{1.0, 0.2, 1.0, 0.0};
  const auto rep = analyze_voltage_domains(plan, 128);
  EXPECT_TRUE(rep.rails.empty());
  EXPECT_DOUBLE_EQ(rep.total_area_um2, 0.0);
  EXPECT_DOUBLE_EQ(rep.write_energy_multiplier, 1.0);
}

TEST(VoltageDomains, WriteRailNeedsPumpAndShifters) {
  VoltagePlan plan{1.0, 0.2, 2.0, 0.0};
  const auto rep = analyze_voltage_domains(plan, 128);
  ASSERT_EQ(rep.rails.size(), 1u);
  EXPECT_GT(rep.rails[0].pump_area_um2, 0.0);
  EXPECT_GT(rep.rails[0].shifter_area_um2, 0.0);
  EXPECT_LT(rep.rails[0].pump_efficiency, 1.0);
  EXPECT_GT(rep.write_energy_multiplier, 1.0);
}

TEST(VoltageDomains, HigherBoostCostsMore) {
  VoltagePlan low{1.0, 0.2, 2.0, 0.0};
  VoltagePlan high{1.0, 0.2, 3.0, 0.0};
  const auto rl = analyze_voltage_domains(low, 128);
  const auto rh = analyze_voltage_domains(high, 128);
  EXPECT_GT(rh.total_area_um2, rl.total_area_um2);
  EXPECT_GT(rh.write_energy_multiplier, rl.write_energy_multiplier);
}

TEST(VoltageDomains, ProgramRailAddsSecondDomain) {
  // FeRFET-style plan: operation at vdd, programming at 2.5x (Section V.A).
  VoltagePlan plan{1.0, 0.2, 2.0, 2.5};
  const auto rep = analyze_voltage_domains(plan, 64);
  EXPECT_EQ(rep.rails.size(), 2u);
}

TEST(VoltageDomains, ShifterAreaScalesWithRows) {
  VoltagePlan plan{1.0, 0.2, 2.0, 0.0};
  const auto small = analyze_voltage_domains(plan, 32);
  const auto large = analyze_voltage_domains(plan, 256);
  EXPECT_GT(large.total_area_um2, small.total_area_um2);
}

TEST(VoltageDomains, Validation) {
  VoltagePlan bad{0.0, 0.2, 2.0, 0.0};
  EXPECT_THROW((void)analyze_voltage_domains(bad, 8), std::invalid_argument);
}

}  // namespace
}  // namespace cim::periphery
