#include "periphery/dac.hpp"

#include <gtest/gtest.h>

namespace cim::periphery {
namespace {

TEST(Dac, OneBitDriverIsBinary) {
  Dac dac({.bits = 1, .v_max = 1.2});
  EXPECT_DOUBLE_EQ(dac.to_voltage(0), 0.0);
  EXPECT_DOUBLE_EQ(dac.to_voltage(1), 1.2);
}

TEST(Dac, MultiBitLinearRamp) {
  Dac dac({.bits = 3, .v_max = 7.0});
  for (std::uint32_t c = 0; c <= 7; ++c)
    EXPECT_NEAR(dac.to_voltage(c), static_cast<double>(c), 1e-12);
}

TEST(Dac, CodeClamped) {
  Dac dac({.bits = 2, .v_max = 3.0});
  EXPECT_DOUBLE_EQ(dac.to_voltage(99), 3.0);
}

TEST(Dac, BitSerialPulsesLsbFirst) {
  const auto pulses = Dac::bit_serial_pulses(0b1011u, 4, 0.5);
  ASSERT_EQ(pulses.size(), 4u);
  EXPECT_DOUBLE_EQ(pulses[0], 0.5);  // bit 0
  EXPECT_DOUBLE_EQ(pulses[1], 0.5);  // bit 1
  EXPECT_DOUBLE_EQ(pulses[2], 0.0);  // bit 2
  EXPECT_DOUBLE_EQ(pulses[3], 0.5);  // bit 3
}

TEST(Dac, BitSerialValidation) {
  EXPECT_THROW((void)Dac::bit_serial_pulses(1, 0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)Dac::bit_serial_pulses(1, 33, 1.0), std::invalid_argument);
}

TEST(Dac, CostGrowsWithBits) {
  Dac d1({.bits = 1});
  Dac d4({.bits = 4});
  EXPECT_GT(d4.area_um2(), d1.area_um2());
  EXPECT_GT(d4.power_mw(), d1.power_mw());
}

TEST(Dac, DriverIsFarCheaperThanAdc) {
  // Fig. 5's premise: the ADC dominates; drivers are comparatively free.
  Dac dac({.bits = 1});
  EXPECT_LT(dac.area_um2() * 128, 1200.0);  // 128 drivers < one 8-bit ADC
}

TEST(Dac, InvalidConfigThrows) {
  EXPECT_THROW(Dac({.bits = 0}), std::invalid_argument);
  EXPECT_THROW(Dac({.bits = 13}), std::invalid_argument);
  EXPECT_THROW(Dac({.bits = 1, .v_max = 0.0}), std::invalid_argument);
}

}  // namespace
}  // namespace cim::periphery
