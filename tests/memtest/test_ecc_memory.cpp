#include "memtest/ecc_memory.hpp"

#include <gtest/gtest.h>

namespace cim::memtest {
namespace {

crossbar::CrossbarConfig healthy_cfg(std::uint64_t seed) {
  crossbar::CrossbarConfig cfg;
  cfg.tech = device::Technology::kSttMram;  // effectively infinite endurance
  cfg.seed = seed;
  return cfg;
}

TEST(EccMemory, RoundTripCleanArray) {
  EccMemory mem(8, healthy_cfg(3));
  util::Rng rng(5);
  std::vector<std::uint64_t> data(8);
  for (std::size_t w = 0; w < 8; ++w) {
    data[w] = rng();
    mem.write(w, data[w]);
  }
  for (std::size_t w = 0; w < 8; ++w) {
    const auto r = mem.read(w);
    EXPECT_EQ(r.data, data[w]);
    EXPECT_EQ(r.status, EccStatus::kOk);
    EXPECT_TRUE(r.data_correct);
  }
  EXPECT_EQ(mem.counters().silent_corruptions, 0u);
}

TEST(EccMemory, CorrectsSingleStuckBit) {
  EccMemory mem(2, healthy_cfg(7));
  mem.write(0, 0xDEADBEEFCAFEBABEULL);
  // Stuck-at on one data cell of word 0 (bit 5 of the stored value is 1;
  // force it to 0).
  fault::FaultMap map(2, 72);
  map.add({fault::FaultKind::kStuckAtZero, 0, 5, 0, 0, 1.0});
  mem.array_mutable().apply_faults(map);
  const auto r = mem.read(0);
  EXPECT_EQ(r.data, 0xDEADBEEFCAFEBABEULL);
  EXPECT_TRUE(r.data_correct);
  EXPECT_TRUE(r.status == EccStatus::kCorrected || r.status == EccStatus::kOk);
}

TEST(EccMemory, DetectsDoubleStuckBits) {
  EccMemory mem(1, healthy_cfg(9));
  // Value with 1s at bits 3 and 7 so SA0 faults actually flip them.
  mem.write(0, 0x88ULL);
  fault::FaultMap map(1, 72);
  map.add({fault::FaultKind::kStuckAtZero, 0, 3, 0, 0, 1.0});
  map.add({fault::FaultKind::kStuckAtZero, 0, 7, 0, 0, 1.0});
  mem.array_mutable().apply_faults(map);
  const auto r = mem.read(0);
  EXPECT_EQ(r.status, EccStatus::kDetectedUncorrectable);
  EXPECT_FALSE(r.data_correct);
}

TEST(EccMemory, BoundsChecked) {
  EccMemory mem(2, healthy_cfg(11));
  EXPECT_THROW(mem.write(2, 0), std::out_of_range);
  EXPECT_THROW((void)mem.read(2), std::out_of_range);
  EXPECT_THROW(EccMemory(0, healthy_cfg(13)), std::invalid_argument);
}

TEST(EccLifetime, WearoutProgressionMatchesPaperStory) {
  // "eventually the number of hard faults will exceed the ECC's correction
  // capability": corrections appear first, uncorrectable words later.
  util::Rng rng(17);
  const auto rep = run_ecc_lifetime(/*words=*/16, /*endurance_mean=*/60.0,
                                    /*max_cycles=*/400, rng);
  ASSERT_GT(rep.first_correction_cycle, 0u);
  ASSERT_GT(rep.first_uncorrectable_cycle, 0u);
  EXPECT_LE(rep.first_correction_cycle, rep.first_uncorrectable_cycle);
  EXPECT_GT(rep.final_stuck_cell_fraction, 0.0);
}

TEST(EccLifetime, HigherEnduranceLastsLonger) {
  util::Rng rng(19);
  const auto weak = run_ecc_lifetime(8, 40.0, 600, rng);
  const auto strong = run_ecc_lifetime(8, 200.0, 600, rng);
  ASSERT_GT(weak.first_uncorrectable_cycle, 0u);
  // The strong array either fails later or survives the horizon.
  if (strong.first_uncorrectable_cycle != 0) {
    EXPECT_GT(strong.first_uncorrectable_cycle,
              weak.first_uncorrectable_cycle);
  }
}

}  // namespace
}  // namespace cim::memtest
