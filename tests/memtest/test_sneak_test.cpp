#include "memtest/sneak_path_test.hpp"

#include <gtest/gtest.h>

#include "memtest/march.hpp"

namespace cim::memtest {
namespace {

crossbar::CrossbarConfig cfg16() {
  crossbar::CrossbarConfig cfg;
  cfg.rows = 16;
  cfg.cols = 16;
  cfg.tech = device::Technology::kReRamHfOx;
  cfg.levels = 2;
  cfg.model_ir_drop = false;
  cfg.verified_writes = true;
  cfg.seed = 11;
  return cfg;
}

TEST(SneakTest, CleanArrayRaisesNoFlags) {
  crossbar::Crossbar xbar(cfg16());
  const auto res = run_sneak_path_test(xbar);
  EXPECT_TRUE(res.flagged.empty());
  EXPECT_GT(res.probes, 0u);
}

TEST(SneakTest, ProbeCountFarBelowCellCount) {
  crossbar::Crossbar xbar(cfg16());
  const auto res = run_sneak_path_test(xbar, {.window = 2});
  // Parallelism claim: probes tile the array at stride (2w+1); both
  // background passes together still probe far fewer points than cells.
  EXPECT_LE(res.probes, 32u);  // vs 256 cells
}

TEST(SneakTest, DetectsStuckFaultInsideRegion) {
  crossbar::Crossbar xbar(cfg16());
  fault::FaultMap map(16, 16);
  map.add({fault::FaultKind::kStuckAtOne, 7, 7, 0, 0, 1.0});
  map.add({fault::FaultKind::kStuckAtZero, 2, 12, 0, 0, 1.0});
  xbar.apply_faults(map);
  const SneakTestConfig cfg{.window = 2, .threshold_frac = 0.04,
                            .background_checkerboard = true};
  const auto res = run_sneak_path_test(xbar, cfg);
  EXPECT_FALSE(res.flagged.empty());
  EXPECT_GT(sneak_coverage(map, res, cfg.window), 0.49);
}

TEST(SneakTest, CoverageOfDenseStuckFaults) {
  crossbar::Crossbar xbar(cfg16());
  util::Rng rng(3);
  const auto map = fault::FaultMap::with_fault_count(
      16, 16, 20, fault::FaultMix::stuck_at_only(), rng);
  xbar.apply_faults(map);
  const SneakTestConfig cfg{.window = 2, .threshold_frac = 0.04,
                            .background_checkerboard = true};
  const auto res = run_sneak_path_test(xbar, cfg);
  EXPECT_GT(sneak_coverage(map, res, cfg.window), 0.6);
}

TEST(SneakTest, FasterThanMarchPerRun) {
  // The sneak-path test trades resolution for time: far fewer operations
  // than March C* on the same array.
  crossbar::Crossbar xa(cfg16());
  const auto sneak = run_sneak_path_test(xa, {.window = 2});
  crossbar::Crossbar xb(cfg16());
  const auto march = run_march(xb, march_cstar());
  EXPECT_LT(sneak.probes, march.total_ops / 10);
}

TEST(SneakTest, IgnoresSoftFaultsInCoverageMetric) {
  fault::FaultMap map(16, 16);
  map.add({fault::FaultKind::kWriteVariation, 1, 1, 0, 0, 3.0});
  SneakTestResult res;  // nothing flagged
  EXPECT_DOUBLE_EQ(sneak_coverage(map, res, 2), 1.0);  // no targeted faults
}

TEST(SneakTest, TightThresholdFlagsMore) {
  crossbar::Crossbar a(cfg16()), b(cfg16());
  fault::FaultMap map(16, 16);
  for (std::size_t k = 0; k < 6; ++k)
    map.add({fault::FaultKind::kStuckAtOne, 2 * k, 2 * k, 0, 0, 1.0});
  a.apply_faults(map);
  b.apply_faults(map);
  const auto strict = run_sneak_path_test(a, {.window = 2, .threshold_frac = 0.02});
  const auto loose = run_sneak_path_test(b, {.window = 2, .threshold_frac = 0.3});
  EXPECT_GE(strict.flagged.size(), loose.flagged.size());
}

}  // namespace
}  // namespace cim::memtest
