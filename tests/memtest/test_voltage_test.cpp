#include "memtest/online_voltage_test.hpp"

#include <gtest/gtest.h>

namespace cim::memtest {
namespace {

crossbar::CrossbarConfig cfg16() {
  crossbar::CrossbarConfig cfg;
  cfg.rows = 16;
  cfg.cols = 16;
  cfg.tech = device::Technology::kReRamHfOx;
  cfg.levels = 16;
  cfg.model_ir_drop = false;
  cfg.verified_writes = true;
  cfg.seed = 101;
  return cfg;
}

void program_random(crossbar::Crossbar& xbar, std::uint64_t seed) {
  util::Rng rng(seed);
  util::Matrix lv(xbar.rows(), xbar.cols());
  // Mid-range levels so both increments and decrements have headroom.
  for (auto& v : lv.flat())
    v = 4.0 + static_cast<double>(rng.uniform_int(8));
  xbar.program_levels(lv);
}

TEST(VoltageTest, CleanArrayHasNoFalsePositives) {
  crossbar::Crossbar xbar(cfg16());
  program_random(xbar, 3);
  const auto res = run_voltage_comparison_test(xbar);
  EXPECT_TRUE(res.located.empty());
  EXPECT_GT(res.vmm_measurements, 0u);
}

TEST(VoltageTest, LocatesSa0Fault) {
  crossbar::Crossbar xbar(cfg16());
  fault::FaultMap map(16, 16);
  map.add({fault::FaultKind::kStuckAtZero, 5, 9, 0, 0, 1.0});
  xbar.apply_faults(map);
  program_random(xbar, 5);
  const auto res = run_voltage_comparison_test(xbar);
  bool found = false;
  for (const auto& loc : res.located)
    if (loc.row == 5 && loc.col == 9) found = true;
  EXPECT_TRUE(found);
}

TEST(VoltageTest, LocatesSa1Fault) {
  crossbar::Crossbar xbar(cfg16());
  fault::FaultMap map(16, 16);
  map.add({fault::FaultKind::kStuckAtOne, 2, 14, 0, 0, 1.0});
  xbar.apply_faults(map);
  program_random(xbar, 7);
  const auto res = run_voltage_comparison_test(xbar);
  bool found = false;
  for (const auto& loc : res.located)
    if (loc.row == 2 && loc.col == 14) found = true;
  EXPECT_TRUE(found);
}

TEST(VoltageTest, QualityOnScatteredStuckFaults) {
  crossbar::Crossbar xbar(cfg16());
  util::Rng rng(9);
  const auto map = fault::FaultMap::with_fault_count(
      16, 16, 8, fault::FaultMix::stuck_at_only(), rng);
  xbar.apply_faults(map);
  program_random(xbar, 9);
  const auto res = run_voltage_comparison_test(xbar);
  const auto q = voltage_test_quality(map, res);
  EXPECT_GT(q.recall, 0.7);
  EXPECT_GT(q.precision, 0.5);
}

TEST(VoltageTest, RestoresContentsAfterwards) {
  crossbar::Crossbar xbar(cfg16());
  program_random(xbar, 11);
  std::vector<int> before(16 * 16);
  for (std::size_t r = 0; r < 16; ++r)
    for (std::size_t c = 0; c < 16; ++c)
      before[r * 16 + c] =
          xbar.scheme().nearest_level(xbar.true_conductance(r, c));
  (void)run_voltage_comparison_test(xbar);
  std::size_t preserved = 0;
  for (std::size_t r = 0; r < 16; ++r)
    for (std::size_t c = 0; c < 16; ++c)
      if (xbar.scheme().nearest_level(xbar.true_conductance(r, c)) ==
          before[r * 16 + c])
        ++preserved;
  // Verified restore writes recover nearly every cell.
  EXPECT_GT(preserved, 240u);
}

TEST(VoltageTest, GroupSizeTradesMeasurementsForLocalization) {
  crossbar::Crossbar a(cfg16()), b(cfg16());
  program_random(a, 13);
  program_random(b, 13);
  const auto fine = run_voltage_comparison_test(a, {.group_rows = 2});
  const auto coarse = run_voltage_comparison_test(b, {.group_rows = 16});
  EXPECT_GT(fine.vmm_measurements, coarse.vmm_measurements);
}

TEST(VoltageTest, InvalidConfigThrows) {
  crossbar::Crossbar xbar(cfg16());
  EXPECT_THROW((void)run_voltage_comparison_test(xbar, {.group_rows = 0}),
               std::invalid_argument);
}

TEST(VoltageTest, QualityDefaultsWhenNothingInjected) {
  fault::FaultMap empty(4, 4);
  VoltageTestResult res;
  const auto q = voltage_test_quality(empty, res);
  EXPECT_DOUBLE_EQ(q.recall, 1.0);
  EXPECT_DOUBLE_EQ(q.precision, 1.0);
}

}  // namespace
}  // namespace cim::memtest
