/// Property-based fuzzing of the March C* coverage guarantee: for random
/// stuck-at/transition fault populations across random seeds, coverage must
/// be complete — the Section III.B claim ("very high fault coverage").
#include <gtest/gtest.h>

#include "memtest/march.hpp"

namespace cim::memtest {
namespace {

class MarchFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MarchFuzz, CstarAlwaysCoversStuckAndTransition) {
  util::Rng rng(GetParam() * 1337 + 11);
  crossbar::CrossbarConfig cfg;
  cfg.rows = cfg.cols = 12;
  cfg.tech = device::Technology::kSttMram;
  cfg.levels = 2;
  cfg.model_ir_drop = false;
  cfg.seed = GetParam() + 500;
  crossbar::Crossbar xbar(cfg);

  fault::FaultMix mix = fault::FaultMix::stuck_at_only();
  mix.transition = 0.4;
  const std::size_t n_faults = 1 + rng.uniform_int(20);
  const auto map =
      fault::FaultMap::with_fault_count(12, 12, n_faults, mix, rng);
  xbar.apply_faults(map);

  const auto res = run_march(xbar, march_cstar());
  EXPECT_DOUBLE_EQ(fault_coverage(map, res), 1.0)
      << "seed " << GetParam() << " with " << n_faults << " faults";
}

TEST_P(MarchFuzz, FaultFreeNeverFails) {
  crossbar::CrossbarConfig cfg;
  cfg.rows = cfg.cols = 12;
  cfg.tech = device::Technology::kSttMram;
  cfg.levels = 2;
  cfg.model_ir_drop = false;
  cfg.seed = GetParam() * 7 + 3;
  crossbar::Crossbar xbar(cfg);
  EXPECT_TRUE(run_march(xbar, march_cstar()).pass) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, MarchFuzz,
                         ::testing::Range<std::uint64_t>(0, 12));

}  // namespace
}  // namespace cim::memtest
