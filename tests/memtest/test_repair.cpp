#include "memtest/repair.hpp"

#include <gtest/gtest.h>

namespace cim::memtest {
namespace {

TEST(RepairAllocation, SingleFaultUsesOneSpare) {
  const std::vector<FaultSite> sites = {{2, 3}};
  const auto plan = allocate_redundancy(sites, 1, 1);
  EXPECT_TRUE(plan.feasible);
  EXPECT_EQ(plan.spare_rows_used + plan.spare_cols_used, 1u);
}

TEST(RepairAllocation, RowClusterForcesRowSpare) {
  // Four faults on one row but only one spare column: must-repair analysis
  // has to take the row spare.
  const std::vector<FaultSite> sites = {{5, 0}, {5, 1}, {5, 2}, {5, 3}};
  const auto plan = allocate_redundancy(sites, 1, 1);
  ASSERT_TRUE(plan.feasible);
  ASSERT_EQ(plan.repaired_rows.size(), 1u);
  EXPECT_EQ(plan.repaired_rows[0], 5u);
  EXPECT_TRUE(plan.repaired_cols.empty());
}

TEST(RepairAllocation, InfeasibleWhenSpareStarved) {
  // Diagonal faults need one spare each; two spares cannot cover three.
  const std::vector<FaultSite> sites = {{0, 0}, {1, 1}, {2, 2}};
  const auto plan = allocate_redundancy(sites, 1, 1);
  EXPECT_FALSE(plan.feasible);
}

TEST(RepairAllocation, GreedyCoversCross) {
  // A row cluster and a column cluster sharing one cell.
  const std::vector<FaultSite> sites = {{1, 0}, {1, 2}, {1, 4},
                                        {0, 3}, {2, 3}, {4, 3}};
  const auto plan = allocate_redundancy(sites, 1, 1);
  ASSERT_TRUE(plan.feasible);
  EXPECT_EQ(plan.repaired_rows.size(), 1u);
  EXPECT_EQ(plan.repaired_cols.size(), 1u);
}

TEST(RepairAllocation, NoFaultsNoSpares) {
  const auto plan = allocate_redundancy({}, 0, 0);
  EXPECT_TRUE(plan.feasible);
  EXPECT_EQ(plan.spare_rows_used, 0u);
}

crossbar::CrossbarConfig binary_cfg(std::uint64_t seed) {
  crossbar::CrossbarConfig cfg;
  cfg.tech = device::Technology::kSttMram;
  cfg.levels = 2;
  cfg.model_ir_drop = false;
  cfg.seed = seed;
  return cfg;
}

TEST(RepairedArray, RedirectsThroughSpares) {
  RepairedArray arr(4, 4, 1, 1, binary_cfg(3));
  RepairPlan plan;
  plan.feasible = true;
  plan.repaired_rows = {2};
  plan.repaired_cols = {1};
  arr.install(plan);
  arr.write_bit(2, 0, true);
  EXPECT_TRUE(arr.read_bit(2, 0));
  // The physical main-region row 2 is untouched by the logical write.
  EXPECT_LT(arr.physical().true_conductance(2, 0),
            0.5 * arr.physical().tech().g_on_us());
}

TEST(RepairedArray, MarchRepairMarchPipeline) {
  // The Section III recovery loop: test -> localize -> repair -> retest.
  RepairedArray arr(8, 8, 2, 2, binary_cfg(7));

  // Physical faults: a bad row and a bad cell.
  fault::FaultMap map(10, 10);
  for (std::size_t c = 0; c < 8; ++c)
    map.add({fault::FaultKind::kStuckAtOne, 3, c, 0, 0, 1.0});
  map.add({fault::FaultKind::kStuckAtZero, 6, 2, 0, 0, 1.0});
  arr.apply_faults(map);

  // March on the logical view (manual walk over logical addresses).
  auto march_logical = [&]() {
    std::vector<FaultSite> fails;
    for (std::size_t r = 0; r < 8; ++r)
      for (std::size_t c = 0; c < 8; ++c) {
        arr.write_bit(r, c, false);
        if (arr.read_bit(r, c)) fails.push_back({r, c});
        arr.write_bit(r, c, true);
        if (!arr.read_bit(r, c)) fails.push_back({r, c});
      }
    return fails;
  };

  const auto before = march_logical();
  ASSERT_FALSE(before.empty());

  const auto plan = allocate_redundancy(before, 2, 2);
  ASSERT_TRUE(plan.feasible);
  arr.install(plan);

  const auto after = march_logical();
  EXPECT_TRUE(after.empty());  // the repaired array tests clean
}

TEST(RepairedArray, InstallValidatesSpareBudget) {
  RepairedArray arr(4, 4, 1, 0, binary_cfg(9));
  RepairPlan plan;
  plan.repaired_rows = {0, 1};  // needs two row spares
  EXPECT_THROW(arr.install(plan), std::invalid_argument);
}

TEST(RepairedArray, SitesFromMarchDeduplicates) {
  MarchResult res;
  res.failures.push_back({1, 1, 0, 0, false, true});
  res.failures.push_back({1, 1, 2, 0, true, false});
  res.failures.push_back({2, 2, 0, 0, false, true});
  const auto sites = sites_from_march(res);
  EXPECT_EQ(sites.size(), 2u);
}

}  // namespace
}  // namespace cim::memtest
