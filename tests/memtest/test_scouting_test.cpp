#include "memtest/scouting_test.hpp"

#include <gtest/gtest.h>

namespace cim::memtest {
namespace {

crossbar::CrossbarConfig cfg16(std::uint64_t seed) {
  crossbar::CrossbarConfig cfg;
  cfg.rows = cfg.cols = 16;
  cfg.tech = device::Technology::kReRamHfOx;
  cfg.levels = 2;
  cfg.model_ir_drop = false;
  cfg.verified_writes = true;
  cfg.seed = seed;
  return cfg;
}

TEST(ScoutingTest, CleanArrayHasNoMismatches) {
  crossbar::Crossbar xbar(cfg16(3));
  const auto res = run_scouting_test(xbar);
  EXPECT_TRUE(res.mismatches.empty());
  EXPECT_GT(res.checks, 0u);
  // 3 ops x 4 patterns per (pair, column).
  EXPECT_EQ(res.checks % 12u, 0u);
}

TEST(ScoutingTest, DetectsStuckCellInTestedPair) {
  crossbar::Crossbar xbar(cfg16(5));
  fault::FaultMap map(16, 16);
  map.add({fault::FaultKind::kStuckAtOne, 0, 4, 0, 0, 1.0});
  map.add({fault::FaultKind::kStuckAtZero, 1, 9, 0, 0, 1.0});
  xbar.apply_faults(map);
  const ScoutingTestConfig cfg{.pair_stride = 2};
  const auto res = run_scouting_test(xbar, cfg);
  EXPECT_FALSE(res.mismatches.empty());
  EXPECT_DOUBLE_EQ(scouting_coverage(map, res, cfg, 16), 1.0);
}

TEST(ScoutingTest, CoverageOfScatteredStuckFaults) {
  crossbar::Crossbar xbar(cfg16(7));
  util::Rng rng(9);
  const auto map = fault::FaultMap::with_fault_count(
      16, 16, 10, fault::FaultMix::stuck_at_only(), rng);
  xbar.apply_faults(map);
  const ScoutingTestConfig cfg{.pair_stride = 1};  // every adjacent pair
  const auto res = run_scouting_test(xbar, cfg);
  EXPECT_GT(scouting_coverage(map, res, cfg, 16), 0.9);
}

TEST(ScoutingTest, StrideTradesTimeForCoverage) {
  crossbar::Crossbar a(cfg16(11)), b(cfg16(11));
  const auto dense = run_scouting_test(a, {.pair_stride = 1});
  const auto sparse = run_scouting_test(b, {.pair_stride = 4});
  EXPECT_GT(dense.checks, sparse.checks);
}

TEST(ScoutingTest, UntestedRowsExcludedFromCoverage) {
  fault::FaultMap map(16, 16);
  map.add({fault::FaultKind::kStuckAtOne, 15, 0, 0, 0, 1.0});  // last row
  ScoutingTestResult res;  // nothing found
  // With stride 4, row 15 is not part of any pair -> coverage vacuously 1.
  EXPECT_DOUBLE_EQ(scouting_coverage(map, res, {.pair_stride = 4}, 16), 1.0);
}

TEST(ScoutingTest, CostAccounting) {
  crossbar::Crossbar xbar(cfg16(13));
  const auto res = run_scouting_test(xbar);
  EXPECT_GT(res.writes, 0u);
  EXPECT_GT(res.time_ns, 0.0);
  EXPECT_GT(res.energy_pj, 0.0);
}

}  // namespace
}  // namespace cim::memtest
