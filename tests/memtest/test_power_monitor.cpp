#include "memtest/power_monitor.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/stats.hpp"

namespace cim::memtest {
namespace {

crossbar::CrossbarConfig cfg32() {
  crossbar::CrossbarConfig cfg;
  cfg.rows = 32;
  cfg.cols = 32;
  cfg.levels = 16;
  cfg.model_ir_drop = false;
  cfg.seed = 31;
  return cfg;
}

void program_random(crossbar::Crossbar& xbar, std::uint64_t seed) {
  util::Rng rng(seed);
  util::Matrix lv(xbar.rows(), xbar.cols());
  for (auto& v : lv.flat()) v = static_cast<double>(rng.uniform_int(16));
  xbar.program_levels(lv);
}

TEST(PowerMonitor, CleanRunRaisesNoAlarm) {
  crossbar::Crossbar xbar(cfg32());
  program_random(xbar, 3);
  util::Rng rng(3);
  MonitorConfig cfg;
  cfg.cycles = 1000;
  const auto run = run_monitored_workload(xbar, cfg, rng);
  EXPECT_EQ(run.power_mw.size(), 1000u);
  EXPECT_FALSE(run.alarm_cycle.has_value());
}

TEST(PowerMonitor, Fig7FaultsAfterCycle600AreDetected) {
  // Fig. 7: "a changepoint is detected when faults are inserted in a ReRAM
  // crossbar after cycle 600".
  crossbar::Crossbar xbar(cfg32());
  program_random(xbar, 5);
  util::Rng rng(5);
  const auto map = fault::FaultMap::with_fault_count(
      32, 32, 100, fault::FaultMix::stuck_at_only(), rng);

  MonitorConfig cfg;
  cfg.cycles = 1200;
  const auto run = run_monitored_workload(xbar, cfg, rng, &map, 600);
  ASSERT_TRUE(run.alarm_cycle.has_value());
  EXPECT_GE(*run.alarm_cycle, 600u);
  EXPECT_LE(*run.alarm_cycle, 750u);  // short detection delay
  ASSERT_TRUE(run.located_changepoint.has_value());
  EXPECT_NEAR(static_cast<double>(*run.located_changepoint), 600.0, 50.0);
}

TEST(PowerMonitor, PowerShiftsWhenFaultsLand) {
  crossbar::Crossbar xbar(cfg32());
  program_random(xbar, 7);
  util::Rng rng(7);
  const auto map = fault::FaultMap::with_fault_count(
      32, 32, 150, fault::FaultMix::stuck_at_only(), rng);
  MonitorConfig cfg;
  cfg.cycles = 1200;
  const auto run = run_monitored_workload(xbar, cfg, rng, &map, 600);
  // On the seasonally adjusted residuals the fault-induced shift stands
  // far above the pre-change noise floor.
  util::RunningStats pre, post;
  const std::size_t cp = 600 - run.calibration_cycles;
  for (std::size_t i = 0; i < run.residual_mw.size(); ++i)
    (i < cp ? pre : post).add(run.residual_mw[i]);
  EXPECT_GT(std::abs(post.mean() - pre.mean()), 3.0 * pre.stddev());
}

TEST(PowerMonitor, FeatureExtractionShapes) {
  std::vector<double> power(100, 1.0);
  for (std::size_t i = 50; i < 100; ++i) power[i] = 2.0;
  const auto f = extract_features(power, 50);
  EXPECT_NEAR(f.post_mean, 2.0, 1e-9);
  EXPECT_NEAR(f.delta_mean, 1.0, 1e-9);
  // Pre-change segment is exactly constant: the standardized shift degrades
  // gracefully to zero rather than dividing by zero.
  EXPECT_DOUBLE_EQ(f.relative_shift, 0.0);
  EXPECT_EQ(f.to_vector().size(), PowerFeatures::dim());
}

TEST(PowerMonitor, FeatureExtractionDegenerateInputs) {
  const auto empty = extract_features({}, 10);
  EXPECT_EQ(empty.post_mean, 0.0);
  const auto tail = extract_features({1.0, 2.0}, 99);  // clamped changepoint
  EXPECT_NE(tail.post_mean, 0.0);
}

TEST(PowerMonitor, EstimatorLearnsFaultFraction) {
  util::Rng rng(11);
  auto array_cfg = cfg32();
  array_cfg.rows = array_cfg.cols = 16;  // keep training quick
  MonitorConfig mon;
  mon.cycles = 700;
  mon.cusum.warmup = 150;

  auto examples =
      FaultRateEstimator::generate_training_data(array_cfg, mon, 40, rng);
  ASSERT_EQ(examples.size(), 40u);

  FaultRateEstimator est;
  est.train(examples);
  ASSERT_TRUE(est.trained());
  EXPECT_GT(est.r2(examples), 0.5);

  // Held-out examples: predictions correlate with the truth.
  auto holdout =
      FaultRateEstimator::generate_training_data(array_cfg, mon, 12, rng);
  std::vector<double> pred, truth;
  for (const auto& ex : holdout) {
    pred.push_back(est.estimate(ex.features));
    truth.push_back(ex.fault_fraction);
  }
  EXPECT_GT(util::pearson(pred, truth), 0.6);
}

TEST(PowerMonitor, EstimateClampedToUnitInterval) {
  util::Rng rng(13);
  std::vector<FaultRateEstimator::Example> examples;
  for (int i = 0; i < 10; ++i) {
    FaultRateEstimator::Example ex;
    ex.features.post_mean = i;
    ex.features.delta_mean = i;
    ex.fault_fraction = 0.1 * i;
    examples.push_back(ex);
  }
  FaultRateEstimator est;
  est.train(examples);
  PowerFeatures wild;
  wild.post_mean = 1e9;
  wild.delta_mean = 1e9;
  const double p = est.estimate(wild);
  EXPECT_GE(p, 0.0);
  EXPECT_LE(p, 1.0);
}

}  // namespace
}  // namespace cim::memtest
