#include "memtest/ecc.hpp"

#include <gtest/gtest.h>

namespace cim::memtest {
namespace {

TEST(Ecc, CleanCodewordDecodesOk) {
  util::Rng rng(3);
  for (int t = 0; t < 100; ++t) {
    const std::uint64_t data = rng();
    const auto cw = HammingSecDed::encode(data);
    const auto dec = HammingSecDed::decode(cw);
    EXPECT_EQ(dec.data, data);
    EXPECT_EQ(dec.status, EccStatus::kOk);
  }
}

class EccSingleBit : public ::testing::TestWithParam<int> {};

TEST_P(EccSingleBit, AnySingleBitErrorCorrected) {
  const int pos = GetParam();
  util::Rng rng(5);
  const std::uint64_t data = rng();
  auto cw = HammingSecDed::encode(data);
  HammingSecDed::flip_bit(cw, pos);
  const auto dec = HammingSecDed::decode(cw);
  EXPECT_EQ(dec.data, data) << "bit " << pos;
  EXPECT_EQ(dec.status, EccStatus::kCorrected) << "bit " << pos;
}

INSTANTIATE_TEST_SUITE_P(AllPositions, EccSingleBit, ::testing::Range(0, 72));

TEST(Ecc, DoubleBitErrorsDetectedNotMiscorrected) {
  util::Rng rng(7);
  int detected = 0;
  const int trials = 300;
  for (int t = 0; t < trials; ++t) {
    const std::uint64_t data = rng();
    auto cw = HammingSecDed::encode(data);
    const int a = static_cast<int>(rng.uniform_int(72));
    int b = static_cast<int>(rng.uniform_int(72));
    while (b == a) b = static_cast<int>(rng.uniform_int(72));
    HammingSecDed::flip_bit(cw, a);
    HammingSecDed::flip_bit(cw, b);
    const auto dec = HammingSecDed::decode(cw);
    if (dec.status == EccStatus::kDetectedUncorrectable) ++detected;
    // SEC-DED guarantee: never silently return wrong data as "Ok/Corrected"
    // for exactly two errors.
    if (dec.data != data) {
      EXPECT_EQ(dec.status, EccStatus::kDetectedUncorrectable);
    }
  }
  EXPECT_EQ(detected, trials);
}

TEST(Ecc, FlipBitValidation) {
  auto cw = HammingSecDed::encode(42);
  EXPECT_THROW(HammingSecDed::flip_bit(cw, -1), std::out_of_range);
  EXPECT_THROW(HammingSecDed::flip_bit(cw, 72), std::out_of_range);
}

TEST(Ecc, FlipIsInvolution) {
  auto cw = HammingSecDed::encode(0xDEADBEEFCAFEBABEULL);
  const auto orig = cw;
  HammingSecDed::flip_bit(cw, 17);
  HammingSecDed::flip_bit(cw, 17);
  EXPECT_EQ(cw.data, orig.data);
  EXPECT_EQ(cw.check, orig.check);
  EXPECT_EQ(cw.parity, orig.parity);
}

TEST(Ecc, AnalyticUncorrectableProbabilityMonotone) {
  EXPECT_LT(word_uncorrectable_probability(1e-6),
            word_uncorrectable_probability(1e-4));
  EXPECT_LT(word_uncorrectable_probability(1e-4),
            word_uncorrectable_probability(1e-2));
  EXPECT_NEAR(word_uncorrectable_probability(0.0), 0.0, 1e-15);
}

TEST(Ecc, PaperBerThresholdIsComfortable) {
  // Section III.C: ECC works when BER < 1e-5. At that BER the word
  // failure probability is tiny; at 1e-2 (worn-out array) it is large.
  EXPECT_LT(word_uncorrectable_probability(1e-5), 1e-6);
  EXPECT_GT(word_uncorrectable_probability(1e-2), 0.1);
}

TEST(Ecc, SimulationTracksAnalyticModel) {
  util::Rng rng(11);
  const double ber = 5e-3;
  const double sim = simulate_word_failure_rate(ber, 20000, rng);
  const double analytic = word_uncorrectable_probability(ber);
  // The simulated *wrong-data* rate is below the >=2-errors rate because
  // detected-uncorrectable words keep the (possibly correct) raw data and
  // some double errors leave data bits intact; it must not exceed it.
  EXPECT_LE(sim, analytic * 1.1);
  EXPECT_GT(sim, 0.0);
}

TEST(Ecc, InvalidBerThrows) {
  EXPECT_THROW((void)word_uncorrectable_probability(-0.1),
               std::invalid_argument);
  EXPECT_THROW((void)word_uncorrectable_probability(1.1),
               std::invalid_argument);
}

TEST(Ecc, ClassifyGroundTruth) {
  const std::uint64_t data = 1234567;
  HammingSecDed::DecodeResult ok{data, EccStatus::kOk};
  EXPECT_EQ(HammingSecDed::classify(ok, data, 0), EccStatus::kOk);
  HammingSecDed::DecodeResult corrected{data, EccStatus::kCorrected};
  EXPECT_EQ(HammingSecDed::classify(corrected, data, 1), EccStatus::kCorrected);
  HammingSecDed::DecodeResult wrong{data ^ 1, EccStatus::kCorrected};
  EXPECT_EQ(HammingSecDed::classify(wrong, data, 3), EccStatus::kMiscorrected);
}

}  // namespace
}  // namespace cim::memtest
