#include "memtest/xabft.hpp"

#include <gtest/gtest.h>

namespace cim::memtest {
namespace {

crossbar::CrossbarConfig cfg() {
  crossbar::CrossbarConfig c;
  c.tech = device::Technology::kReRamHfOx;
  c.levels = 16;
  c.model_ir_drop = false;
  c.seed = 55;
  return c;
}

util::Matrix random_levels(std::size_t n, std::size_t m, std::uint64_t seed) {
  util::Rng rng(seed);
  util::Matrix lv(n, m);
  for (auto& v : lv.flat()) v = static_cast<double>(rng.uniform_int(16));
  return lv;
}

TEST(Xabft, ChecksumsAreExactAtEncode) {
  const auto lv = random_levels(8, 8, 3);
  XabftProtected prot(lv, cfg());
  long total_rows = 0, total_cols = 0;
  for (const long s : prot.row_checksums()) total_rows += s;
  for (const long s : prot.col_checksums()) total_cols += s;
  EXPECT_EQ(total_rows, total_cols);  // both sum the whole matrix
}

TEST(Xabft, CleanMultiplyPassesChecksum) {
  const auto lv = random_levels(8, 8, 5);
  XabftProtected prot(lv, cfg());
  std::vector<double> x(8, 1.0);
  const auto res = prot.multiply(x);
  EXPECT_TRUE(res.checksum_ok);
  // Decoded level sums track the oracle.
  const auto oracle = prot.ideal_multiply(x);
  for (std::size_t c = 0; c < 8; ++c)
    EXPECT_NEAR(res.level_sums[c], oracle[c], 4.0);
}

TEST(Xabft, DetectsLargeStuckFaultInline) {
  auto lv = random_levels(8, 8, 7);
  lv(3, 4) = 14.0;  // high level so SA0 produces a large deviation
  XabftProtected prot(lv, cfg());
  fault::FaultMap map(8, 8);
  map.add({fault::FaultKind::kStuckAtZero, 3, 4, 0, 0, 1.0});
  prot.apply_faults(map);
  std::vector<double> x(8, 0.0);
  x[3] = 1.0;  // drive the faulty row
  const auto res = prot.multiply(x);
  EXPECT_FALSE(res.checksum_ok);
  EXPECT_GT(res.residual_levels, 5.0);
}

TEST(Xabft, ScrubLocatesAndReportsSuspects) {
  auto lv = random_levels(8, 8, 9);
  lv(2, 6) = 15.0;
  XabftProtected prot(lv, cfg());
  fault::FaultMap map(8, 8);
  map.add({fault::FaultKind::kStuckAtZero, 2, 6, 0, 0, 1.0});
  prot.apply_faults(map);
  const auto rep = prot.scrub();
  EXPECT_FALSE(rep.suspect_rows.empty());
  EXPECT_FALSE(rep.suspect_cols.empty());
  bool found = false;
  for (const auto& fix : rep.corrections)
    if (fix.row == 2 && fix.col == 6) {
      found = true;
      EXPECT_EQ(fix.corrected_level, 15);
      EXPECT_FALSE(fix.reprogram_succeeded);  // hard fault: cannot reprogram
    }
  EXPECT_TRUE(found);
}

TEST(Xabft, ScrubCorrectsSoftError) {
  auto lv = random_levels(8, 8, 11);
  lv(5, 5) = 12.0;
  XabftProtected prot(lv, cfg());
  // Soft upset: the stored conductance drifts to a wrong level, but the
  // cell itself is healthy — scrub must locate and reprogram it.
  prot.array_mutable().program_cell(
      5, 5, prot.array().scheme().level_conductance_us(3));
  const auto rep = prot.scrub();
  bool fixed = false;
  for (const auto& fix : rep.corrections) {
    if (fix.row == 5 && fix.col == 5) {
      fixed = true;
      EXPECT_EQ(fix.observed_level, 3);
      EXPECT_EQ(fix.corrected_level, 12);
      EXPECT_TRUE(fix.reprogram_succeeded);
    }
  }
  EXPECT_TRUE(fixed);
  // Post-scrub, the cell reads its original level again.
  EXPECT_EQ(prot.array().scheme().nearest_level(
                prot.array().true_conductance(5, 5)),
            12);
}

TEST(Xabft, CorrectionRecoversMacAccuracy) {
  auto lv = random_levels(8, 8, 13);
  XabftProtected prot(lv, cfg());
  fault::FaultMap map(8, 8);
  map.add({fault::FaultKind::kStuckAtOne, 1, 2, 0, 0, 1.0});
  prot.apply_faults(map);
  const auto rep = prot.scrub();
  // The SA1 cell is found (it reads level 15 instead of its target).
  bool found = false;
  for (const auto& fix : rep.corrections)
    if (fix.row == 1 && fix.col == 2) found = true;
  if (lv(1, 2) != 15.0) {
    EXPECT_TRUE(found);
  }
}

TEST(Xabft, WrongInputSizeThrows) {
  XabftProtected prot(random_levels(4, 4, 15), cfg());
  std::vector<double> bad(3, 1.0);
  EXPECT_THROW((void)prot.multiply(bad), std::invalid_argument);
  EXPECT_THROW((void)prot.ideal_multiply(bad), std::invalid_argument);
}

TEST(Xabft, LevelOutOfRangeThrows) {
  util::Matrix lv(4, 4, 99.0);
  EXPECT_THROW(XabftProtected(lv, cfg()), std::invalid_argument);
}

TEST(Xabft, SparseInputOnlySumsSelectedRows) {
  const auto lv = random_levels(8, 8, 17);
  XabftProtected prot(lv, cfg());
  std::vector<double> x(8, 0.0);
  x[0] = 1.0;
  x[7] = 1.0;
  const auto oracle = prot.ideal_multiply(x);
  for (std::size_t c = 0; c < 8; ++c)
    EXPECT_DOUBLE_EQ(oracle[c], lv(0, c) + lv(7, c));
}

}  // namespace
}  // namespace cim::memtest
