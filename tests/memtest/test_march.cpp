#include "memtest/march.hpp"

#include <gtest/gtest.h>

namespace cim::memtest {
namespace {

crossbar::CrossbarConfig test_cfg(std::size_t n = 8) {
  crossbar::CrossbarConfig cfg;
  cfg.rows = n;
  cfg.cols = n;
  cfg.tech = device::Technology::kSttMram;  // crisp binary behaviour
  cfg.levels = 2;
  cfg.model_ir_drop = false;
  cfg.seed = 77;
  return cfg;
}

TEST(March, CstarStructureMatchesPaper) {
  // { up(r0,w1); up(r1,r1,w0); down(r0,w1); down(r1,w0); up(r0) }
  const auto algo = march_cstar();
  ASSERT_EQ(algo.elements.size(), 5u);
  EXPECT_EQ(algo.elements[0].order, AddressOrder::kUp);
  EXPECT_EQ(algo.elements[1].ops.size(), 3u);
  EXPECT_EQ(algo.elements[2].order, AddressOrder::kDown);
  EXPECT_EQ(algo.elements[4].ops.size(), 1u);
  EXPECT_EQ(algo.ops_per_cell(), 10u);   // 10N complexity
  EXPECT_EQ(algo.reads_per_cell(), 6u);  // six-bit signature
}

TEST(March, FaultFreeArrayPasses) {
  crossbar::Crossbar xbar(test_cfg());
  const auto res = run_march(xbar, march_cstar());
  EXPECT_TRUE(res.pass);
  EXPECT_TRUE(res.failures.empty());
  EXPECT_EQ(res.total_ops, 10u * 64u);
  EXPECT_GT(res.time_ns, 0.0);
}

TEST(March, FaultFreeSignaturesAreCanonical) {
  crossbar::Crossbar xbar(test_cfg());
  const auto res = run_march(xbar, march_cstar());
  const std::vector<bool> expected = {false, true, true, false, true, false};
  for (const auto& sig : res.signatures) EXPECT_EQ(sig, expected);
}

class MarchStuckAt : public ::testing::TestWithParam<fault::FaultKind> {};

TEST_P(MarchStuckAt, DetectsAndLocatesFault) {
  crossbar::Crossbar xbar(test_cfg());
  fault::FaultMap map(8, 8);
  map.add({GetParam(), 3, 5, 0, 0, 1.0});
  xbar.apply_faults(map);
  const auto res = run_march(xbar, march_cstar());
  EXPECT_FALSE(res.pass);
  bool located = false;
  for (const auto& f : res.failures)
    if (f.row == 3 && f.col == 5) located = true;
  EXPECT_TRUE(located);
  EXPECT_DOUBLE_EQ(fault_coverage(map, res), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Kinds, MarchStuckAt,
                         ::testing::Values(fault::FaultKind::kStuckAtZero,
                                           fault::FaultKind::kStuckAtOne,
                                           fault::FaultKind::kTransitionUp,
                                           fault::FaultKind::kTransitionDown));

TEST(March, CstarCoversMixedStuckFaults) {
  crossbar::Crossbar xbar(test_cfg(16));
  util::Rng rng(5);
  const auto map = fault::FaultMap::with_fault_count(
      16, 16, 12, fault::FaultMix::stuck_at_only(), rng);
  xbar.apply_faults(map);
  const auto res = run_march(xbar, march_cstar());
  EXPECT_DOUBLE_EQ(fault_coverage(map, res), 1.0);
}

TEST(March, DetectsAddressDecoderFault) {
  crossbar::Crossbar xbar(test_cfg());
  fault::FaultMap map(8, 8);
  map.add({fault::FaultKind::kAddressDecoder, 2, 0, /*aux=*/6, 0, 1.0});
  xbar.apply_faults(map);
  const auto res = run_march(xbar, march_cstar());
  EXPECT_FALSE(res.pass);
  EXPECT_DOUBLE_EQ(fault_coverage(map, res), 1.0);
}

TEST(March, DetectsCouplingFault) {
  crossbar::Crossbar xbar(test_cfg());
  fault::FaultMap map(8, 8);
  // Aggressor written after the victim in up order -> classic CFid pattern.
  map.add({fault::FaultKind::kCoupling, 4, 4, /*victim=*/2, 2, 1.0});
  xbar.apply_faults(map);
  const auto res = run_march(xbar, march_cstar());
  EXPECT_FALSE(res.pass);
}

TEST(March, SignatureDiagnosis) {
  EXPECT_EQ(diagnose_cstar_signature({false, true, true, false, true, false}),
            "ok");
  EXPECT_EQ(
      diagnose_cstar_signature({false, false, false, false, false, false}),
      "SA0/TF-up");
  EXPECT_EQ(diagnose_cstar_signature({true, true, true, true, true, true}),
            "SA1");
  EXPECT_EQ(diagnose_cstar_signature({false, true, true, true, true, true}),
            "TF-down");
  EXPECT_EQ(diagnose_cstar_signature({true, false}), "unknown");
}

TEST(March, DiagnosisMatchesInjectedFaults) {
  crossbar::Crossbar xbar(test_cfg());
  fault::FaultMap map(8, 8);
  map.add({fault::FaultKind::kStuckAtOne, 1, 1, 0, 0, 1.0});
  map.add({fault::FaultKind::kStuckAtZero, 2, 2, 0, 0, 1.0});
  xbar.apply_faults(map);
  const auto res = run_march(xbar, march_cstar());
  EXPECT_EQ(diagnose_cstar_signature(res.signatures[1 * 8 + 1]), "SA1");
  EXPECT_EQ(diagnose_cstar_signature(res.signatures[2 * 8 + 2]), "SA0/TF-up");
}

TEST(March, CminusAlsoCoversStuckAt) {
  crossbar::Crossbar xbar(test_cfg());
  fault::FaultMap map(8, 8);
  map.add({fault::FaultKind::kStuckAtZero, 0, 7, 0, 0, 1.0});
  xbar.apply_faults(map);
  const auto res = run_march(xbar, march_cminus());
  EXPECT_DOUBLE_EQ(fault_coverage(map, res), 1.0);
}

TEST(March, MatsPlusIsShorterButWeaker) {
  EXPECT_LT(mats_plus().ops_per_cell(), march_cstar().ops_per_cell());
}

TEST(March, TestTimeScalesLinearlyWithCells) {
  crossbar::Crossbar small(test_cfg(8));
  crossbar::Crossbar large(test_cfg(16));
  const auto rs = run_march(small, march_cstar());
  const auto rl = run_march(large, march_cstar());
  EXPECT_NEAR(static_cast<double>(rl.total_ops) / rs.total_ops, 4.0, 0.01);
}

TEST(March, CoverageWithNoFaultsIsOne) {
  fault::FaultMap empty(8, 8);
  MarchResult res;
  EXPECT_DOUBLE_EQ(fault_coverage(empty, res), 1.0);
}

}  // namespace
}  // namespace cim::memtest
