#include "memtest/wear_leveling.hpp"

#include <gtest/gtest.h>

namespace cim::memtest {
namespace {

TEST(WearLeveling, ReadWriteRoundTrip) {
  WearLeveledMemory mem(8, 16, 1e9, 0, 3);
  mem.write(2, 0xBEEF);
  mem.write(5, 0x1234);
  EXPECT_EQ(mem.read(2), 0xBEEFu);
  EXPECT_EQ(mem.read(5), 0x1234u);
  EXPECT_FALSE(mem.failed());
}

TEST(WearLeveling, RotationPreservesLogicalContents) {
  WearLeveledMemory mem(4, 16, 1e9, /*rotate_every=*/3, 5);
  for (std::size_t r = 0; r < 4; ++r) mem.write(r, 0x1000u + r);
  // Trigger several rotations with extra writes.
  for (int k = 0; k < 10; ++k) mem.write(0, 0x1000u);
  for (std::size_t r = 1; r < 4; ++r) EXPECT_EQ(mem.read(r), 0x1000u + r);
}

TEST(WearLeveling, MappingActuallyRotates) {
  WearLeveledMemory mem(4, 8, 1e9, 2, 7);
  const auto before = mem.physical_row(0);
  for (int k = 0; k < 6; ++k) mem.write(0, 0xFF);
  EXPECT_NE(mem.physical_row(0), before);
}

TEST(WearLeveling, HotRowWearsOutStaticMapping) {
  WearLeveledMemory mem(8, 16, /*endurance=*/80.0, 0, 9);
  util::Rng rng(11);
  std::uint64_t w = 0;
  while (!mem.failed() && w < 20000) {
    mem.write(0, rng());  // all traffic on one row
    ++w;
  }
  EXPECT_TRUE(mem.failed());
  EXPECT_LT(mem.writes_survived(), 2000u);  // ~endurance, not rows*endurance
}

TEST(WearLeveling, RotationExtendsLifetimeUnderHotTraffic) {
  util::Rng rng(13);
  const auto rep = run_wear_leveling_experiment(
      /*rows=*/8, /*endurance=*/60.0, /*hot_fraction=*/0.9,
      /*max_writes=*/50000, rng);
  ASSERT_GT(rep.static_lifetime, 0u);
  ASSERT_GT(rep.rotated_lifetime, 0u);
  // The i2WAP effect: spreading the hot row multiplies lifetime.
  EXPECT_GT(rep.improvement, 2.0);
}

TEST(WearLeveling, Validation) {
  EXPECT_THROW(WearLeveledMemory(0, 8, 1e6, 0, 1), std::invalid_argument);
  EXPECT_THROW(WearLeveledMemory(4, 65, 1e6, 0, 1), std::invalid_argument);
  WearLeveledMemory mem(4, 8, 1e6, 0, 1);
  EXPECT_THROW(mem.write(4, 0), std::out_of_range);
}

}  // namespace
}  // namespace cim::memtest
