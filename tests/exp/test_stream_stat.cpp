/// \file test_stream_stat.cpp
/// \brief Streaming-statistics layer (obs/dataset.hpp): Welford updates
///        against closed-form moments, Chan merge exactness and
///        order-determinism, CI arithmetic, and DataSet keyed summaries.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "obs/dataset.hpp"
#include "util/rng.hpp"

namespace {

using cim::obs::DataSet;
using cim::obs::normal_quantile;
using cim::obs::StreamStat;
using cim::obs::z_for_confidence;

TEST(StreamStat, MatchesClosedFormMoments) {
  // 1..5: mean 3, sample variance 2.5, min 1, max 5.
  StreamStat s;
  for (int x = 1; x <= 5; ++x) s.add(static_cast<double>(x));
  EXPECT_EQ(s.n, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.sum(), 15.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(2.5), 1e-15);
  EXPECT_NEAR(s.std_error(), std::sqrt(2.5 / 5.0), 1e-15);
}

TEST(StreamStat, EmptyAndSingleton) {
  StreamStat s;
  EXPECT_EQ(s.n, 0u);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  // An unestimable CI must never satisfy a convergence target.
  EXPECT_TRUE(std::isinf(s.ci_half_width(1.96)));
  s.add(7.5);
  EXPECT_EQ(s.n, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 7.5);
  EXPECT_DOUBLE_EQ(s.min, 7.5);
  EXPECT_DOUBLE_EQ(s.max, 7.5);
  EXPECT_TRUE(std::isinf(s.ci_half_width(1.96)));
  s.add(7.5);
  // Degenerate two-sample stream: zero variance, zero CI.
  EXPECT_DOUBLE_EQ(s.ci_half_width(1.96), 0.0);
}

TEST(StreamStat, MergeEmptyIsIdentity) {
  StreamStat a;
  for (int i = 0; i < 10; ++i) a.add(0.1 * i);
  const StreamStat before = a;
  a.merge(StreamStat{});
  EXPECT_EQ(a.n, before.n);
  EXPECT_EQ(a.mean, before.mean);
  EXPECT_EQ(a.m2, before.m2);

  StreamStat empty;
  empty.merge(before);
  EXPECT_EQ(empty.n, before.n);
  EXPECT_EQ(empty.mean, before.mean);
  EXPECT_EQ(empty.m2, before.m2);
  EXPECT_EQ(empty.min, before.min);
  EXPECT_EQ(empty.max, before.max);
}

TEST(StreamStat, ChanMergeMatchesSequentialStatistically) {
  // Chan's merge is exact in exact arithmetic; in floating point it agrees
  // with the sequential accumulation to rounding error.
  cim::util::Rng rng(123);
  std::vector<double> xs(1000);
  for (double& x : xs) x = rng.normal(2.0, 0.5);

  StreamStat seq;
  for (const double x : xs) seq.add(x);

  StreamStat left, right;
  for (std::size_t i = 0; i < xs.size(); ++i)
    (i < xs.size() / 3 ? left : right).add(xs[i]);
  StreamStat merged = left;
  merged.merge(right);

  EXPECT_EQ(merged.n, seq.n);
  EXPECT_NEAR(merged.mean, seq.mean, 1e-12);
  EXPECT_NEAR(merged.m2, seq.m2, 1e-9 * seq.m2);
  EXPECT_EQ(merged.min, seq.min);
  EXPECT_EQ(merged.max, seq.max);
}

TEST(StreamStat, MergeIsDeterministicForFixedOrder) {
  // The campaign engine's contract: folding the same block summaries in
  // the same order yields bit-identical results, run after run.
  cim::util::Rng rng(9);
  std::vector<StreamStat> blocks(16);
  for (StreamStat& b : blocks)
    for (int i = 0; i < 32; ++i) b.add(rng.normal(0.0, 1.0));

  StreamStat fold1, fold2;
  for (const StreamStat& b : blocks) fold1.merge(b);
  for (const StreamStat& b : blocks) fold2.merge(b);
  EXPECT_EQ(fold1.n, fold2.n);
  EXPECT_EQ(fold1.mean, fold2.mean);  // bitwise
  EXPECT_EQ(fold1.m2, fold2.m2);
  EXPECT_EQ(fold1.min, fold2.min);
  EXPECT_EQ(fold1.max, fold2.max);
}

TEST(CiHelpers, NormalQuantileReferenceValues) {
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-9);
  EXPECT_NEAR(normal_quantile(0.975), 1.959963985, 1e-6);
  EXPECT_NEAR(normal_quantile(0.995), 2.575829304, 1e-6);
  EXPECT_NEAR(normal_quantile(0.025), -1.959963985, 1e-6);
  EXPECT_TRUE(std::isinf(normal_quantile(0.0)));
  EXPECT_TRUE(std::isinf(normal_quantile(1.0)));
}

TEST(CiHelpers, ZForConfidenceIsTwoSided) {
  EXPECT_NEAR(z_for_confidence(0.95), 1.959963985, 1e-6);
  EXPECT_NEAR(z_for_confidence(0.99), 2.575829304, 1e-6);
  EXPECT_NEAR(z_for_confidence(0.6827), 1.0, 1e-3);
}

TEST(CiHelpers, CiHalfWidthFormula) {
  StreamStat s;
  for (int x = 1; x <= 5; ++x) s.add(static_cast<double>(x));
  const double z = 1.96;
  EXPECT_NEAR(s.ci_half_width(z), z * std::sqrt(2.5 / 5.0), 1e-12);
}

TEST(DataSet, ObserveAbsorbAndSortedRows) {
  DataSet d;
  d.observe("zeta", 1.0);
  d.observe("alpha", 2.0);
  d.observe("alpha", 4.0);

  StreamStat extra;
  extra.add(10.0);
  extra.add(20.0);
  d.absorb("mid", extra);

  ASSERT_EQ(d.size(), 3u);
  const auto rows = d.rows();
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].key, "alpha");
  EXPECT_EQ(rows[1].key, "mid");
  EXPECT_EQ(rows[2].key, "zeta");
  EXPECT_DOUBLE_EQ(d.stat("alpha").mean, 3.0);
  EXPECT_EQ(d.stat("mid").n, 2u);
  EXPECT_FALSE(d.contains("nope"));
  EXPECT_EQ(d.stat("nope").n, 0u);
}

TEST(DataSet, MergeIsKeyWise) {
  DataSet a, b;
  a.observe("x", 1.0);
  a.observe("x", 3.0);
  b.observe("x", 5.0);
  b.observe("y", 7.0);
  a.merge(b);
  EXPECT_EQ(a.stat("x").n, 3u);
  EXPECT_DOUBLE_EQ(a.stat("x").mean, 3.0);
  EXPECT_EQ(a.stat("y").n, 1u);
}

TEST(DataSet, SummaryTableMentionsEveryKey) {
  DataSet d;
  d.observe("cellA", 1.0);
  d.observe("cellB", 2.0);
  const std::string table = d.summary_table(0.95);
  EXPECT_NE(table.find("cellA"), std::string::npos);
  EXPECT_NE(table.find("cellB"), std::string::npos);
}

}  // namespace
