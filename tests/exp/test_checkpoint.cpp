/// \file test_checkpoint.cpp
/// \brief cim-campaign-v1 manifests: dump -> parse -> dump fixpoint on
///        awkward doubles, fingerprint sensitivity, strict parse rejection,
///        and the atomic save / load round-trip.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <limits>
#include <string>

#include "exp/checkpoint.hpp"

namespace {

using cim::exp::campaign_fingerprint;
using cim::exp::CampaignManifest;
using cim::exp::CellCheckpoint;
using cim::exp::load_manifest;
using cim::exp::manifest_to_string;
using cim::exp::parse_manifest;
using cim::exp::save_manifest;

CampaignManifest demo_manifest() {
  CampaignManifest m;
  m.name = "demo";
  m.seed = 42;
  m.cells = 3;
  m.block = 8;
  m.fingerprint = campaign_fingerprint(m.name, m.seed, m.cells, m.block);
  m.rounds = 5;
  m.total_trials = 96;
  m.cell_state.resize(3);
  // Deliberately awkward doubles: non-terminating binary fractions,
  // denormal-adjacent magnitudes, negatives — %.17g must round-trip all
  // of them bit-exactly.
  m.cell_state[0].stat = {32, 0.1, 1.0 / 3.0, -2.7182818284590452,
                          3.141592653589793};
  m.cell_state[0].cursor = 32;
  m.cell_state[0].frozen = true;
  m.cell_state[1].stat = {40, -1e-17, 4.9406564584124654e-300, -1e300, 1e300};
  m.cell_state[1].cursor = 48;
  m.cell_state[2].stat = {24, 123456.789, 0.0, 123456.789, 123456.789};
  m.cell_state[2].cursor = 24;
  m.cell_state[2].frozen = true;
  m.cell_state[2].capped = true;
  return m;
}

void expect_manifest_eq(const CampaignManifest& a, const CampaignManifest& b) {
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.cells, b.cells);
  EXPECT_EQ(a.block, b.block);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.total_trials, b.total_trials);
  ASSERT_EQ(a.cell_state.size(), b.cell_state.size());
  for (std::size_t i = 0; i < a.cell_state.size(); ++i) {
    EXPECT_EQ(a.cell_state[i].stat.n, b.cell_state[i].stat.n);
    EXPECT_EQ(a.cell_state[i].stat.mean, b.cell_state[i].stat.mean);  // bitwise
    EXPECT_EQ(a.cell_state[i].stat.m2, b.cell_state[i].stat.m2);
    EXPECT_EQ(a.cell_state[i].stat.min, b.cell_state[i].stat.min);
    EXPECT_EQ(a.cell_state[i].stat.max, b.cell_state[i].stat.max);
    EXPECT_EQ(a.cell_state[i].cursor, b.cell_state[i].cursor);
    EXPECT_EQ(a.cell_state[i].frozen, b.cell_state[i].frozen);
    EXPECT_EQ(a.cell_state[i].capped, b.cell_state[i].capped);
  }
}

TEST(Checkpoint, DumpParseDumpIsFixpoint) {
  const CampaignManifest m = demo_manifest();
  const std::string once = manifest_to_string(m);
  const CampaignManifest parsed = parse_manifest(once);
  expect_manifest_eq(parsed, m);
  EXPECT_EQ(manifest_to_string(parsed), once);
}

TEST(Checkpoint, FingerprintDependsOnEveryIdentityField) {
  const std::uint64_t base = campaign_fingerprint("demo", 42, 3, 8);
  EXPECT_EQ(base, campaign_fingerprint("demo", 42, 3, 8));  // stable
  EXPECT_NE(base, campaign_fingerprint("demo2", 42, 3, 8));
  EXPECT_NE(base, campaign_fingerprint("demo", 43, 3, 8));
  EXPECT_NE(base, campaign_fingerprint("demo", 42, 4, 8));
  EXPECT_NE(base, campaign_fingerprint("demo", 42, 3, 9));
  // The separator is part of the identity: "ab"+"c" vs "a"+"bc" style
  // ambiguity must not collide.
  EXPECT_NE(campaign_fingerprint("ab1", 1, 1, 1),
            campaign_fingerprint("ab", 11, 1, 1));
}

TEST(Checkpoint, ParseRejectsMalformedInput) {
  const std::string good = manifest_to_string(demo_manifest());

  EXPECT_THROW(parse_manifest(""), std::runtime_error);
  EXPECT_THROW(parse_manifest("not-a-manifest\n"), std::runtime_error);
  // Wrong magic on line 1.
  EXPECT_THROW(parse_manifest("cim-campaign-v2\n" + good.substr(16)),
               std::runtime_error);
  // Truncated: drop the trailing "end" record.
  EXPECT_THROW(parse_manifest(good.substr(0, good.rfind("end"))),
               std::runtime_error);
  // Cell-count mismatch: drop one cell line.
  {
    std::string s = good;
    const auto p = s.find("cell 2 ");
    s.erase(p, s.find('\n', p) - p + 1);
    EXPECT_THROW(parse_manifest(s), std::runtime_error);
  }
  // Out-of-order cell indices.
  {
    std::string s = good;
    const auto p1 = s.find("cell 1 ");
    s.replace(p1 + 5, 1, "2");
    EXPECT_THROW(parse_manifest(s), std::runtime_error);
  }
  // Fingerprint inconsistent with the identity line.
  {
    std::string s = good;
    const auto p = s.find("fingerprint ");
    s.replace(p + 12, 1, s[p + 12] == '0' ? "1" : "0");
    EXPECT_THROW(parse_manifest(s), std::runtime_error);
  }
  // Garbage numeric field.
  {
    std::string s = good;
    const auto p = s.find("rounds ");
    s.replace(p + 7, 1, "x");
    EXPECT_THROW(parse_manifest(s), std::runtime_error);
  }
  // cursor < count is impossible state.
  {
    std::string s = good;
    const auto p = s.find("cursor 48");
    s.replace(p, 9, "cursor 7");
    EXPECT_THROW(parse_manifest(s), std::runtime_error);
  }
}

TEST(Checkpoint, SaveLoadRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "cim_test_ckpt.cimcampaign")
          .string();
  const CampaignManifest m = demo_manifest();
  ASSERT_TRUE(save_manifest(path, m));

  CampaignManifest back;
  std::string err;
  ASSERT_TRUE(load_manifest(path, back, &err)) << err;
  expect_manifest_eq(back, m);

  // No stray temp file left behind by the atomic write.
  EXPECT_FALSE(
      std::filesystem::exists(path + ".tmp"));
  std::filesystem::remove(path);
}

TEST(Checkpoint, LoadReportsMissingAndMalformedFiles) {
  CampaignManifest m;
  std::string err;
  EXPECT_FALSE(load_manifest("/nonexistent/dir/nope.cimcampaign", m, &err));
  EXPECT_FALSE(err.empty());

  const std::string path =
      (std::filesystem::temp_directory_path() / "cim_test_bad.cimcampaign")
          .string();
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("garbage\n", f);
    std::fclose(f);
  }
  err.clear();
  EXPECT_FALSE(load_manifest(path, m, &err));
  EXPECT_FALSE(err.empty());
  std::filesystem::remove(path);
}

}  // namespace
