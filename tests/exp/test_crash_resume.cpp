/// \file test_crash_resume.cpp
/// \brief Crash-safety gate: a campaign process SIGKILLed at arbitrary
///        points must, after resuming from its last checkpoint, converge
///        on a final manifest byte-identical to an uninterrupted run.
///
/// The victim is this test binary re-exec'd with GTEST_FILTER steering it
/// into the CrashResumeChild helper, which runs the shared campaign
/// against a checkpoint path from the environment. The parent kills
/// victims at a ladder of delays — some die before the first checkpoint,
/// some mid-round, some during a manifest write (the atomic tmp+rename is
/// what keeps that survivable) — then finishes the campaign in-process
/// and compares manifests byte for byte.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cmath>
#include <cstdlib>
#include <fcntl.h>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "exp/campaign.hpp"
#include "util/thread_pool.hpp"

namespace {

using cim::exp::CampaignConfig;
using cim::exp::run_campaign;
using cim::exp::TrialFn;

constexpr const char* kCkptEnv = "CIM_TEST_CRASH_CKPT";

CampaignConfig crash_config(const std::string& ckpt) {
  CampaignConfig cfg;
  cfg.name = "tcr_crash";
  cfg.seed = 29;
  cfg.cells = 6;
  cfg.block = 8;
  cfg.adaptive = false;
  cfg.fixed_trials = 256;  // 8 rounds of 32/cell => several checkpoints
  cfg.max_trials = 256;
  cfg.checkpoint_path = ckpt;
  cfg.checkpoint_every_rounds = 1;
  cfg.pool = &cim::util::ThreadPool::global();
  return cfg;
}

TrialFn crash_trial() {
  return [](std::size_t cell, std::uint64_t rep, cim::util::Rng& rng) {
    // Enough deterministic work per trial (~100us) that the whole campaign
    // spans the kill ladder, with several round-boundary checkpoints.
    double acc = rng.normal(static_cast<double>(cell), 0.3);
    double x = 1e-3 * static_cast<double>(rep + 1);
    for (int i = 0; i < 8000; ++i) acc += 1e-9 * std::sin(x + i);
    return acc;
  };
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(CrashResumeChild, RunsSharedCampaignFromEnv) {
  const char* ckpt = std::getenv(kCkptEnv);
  if (ckpt == nullptr || *ckpt == '\0')
    GTEST_SKIP() << "victim-child helper (" << kCkptEnv << " unset)";
  (void)run_campaign(crash_config(ckpt), crash_trial());
}

TEST(CrashResume, KilledCampaignResumesBitIdentical) {
  namespace fs = std::filesystem;
  const std::string dir = fs::temp_directory_path().string();
  const std::string victim_ckpt = dir + "/tcr_victim.cimcampaign";
  const std::string ref_ckpt = dir + "/tcr_reference.cimcampaign";
  fs::remove(victim_ckpt);
  fs::remove(ref_ckpt);

  // Uninterrupted reference run.
  (void)run_campaign(crash_config(ref_ckpt), crash_trial());
  ASSERT_TRUE(fs::exists(ref_ckpt));
  const std::string ref_bytes = slurp(ref_ckpt);
  ASSERT_FALSE(ref_bytes.empty());

  // Kill ladder: victims progress further and further before dying.
  setenv(kCkptEnv, victim_ckpt.c_str(), 1);
  setenv("GTEST_FILTER", "CrashResumeChild.RunsSharedCampaignFromEnv", 1);
  for (const int delay_ms : {10, 40, 80, 140, 220}) {
    const pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      const int devnull = open("/dev/null", O_WRONLY);
      if (devnull >= 0) {
        dup2(devnull, STDOUT_FILENO);
        dup2(devnull, STDERR_FILENO);
        close(devnull);
      }
      execl("/proc/self/exe", "/proc/self/exe", (char*)nullptr);
      _exit(127);  // exec failed
    }
    usleep(static_cast<useconds_t>(delay_ms) * 1000);
    kill(pid, SIGKILL);
    int status = 0;
    waitpid(pid, &status, 0);
  }
  unsetenv("GTEST_FILTER");
  unsetenv(kCkptEnv);

  // Finish from whatever state the last victim left behind. Any torn or
  // missing checkpoint would either throw (corrupt file) or change the
  // final statistics (lost/duplicated trials) — byte equality catches all
  // of it.
  (void)run_campaign(crash_config(victim_ckpt), crash_trial());
  const std::string victim_bytes = slurp(victim_ckpt);
  EXPECT_EQ(victim_bytes, ref_bytes);

  fs::remove(victim_ckpt);
  fs::remove(ref_ckpt);
}

}  // namespace
