/// \file test_worker.cpp
/// \brief Process-level sharding: a campaign sharded across fork/exec'd
///        worker processes must be bit-identical to the serial run, and
///        the workers' telemetry snapshots must fold back into the parent
///        registry.
///
/// The worker re-exec trick under gtest: a spawned child re-runs this test
/// binary, and GTEST_FILTER (set in the environment before the campaign
/// starts, inherited through exec) steers the child into THIS test, whose
/// first run_campaign call detects worker mode and becomes the protocol
/// server for the parent. Parent and child therefore build the exact same
/// campaign closure from the same code path.
#include <gtest/gtest.h>

#include <cstdlib>

#include "exp/campaign.hpp"
#include "exp/worker.hpp"
#include "obs/obs.hpp"
#include "util/thread_pool.hpp"

namespace {

using cim::exp::CampaignConfig;
using cim::exp::CampaignResult;
using cim::exp::run_campaign;
using cim::exp::TrialFn;

CampaignConfig worker_config() {
  CampaignConfig cfg;
  cfg.name = "tw_shards";
  cfg.seed = 19;
  cfg.cells = 6;
  cfg.block = 4;
  cfg.min_trials = 8;
  cfg.max_trials = 128;
  cfg.ci_target = 0.08;
  return cfg;
}

TrialFn counted_trial() {
  return [](std::size_t cell, std::uint64_t /*rep*/, cim::util::Rng& rng) {
    // The counter rides along so the test can prove worker telemetry makes
    // it back: children ship it in their snapshot, the parent absorbs it.
    cim::obs::Registry::global().counter("test.worker_trials").add(1);
    return rng.normal(static_cast<double>(cell),
                      0.05 + 0.1 * static_cast<double>(cell));
  };
}

TEST(CampaignWorker, ShardsMatchSerialBitwise) {
  // Children exec'd during the sharded run re-enter this very test; their
  // first run_campaign call below (the serial one — same fingerprint)
  // turns them into protocol servers.
  setenv("GTEST_FILTER", "CampaignWorker.ShardsMatchSerialBitwise", 1);

  cim::obs::Registry::global().reset();
  CampaignConfig serial = worker_config();
  const CampaignResult a = run_campaign(serial, counted_trial());
  const cim::obs::Snapshot serial_snap = cim::obs::Registry::global().snapshot();

  cim::obs::Registry::global().reset();
  CampaignConfig sharded = worker_config();
  sharded.workers = 3;  // parent + 2 children
  sharded.pool = &cim::util::ThreadPool::global();
  const CampaignResult b = run_campaign(sharded, counted_trial());
  const cim::obs::Snapshot shard_snap = cim::obs::Registry::global().snapshot();
  unsetenv("GTEST_FILTER");

  // Spawning can legitimately fail only in exotic sandboxes; if it did,
  // the fallback already proved itself by matching, but the test's point
  // is the sharded path, so require it.
  ASSERT_EQ(b.worker_shards, 3u);

  ASSERT_EQ(a.cells.size(), b.cells.size());
  EXPECT_EQ(a.total_trials, b.total_trials);
  EXPECT_EQ(a.rounds, b.rounds);
  for (std::size_t c = 0; c < a.cells.size(); ++c) {
    EXPECT_EQ(a.cells[c].stat.n, b.cells[c].stat.n) << "cell " << c;
    EXPECT_EQ(a.cells[c].stat.mean, b.cells[c].stat.mean) << "cell " << c;
    EXPECT_EQ(a.cells[c].stat.m2, b.cells[c].stat.m2) << "cell " << c;
    EXPECT_EQ(a.cells[c].stat.min, b.cells[c].stat.min) << "cell " << c;
    EXPECT_EQ(a.cells[c].stat.max, b.cells[c].stat.max) << "cell " << c;
    EXPECT_EQ(a.cells[c].frozen, b.cells[c].frozen) << "cell " << c;
  }

  // Telemetry absorption: every shard counted its own trials; after the
  // parent absorbs the worker snapshots the counter totals the campaign,
  // exactly like the serial run's.
  const auto counter_of = [](const cim::obs::Snapshot& s, const char* name) {
    std::uint64_t v = 0;
    for (const auto& [n, c] : s.counters)
      if (n == name) v = c;
    return v;
  };
  EXPECT_EQ(counter_of(serial_snap, "test.worker_trials"), a.total_trials);
  EXPECT_EQ(counter_of(shard_snap, "test.worker_trials"), b.total_trials);
  EXPECT_GT(b.worker_telemetry.counters_added, 0u);
}

TEST(CampaignWorker, NotInWorkerModeByDefault) {
  EXPECT_FALSE(cim::exp::in_worker_mode());
}

TEST(CampaignWorker, FingerprintMismatchFallsBackInProcess) {
  // Children are steered into a test that serves a DIFFERENT campaign
  // fingerprint, so the begin handshake nacks and the parent must fall
  // back to in-process execution with identical results.
  setenv("GTEST_FILTER", "CampaignWorker.ServesOtherCampaign", 1);

  CampaignConfig serial = worker_config();
  serial.name = "tw_fallback";
  const CampaignResult a = run_campaign(serial, counted_trial());

  CampaignConfig sharded = serial;
  sharded.workers = 3;
  const CampaignResult b = run_campaign(sharded, counted_trial());
  unsetenv("GTEST_FILTER");

  EXPECT_EQ(b.worker_shards, 1u);  // handshake refused -> no sharding
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (std::size_t c = 0; c < a.cells.size(); ++c) {
    EXPECT_EQ(a.cells[c].stat.mean, b.cells[c].stat.mean);
    EXPECT_EQ(a.cells[c].stat.n, b.cells[c].stat.n);
  }
}

TEST(CampaignWorker, ServesOtherCampaign) {
  // Helper for FingerprintMismatchFallsBackInProcess: only ever *runs a
  // campaign* inside a worker child (where run_campaign never returns).
  // In a normal test process it is a no-op.
  if (!cim::exp::in_worker_mode()) GTEST_SKIP() << "worker-child helper";
  CampaignConfig other = worker_config();
  other.name = "tw_other_campaign";  // different fingerprint -> nack
  (void)run_campaign(other, counted_trial());
}

}  // namespace
