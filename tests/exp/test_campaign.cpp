/// \file test_campaign.cpp
/// \brief Campaign runner: bit-identical results at any thread count,
///        adaptive freezing/capping/reinvestment semantics, fixed-count
///        mode, checkpoint resume, config validation, and the exp.*
///        telemetry stream.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>

#include "exp/campaign.hpp"
#include "obs/obs.hpp"
#include "util/thread_pool.hpp"

namespace {

using cim::exp::CampaignConfig;
using cim::exp::CampaignResult;
using cim::exp::run_campaign;
using cim::exp::TrialFn;

/// Heteroscedastic workload: cell c draws from N(c, (0.01 + 0.2*c)^2), so
/// cell 0 is nearly deterministic and later cells are noisy — the shape
/// adaptive stopping exists for.
TrialFn noisy_cells() {
  return [](std::size_t cell, std::uint64_t /*rep*/, cim::util::Rng& rng) {
    return rng.normal(static_cast<double>(cell),
                      0.01 + 0.2 * static_cast<double>(cell));
  };
}

CampaignConfig base_config(const char* name) {
  CampaignConfig cfg;
  cfg.name = name;
  cfg.seed = 7;
  cfg.cells = 4;
  cfg.block = 4;
  cfg.min_trials = 8;
  cfg.max_trials = 256;
  cfg.ci_target = 0.1;
  return cfg;
}

void expect_bitwise_equal(const CampaignResult& a, const CampaignResult& b) {
  ASSERT_EQ(a.cells.size(), b.cells.size());
  EXPECT_EQ(a.total_trials, b.total_trials);
  EXPECT_EQ(a.rounds, b.rounds);
  for (std::size_t c = 0; c < a.cells.size(); ++c) {
    EXPECT_EQ(a.cells[c].stat.n, b.cells[c].stat.n) << "cell " << c;
    EXPECT_EQ(a.cells[c].stat.mean, b.cells[c].stat.mean) << "cell " << c;
    EXPECT_EQ(a.cells[c].stat.m2, b.cells[c].stat.m2) << "cell " << c;
    EXPECT_EQ(a.cells[c].stat.min, b.cells[c].stat.min) << "cell " << c;
    EXPECT_EQ(a.cells[c].stat.max, b.cells[c].stat.max) << "cell " << c;
    EXPECT_EQ(a.cells[c].frozen, b.cells[c].frozen) << "cell " << c;
    EXPECT_EQ(a.cells[c].capped, b.cells[c].capped) << "cell " << c;
  }
}

TEST(Campaign, SerialAndThreadedRunsAreBitIdentical) {
  CampaignConfig serial = base_config("tc_threads");
  serial.pool = nullptr;
  const CampaignResult a = run_campaign(serial, noisy_cells());

  CampaignConfig pooled = serial;
  pooled.pool = &cim::util::ThreadPool::global();
  const CampaignResult b = run_campaign(pooled, noisy_cells());

  expect_bitwise_equal(a, b);
  ASSERT_EQ(a.decisions.size(), b.decisions.size());
  for (std::size_t i = 0; i < a.decisions.size(); ++i) {
    EXPECT_EQ(a.decisions[i].round, b.decisions[i].round);
    EXPECT_EQ(a.decisions[i].cell, b.decisions[i].cell);
    EXPECT_EQ(a.decisions[i].rep_begin, b.decisions[i].rep_begin);
    EXPECT_EQ(a.decisions[i].rep_count, b.decisions[i].rep_count);
  }
}

TEST(Campaign, AdaptiveStoppingSpendsTrialsWhereTheVarianceIs) {
  const CampaignResult res =
      run_campaign(base_config("tc_adaptive"), noisy_cells());
  // Every cell converged (generous absolute target, plenty of budget).
  for (const auto& c : res.cells) {
    EXPECT_TRUE(c.frozen) << c.name;
    EXPECT_FALSE(c.capped) << c.name;
  }
  // The near-deterministic cell froze at the floor; the noisiest cell
  // needed strictly more replications.
  EXPECT_EQ(res.cells[0].stat.n, 8u);
  EXPECT_GT(res.cells[3].stat.n, res.cells[0].stat.n);
  EXPECT_GE(res.rounds, 2u);
  // Decision log covers exactly the executed trials.
  std::uint64_t decided = 0;
  for (const auto& d : res.decisions) decided += d.rep_count;
  EXPECT_EQ(decided, res.total_trials);
}

TEST(Campaign, CapsCellsThatExhaustTheBudget) {
  CampaignConfig cfg = base_config("tc_capped");
  cfg.max_trials = 16;
  cfg.ci_target = 1e-9;  // unreachable
  const CampaignResult res = run_campaign(cfg, noisy_cells());
  for (const auto& c : res.cells) {
    EXPECT_TRUE(c.frozen) << c.name;
    EXPECT_TRUE(c.capped) << c.name;
    EXPECT_EQ(c.stat.n, 16u) << c.name;
  }
}

TEST(Campaign, FixedModeRunsExactlyFixedTrials) {
  CampaignConfig cfg = base_config("tc_fixed");
  cfg.adaptive = false;
  cfg.fixed_trials = 23;  // not a block multiple: last block is partial
  const CampaignResult res = run_campaign(cfg, noisy_cells());
  EXPECT_EQ(res.total_trials, 23u * cfg.cells);
  for (const auto& c : res.cells) {
    EXPECT_EQ(c.stat.n, 23u);
    EXPECT_TRUE(c.frozen);
    EXPECT_FALSE(c.capped);
  }
}

TEST(Campaign, TrialRngIsAPureFunctionOfSeedCellRep) {
  // Identical campaigns see identical per-trial randomness; a different
  // master seed changes it.
  EXPECT_EQ(cim::exp::trial_seed(7, 2, 11), cim::exp::trial_seed(7, 2, 11));
  EXPECT_NE(cim::exp::trial_seed(7, 2, 11), cim::exp::trial_seed(8, 2, 11));
  EXPECT_NE(cim::exp::trial_seed(7, 2, 11), cim::exp::trial_seed(7, 3, 11));
  EXPECT_NE(cim::exp::trial_seed(7, 2, 11), cim::exp::trial_seed(7, 2, 12));
}

TEST(Campaign, SummaryAndNamesMatchCells) {
  CampaignConfig cfg = base_config("tc_names");
  cfg.cell_names = {"alpha", "beta"};  // cells 2, 3 fall back to cell<i>
  const CampaignResult res = run_campaign(cfg, noisy_cells());
  ASSERT_EQ(res.cells.size(), 4u);
  EXPECT_EQ(res.cells[0].name, "alpha");
  EXPECT_EQ(res.cells[1].name, "beta");
  EXPECT_EQ(res.cells[2].name, "cell2");
  EXPECT_EQ(res.cells[3].name, "cell3");
  for (const auto& c : res.cells) {
    ASSERT_TRUE(res.summary.contains(c.name));
    EXPECT_EQ(res.summary.stat(c.name).n, c.stat.n);
    EXPECT_EQ(res.summary.stat(c.name).mean, c.stat.mean);
  }
}

TEST(Campaign, RejectsMalformedConfigs) {
  CampaignConfig cfg = base_config("tc_bad");
  cfg.cells = 0;
  EXPECT_THROW(run_campaign(cfg, noisy_cells()), std::invalid_argument);
  cfg = base_config("tc_bad");
  cfg.block = 0;
  EXPECT_THROW(run_campaign(cfg, noisy_cells()), std::invalid_argument);
  cfg = base_config("");
  EXPECT_THROW(run_campaign(cfg, noisy_cells()), std::invalid_argument);
  cfg = base_config("has space");
  EXPECT_THROW(run_campaign(cfg, noisy_cells()), std::invalid_argument);
}

TEST(Campaign, CheckpointResumeContinuesExactly) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "tc_resume.cimcampaign")
          .string();
  std::filesystem::remove(path);

  // Reference: one uninterrupted run (no checkpointing involved).
  CampaignConfig ref_cfg = base_config("tc_resume");
  const CampaignResult ref = run_campaign(ref_cfg, noisy_cells());

  // Interrupted run: the trial function throws partway through round 2,
  // modeling a crash; the round-1 checkpoint survives on disk.
  CampaignConfig phase1 = ref_cfg;
  phase1.checkpoint_path = path;
  std::size_t calls = 0;
  const TrialFn inner = noisy_cells();
  const TrialFn flaky = [&](std::size_t cell, std::uint64_t rep,
                            cim::util::Rng& rng) {
    if (++calls > 40) throw std::runtime_error("injected crash");
    return inner(cell, rep, rng);
  };
  EXPECT_THROW(run_campaign(phase1, flaky), std::runtime_error);
  ASSERT_TRUE(std::filesystem::exists(path));

  // ...which the full-budget rerun resumes and finishes. Because every
  // scheduler decision is a pure function of the merged summaries, the
  // final state matches the uninterrupted run bit for bit.
  CampaignConfig phase2 = ref_cfg;
  phase2.checkpoint_path = path;
  const CampaignResult resumed = run_campaign(phase2, noisy_cells());
  EXPECT_TRUE(resumed.resumed);
  ASSERT_EQ(resumed.cells.size(), ref.cells.size());
  for (std::size_t c = 0; c < ref.cells.size(); ++c) {
    EXPECT_EQ(resumed.cells[c].stat.n, ref.cells[c].stat.n);
    EXPECT_EQ(resumed.cells[c].stat.mean, ref.cells[c].stat.mean);
    EXPECT_EQ(resumed.cells[c].stat.m2, ref.cells[c].stat.m2);
  }
  EXPECT_EQ(resumed.total_trials, ref.total_trials);

  // Resuming a finished campaign is a no-op restore.
  const CampaignResult again = run_campaign(phase2, noisy_cells());
  EXPECT_TRUE(again.resumed);
  EXPECT_EQ(again.total_trials, ref.total_trials);
  EXPECT_EQ(again.rounds, resumed.rounds);
  std::filesystem::remove(path);
}

TEST(Campaign, CheckpointFingerprintMismatchThrows) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "tc_mismatch.cimcampaign")
          .string();
  std::filesystem::remove(path);
  CampaignConfig cfg = base_config("tc_mismatch");
  cfg.checkpoint_path = path;
  (void)run_campaign(cfg, noisy_cells());
  ASSERT_TRUE(std::filesystem::exists(path));

  CampaignConfig other = cfg;
  other.seed = 999;  // different identity, same path
  EXPECT_THROW(run_campaign(other, noisy_cells()), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(Campaign, ConvergenceCsvAndTelemetryAreEmitted) {
  const std::string csv =
      (std::filesystem::temp_directory_path() / "tc_conv.csv").string();
  std::filesystem::remove(csv);

  cim::obs::Registry::global().reset();
  CampaignConfig cfg = base_config("tc_telemetry");
  cfg.convergence_csv = csv;
  const CampaignResult res = run_campaign(cfg, noisy_cells());

  const cim::obs::Snapshot snap = cim::obs::Registry::global().snapshot();
  std::uint64_t trials_done = 0, rounds = 0;
  bool saw_frozen_gauge = false, saw_cell_gauge = false;
  for (const auto& [name, v] : snap.counters) {
    if (name == "exp.trials_done") trials_done = v;
    if (name == "exp.rounds") rounds = v;
  }
  for (const auto& [name, v] : snap.gauges) {
    if (name == "exp.cells_frozen") saw_frozen_gauge = true;
    if (name.rfind("exp.cell.ci_half.", 0) == 0) saw_cell_gauge = true;
  }
  EXPECT_EQ(trials_done, res.total_trials);
  EXPECT_EQ(rounds, res.rounds);
  EXPECT_TRUE(saw_frozen_gauge);
  EXPECT_TRUE(saw_cell_gauge);

  ASSERT_TRUE(std::filesystem::exists(csv));
  std::ifstream in(csv);
  std::string header;
  ASSERT_TRUE(std::getline(in, header));
  EXPECT_EQ(header, "round,cell,name,n,mean,ci_half,frozen");
  std::size_t lines = 0;
  for (std::string line; std::getline(in, line);) ++lines;
  // One row per cell per round.
  EXPECT_EQ(lines, res.rounds * cfg.cells);
  std::filesystem::remove(csv);
}

}  // namespace
