/// \file test_seed_audit.cpp
/// \brief Collision audit of the campaign RNG key space.
///
/// Every Monte-Carlo trial derives its generator from
/// trial_seed(seed, cell, rep) == Rng::stream_seed2(seed, cell, rep). A
/// collision between two (cell, rep) keys silently correlates two trials
/// that every statistic downstream assumes independent, so the audit walks
/// a campaign-shaped key space (wide rep ranges, many cells, several
/// master seeds) and requires all seeds distinct — plus structural
/// separation from the single-index stream_seed family, which the
/// rng.hpp NESTED SPLITTING note says must never alias.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "exp/campaign.hpp"
#include "util/rng.hpp"

namespace {

using cim::util::Rng;

std::size_t count_collisions(std::vector<std::uint64_t>& seeds) {
  std::sort(seeds.begin(), seeds.end());
  std::size_t dup = 0;
  for (std::size_t i = 1; i < seeds.size(); ++i)
    if (seeds[i] == seeds[i - 1]) ++dup;
  return dup;
}

TEST(SeedAudit, CampaignKeySpaceIsCollisionFree) {
  // 64 cells x 4096 reps x 3 master seeds = 786432 derived seeds. A single
  // collision correlates two trials; with a sound 64-bit mix the expected
  // number here is ~2^-25.
  std::vector<std::uint64_t> seeds;
  seeds.reserve(64 * 4096 * 3);
  for (const std::uint64_t master : {1ULL, 97ULL, 0xdeadbeefULL})
    for (std::uint64_t cell = 0; cell < 64; ++cell)
      for (std::uint64_t rep = 0; rep < 4096; ++rep)
        seeds.push_back(cim::exp::trial_seed(master, cell, rep));
  EXPECT_EQ(count_collisions(seeds), 0u);
}

TEST(SeedAudit, TwoIndexSplitIsNotTheNestedSingleSplit) {
  // The failure mode documented in rng.hpp: chaining stream_seed through
  // itself reuses one mixing family for both levels. stream_seed2 must be
  // a distinct family — not equal to the nested composition, and not equal
  // to the single-index split even at hi == 0.
  std::size_t nested_hits = 0, single_hits = 0;
  for (std::uint64_t s = 1; s <= 8; ++s)
    for (std::uint64_t hi = 0; hi < 16; ++hi)
      for (std::uint64_t lo = 0; lo < 16; ++lo) {
        const std::uint64_t two = Rng::stream_seed2(s, hi, lo);
        if (two == Rng::stream_seed(Rng::stream_seed(s, hi), lo))
          ++nested_hits;
        if (two == Rng::stream_seed(s, lo)) ++single_hits;
      }
  EXPECT_EQ(nested_hits, 0u);
  EXPECT_EQ(single_hits, 0u);
}

TEST(SeedAudit, MixedFamiliesDoNotAliasInOneExperiment) {
  // An experiment may use stream_seed for subsystem streams and
  // stream_seed2 for the trial grid off the SAME master seed; the combined
  // key space must still be collision-free.
  const std::uint64_t master = 42;
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 4096; ++i)
    seeds.push_back(Rng::stream_seed(master, i));
  for (std::uint64_t cell = 0; cell < 64; ++cell)
    for (std::uint64_t rep = 0; rep < 64; ++rep)
      seeds.push_back(Rng::stream_seed2(master, cell, rep));
  EXPECT_EQ(count_collisions(seeds), 0u);
}

TEST(SeedAudit, Stream2GeneratorMatchesSeed) {
  Rng direct(Rng::stream_seed2(7, 3, 11));
  Rng via = Rng::stream2(7, 3, 11);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(direct(), via());
}

TEST(SeedAudit, DerivedStreamsLookIndependent) {
  // Adjacent keys must not produce correlated low-order behavior: check
  // the first draw of neighboring streams spreads over [0,1) instead of
  // clustering (a weak but cheap independence smoke test).
  cim::obs::StreamStat s;
  for (std::uint64_t rep = 0; rep < 2048; ++rep) {
    Rng r = Rng::stream2(123, 5, rep);
    s.add(r.uniform());
  }
  EXPECT_NEAR(s.mean, 0.5, 0.02);
  EXPECT_NEAR(s.variance(), 1.0 / 12.0, 0.01);
  EXPECT_LT(s.min, 0.01);
  EXPECT_GT(s.max, 0.99);
}

}  // namespace
