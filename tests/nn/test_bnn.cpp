#include "nn/bnn.hpp"

#include <gtest/gtest.h>

namespace cim::nn {
namespace {

TEST(BitVector, SetGetRoundTrip) {
  BitVector b(130);
  b.set(0, true);
  b.set(64, true);
  b.set(129, true);
  EXPECT_TRUE(b.get(0));
  EXPECT_TRUE(b.get(64));
  EXPECT_TRUE(b.get(129));
  EXPECT_FALSE(b.get(1));
  b.set(64, false);
  EXPECT_FALSE(b.get(64));
}

TEST(BitVector, OutOfRangeThrows) {
  BitVector b(10);
  EXPECT_THROW(b.set(10, true), std::out_of_range);
  EXPECT_THROW((void)b.get(10), std::out_of_range);
}

TEST(Binarize, SignRule) {
  const std::vector<double> x = {-1.0, 0.0, 0.5, -0.1};
  const auto b = binarize(x);
  EXPECT_FALSE(b.get(0));
  EXPECT_TRUE(b.get(1));  // >= 0 -> +1
  EXPECT_TRUE(b.get(2));
  EXPECT_FALSE(b.get(3));
}

TEST(XnorPopcount, CountsAgreements) {
  BitVector a(8), b(8);
  for (std::size_t i = 0; i < 8; ++i) {
    a.set(i, i % 2 == 0);
    b.set(i, i % 4 < 2);
  }
  // a: 1 0 1 0 1 0 1 0 ; b: 1 1 0 0 1 1 0 0 -> agree at 0,3,4,7.
  EXPECT_EQ(xnor_popcount(a, b), 4u);
}

TEST(XnorPopcount, SelfIsAllOnes) {
  BitVector a(100);
  for (std::size_t i = 0; i < 100; i += 3) a.set(i, true);
  EXPECT_EQ(xnor_popcount(a, a), 100u);
}

TEST(XnorPopcount, TailBitsMasked) {
  BitVector a(65), b(65);  // one bit into the second word
  EXPECT_EQ(xnor_popcount(a, b), 65u);
}

TEST(XnorPopcount, SizeMismatchThrows) {
  BitVector a(8), b(9);
  EXPECT_THROW((void)xnor_popcount(a, b), std::invalid_argument);
}

TEST(BinaryDense, MatchesSignDotProduct) {
  util::Matrix w = {{1.0, -2.0, 0.5}, {-0.1, -0.2, -0.3}};
  BinaryDense layer(w);
  BitVector x(3);
  x.set(0, true);   // +1
  x.set(1, false);  // -1
  x.set(2, true);   // +1
  const auto y = layer.forward(x);
  // Row 0 signs: +1, -1, +1 -> dot = 1 + 1 + 1 = 3.
  EXPECT_EQ(y[0], 3);
  // Row 1 signs: -1, -1, -1 -> dot = -1 + 1 - 1 = -1.
  EXPECT_EQ(y[1], -1);
}

TEST(BinaryDense, OutputRangeBounded) {
  util::Rng rng(3);
  util::Matrix w(4, 64);
  for (auto& v : w.flat()) v = rng.normal(0.0, 1.0);
  BinaryDense layer(w);
  BitVector x(64);
  for (std::size_t i = 0; i < 64; ++i) x.set(i, rng.bernoulli(0.5));
  for (const int y : layer.forward(x)) {
    EXPECT_GE(y, -64);
    EXPECT_LE(y, 64);
  }
}

TEST(BinaryMlp, BeatsChanceOnDigits) {
  util::Rng rng(5);
  const auto train = generate_digits(800, rng, 0.05);
  Mlp net({kPixels, 48, kClasses}, rng);
  net.fit(train, 40, 0.05, rng);
  ASSERT_GT(net.accuracy(train), 0.9);

  BinaryMlp bnn(net);
  // Binarization costs accuracy but must stay far above the 10% chance
  // level for the FeRFET BNN experiment to be meaningful.
  EXPECT_GT(bnn.accuracy(train), 0.3);
}

TEST(BinaryMlp, PredictInClassRange) {
  util::Rng rng(7);
  Mlp net({kPixels, 16, kClasses}, rng);
  BinaryMlp bnn(net);
  const auto ds = generate_digits(20, rng);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    const int p = bnn.predict(ds.features.row(i));
    EXPECT_GE(p, 0);
    EXPECT_LT(p, kClasses);
  }
}

}  // namespace
}  // namespace cim::nn
