#include "nn/sparse_coding.hpp"

#include <gtest/gtest.h>

#include "util/stats.hpp"

namespace cim::nn {
namespace {

CrossbarLinearConfig quiet_cfg() {
  CrossbarLinearConfig cfg;
  cfg.array.seed = 5;
  cfg.array.model_ir_drop = false;
  cfg.program_verify = true;
  return cfg;
}

TEST(SparseCoding, ProblemGeneratorShapes) {
  util::Rng rng(3);
  const auto prob = generate_sparse_problem(16, 32, 10, 3, 0.01, rng);
  EXPECT_EQ(prob.dictionary.rows(), 16u);
  EXPECT_EQ(prob.dictionary.cols(), 32u);
  EXPECT_EQ(prob.signals.rows(), 10u);
  EXPECT_EQ(prob.true_codes.size(), 10u);
  for (const auto& code : prob.true_codes) {
    std::size_t nnz = 0;
    for (const double v : code)
      if (v != 0.0) ++nnz;
    EXPECT_EQ(nnz, 3u);
  }
}

TEST(SparseCoding, DictionaryColumnsUnitNorm) {
  util::Rng rng(5);
  const auto prob = generate_sparse_problem(16, 24, 1, 2, 0.0, rng);
  for (std::size_t a = 0; a < 24; ++a) {
    double norm = 0.0;
    for (std::size_t d = 0; d < 16; ++d)
      norm += prob.dictionary(d, a) * prob.dictionary(d, a);
    EXPECT_NEAR(norm, 1.0, 1e-9);
  }
}

TEST(SparseCoding, SparsityValidation) {
  util::Rng rng(7);
  EXPECT_THROW((void)generate_sparse_problem(8, 4, 1, 5, 0.0, rng),
               std::invalid_argument);
}

TEST(SparseCoding, ReferenceIstaRecoversCleanSignals) {
  util::Rng rng(9);
  const auto prob = generate_sparse_problem(24, 16, 6, 2, 0.0, rng);
  CrossbarSparseCoder coder(prob.dictionary, quiet_cfg());
  IstaConfig ista;
  ista.iterations = 80;
  ista.lambda = 0.02;
  for (std::size_t i = 0; i < prob.signals.rows(); ++i) {
    const auto code = coder.encode_reference(prob.signals.row(i), ista);
    EXPECT_LT(code.reconstruction_error, 0.12) << i;
    EXPECT_GT(support_recovery(code.code, prob.true_codes[i], 2), 0.49) << i;
  }
}

TEST(SparseCoding, CrossbarIstaTracksReference) {
  util::Rng rng(11);
  const auto prob = generate_sparse_problem(24, 16, 4, 2, 0.01, rng);
  CrossbarSparseCoder coder(prob.dictionary, quiet_cfg());
  IstaConfig ista;
  ista.iterations = 60;
  ista.lambda = 0.02;
  util::RunningStats analog_err, ref_err;
  for (std::size_t i = 0; i < prob.signals.rows(); ++i) {
    analog_err.add(coder.encode(prob.signals.row(i), ista).reconstruction_error);
    ref_err.add(
        coder.encode_reference(prob.signals.row(i), ista).reconstruction_error);
  }
  // The analog loop is noisier but must stay in the same regime.
  EXPECT_LT(analog_err.mean(), ref_err.mean() + 0.25);
}

TEST(SparseCoding, CodesAreSparse) {
  util::Rng rng(13);
  const auto prob = generate_sparse_problem(24, 20, 3, 2, 0.01, rng);
  CrossbarSparseCoder coder(prob.dictionary, quiet_cfg());
  IstaConfig ista;
  ista.iterations = 60;
  ista.lambda = 0.05;
  for (std::size_t i = 0; i < prob.signals.rows(); ++i) {
    const auto code = coder.encode_reference(prob.signals.row(i), ista);
    EXPECT_LT(code.nonzeros, 20u / 2);  // l1 keeps the code sparse
  }
}

TEST(SparseCoding, EnergyAccumulates) {
  util::Rng rng(15);
  const auto prob = generate_sparse_problem(16, 12, 1, 2, 0.0, rng);
  CrossbarSparseCoder coder(prob.dictionary, quiet_cfg());
  const double e0 = coder.energy_pj();
  (void)coder.encode(prob.signals.row(0), {.iterations = 5});
  EXPECT_GT(coder.energy_pj(), e0);
}

TEST(SparseCoding, DimValidation) {
  util::Rng rng(17);
  const auto prob = generate_sparse_problem(16, 12, 1, 2, 0.0, rng);
  CrossbarSparseCoder coder(prob.dictionary, quiet_cfg());
  std::vector<double> bad(7, 0.0);
  EXPECT_THROW((void)coder.encode(bad), std::invalid_argument);
}

TEST(SupportRecovery, ExactAndDegenerate) {
  const std::vector<double> truth = {0.0, 1.0, 0.0, -1.0};
  const std::vector<double> est = {0.01, 0.9, 0.02, -0.8};
  EXPECT_DOUBLE_EQ(support_recovery(est, truth, 2), 1.0);
  const std::vector<double> zero(4, 0.0);
  EXPECT_DOUBLE_EQ(support_recovery(est, zero, 2), 1.0);  // empty support
}

}  // namespace
}  // namespace cim::nn
