#include "nn/mlp.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace cim::nn {
namespace {

TEST(Mlp, ForwardShapes) {
  util::Rng rng(3);
  Mlp net({8, 16, 4}, rng);
  EXPECT_EQ(net.in_dim(), 8u);
  EXPECT_EQ(net.out_dim(), 4u);
  std::vector<double> x(8, 0.5);
  EXPECT_EQ(net.forward(x).size(), 4u);
}

TEST(Mlp, TooFewDimsThrows) {
  util::Rng rng(5);
  EXPECT_THROW(Mlp({8}, rng), std::invalid_argument);
}

TEST(Mlp, SoftmaxIsDistribution) {
  std::vector<double> logits = {1.0, 2.0, 3.0};
  const auto p = softmax(logits);
  double sum = 0.0;
  for (const double v : p) {
    EXPECT_GT(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_GT(p[2], p[1]);
  EXPECT_GT(p[1], p[0]);
}

TEST(Mlp, SoftmaxNumericallyStable) {
  std::vector<double> logits = {1000.0, 1001.0};
  const auto p = softmax(logits);
  EXPECT_TRUE(std::isfinite(p[0]));
  EXPECT_NEAR(p[0] + p[1], 1.0, 1e-12);
}

TEST(Mlp, TrainingReducesLoss) {
  util::Rng rng(7);
  const auto data = generate_digits(300, rng);
  Mlp net({kPixels, 24, kClasses}, rng);
  const double l0 = net.train_epoch(data, 0.05, rng);
  double l_last = l0;
  for (int e = 0; e < 10; ++e) l_last = net.train_epoch(data, 0.05, rng);
  EXPECT_LT(l_last, 0.5 * l0);
}

TEST(Mlp, LearnsDigitsToHighAccuracy) {
  util::Rng rng(9);
  const auto train = generate_digits(600, rng);
  const auto test = generate_digits(200, rng);
  Mlp net({kPixels, 32, kClasses}, rng);
  net.fit(train, 40, 0.05, rng);
  EXPECT_GT(net.accuracy(train), 0.95);
  EXPECT_GT(net.accuracy(test), 0.85);
}

TEST(Mlp, PredictIsArgmaxOfForward) {
  util::Rng rng(11);
  Mlp net({4, 3}, rng);
  std::vector<double> x = {0.1, 0.9, 0.3, 0.7};
  const auto logits = net.forward(x);
  int best = 0;
  for (std::size_t i = 1; i < logits.size(); ++i)
    if (logits[i] > logits[static_cast<std::size_t>(best)])
      best = static_cast<int>(i);
  EXPECT_EQ(net.predict(x), best);
}

TEST(Mlp, EmptyDatasetThrows) {
  util::Rng rng(13);
  Mlp net({4, 2}, rng);
  Dataset empty;
  EXPECT_THROW((void)net.train_epoch(empty, 0.1, rng), std::invalid_argument);
  EXPECT_EQ(net.accuracy(empty), 0.0);
}

TEST(Dense, ForwardComputesAffine) {
  util::Rng rng(15);
  Dense layer(2, 3, rng);
  layer.w = util::Matrix{{1, 0, -1}, {2, 1, 0}};
  layer.b = {0.5, -0.5};
  std::vector<double> x = {1.0, 2.0, 3.0};
  const auto y = layer.forward(x);
  EXPECT_DOUBLE_EQ(y[0], 1.0 - 3.0 + 0.5);
  EXPECT_DOUBLE_EQ(y[1], 2.0 + 2.0 - 0.5);
}

}  // namespace
}  // namespace cim::nn
