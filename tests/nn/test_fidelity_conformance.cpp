/// \file test_fidelity_conformance.cpp
/// \brief End-to-end fidelity-tier conformance (ISSUE 7): the calibrated
///        (tier 1) and ideal (tier 2) VMM paths must preserve inference
///        quality on the MLP and CNN workloads within the documented
///        budget: end-to-end accuracy delta vs the full analog model
///        (tier 0) within 5 percentage points, and identical results on
///        repeated runs (determinism).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "nn/cnn.hpp"
#include "nn/fault_tolerant_training.hpp"
#include "util/thread_pool.hpp"

namespace cim::nn {
namespace {

using crossbar::FidelityTier;

CrossbarLinearConfig quiet_cfg(std::uint64_t seed) {
  CrossbarLinearConfig cfg;
  cfg.array.seed = seed;
  cfg.array.model_ir_drop = false;
  cfg.program_verify = true;
  return cfg;
}

constexpr double kAccuracyBudget = 0.05;  // DESIGN.md fidelity-tier budget

TEST(FidelityConformance, MlpAccuracyAcrossTiers) {
  util::Rng rng(3);
  const auto train = generate_digits(500, rng, 0.1);
  const auto test = generate_digits(200, rng, 0.1);
  Mlp net({kPixels, 24, kClasses}, rng);
  net.fit(train, 40, 0.05, rng);

  CrossbarLinear l0(net.layers()[0].w, net.layers()[0].b, quiet_cfg(11));
  CrossbarLinear l1(net.layers()[1].w, net.layers()[1].b, quiet_cfg(12));

  const double full = crossbar_accuracy(l0, l1, test, FidelityTier::kFull);
  const double fast =
      crossbar_accuracy(l0, l1, test, FidelityTier::kCalibrated);
  const double ideal = crossbar_accuracy(l0, l1, test, FidelityTier::kIdeal);

  ASSERT_GT(full, 0.8);  // the workload is meaningful at tier 0
  EXPECT_NEAR(fast, full, kAccuracyBudget);
  EXPECT_NEAR(ideal, full, kAccuracyBudget);
  // The ideal tier removes all analog error sources: it must not be worse
  // than the software-equivalent quality floor the full model reaches.
  EXPECT_GE(ideal, full - 0.02);
}

TEST(FidelityConformance, MlpForwardDeterministicPerTier) {
  util::Rng rng(5);
  Mlp net({kPixels, 16, kClasses}, rng);
  const auto data = generate_digits(4, rng, 0.1);

  // Identically-seeded layer pairs replay identical noise streams, so each
  // tier must reproduce its own outputs exactly.
  for (FidelityTier tier : {FidelityTier::kFull, FidelityTier::kCalibrated,
                            FidelityTier::kIdeal}) {
    CrossbarLinear a(net.layers()[0].w, net.layers()[0].b, quiet_cfg(21));
    CrossbarLinear b(net.layers()[0].w, net.layers()[0].b, quiet_cfg(21));
    for (std::size_t s = 0; s < data.size(); ++s) {
      const auto ya = a.forward(data.features.row(s), tier);
      const auto yb = b.forward(data.features.row(s), tier);
      ASSERT_EQ(ya.size(), yb.size());
      for (std::size_t i = 0; i < ya.size(); ++i)
        ASSERT_EQ(ya[i], yb[i]) << "tier " << static_cast<int>(tier);
    }
  }
}

TEST(FidelityConformance, IdealTierRepeatsBitwiseOnOneLayer) {
  // Tier 2 consumes no randomness at all: back-to-back calls on the SAME
  // layer instance must agree bitwise (tier 0/1 would draw fresh noise).
  util::Rng rng(7);
  Mlp net({kPixels, 16, kClasses}, rng);
  CrossbarLinear layer(net.layers()[0].w, net.layers()[0].b, quiet_cfg(31));
  const auto data = generate_digits(3, rng, 0.1);
  for (std::size_t s = 0; s < data.size(); ++s) {
    const auto y1 = layer.forward(data.features.row(s), FidelityTier::kIdeal);
    const auto y2 = layer.forward(data.features.row(s), FidelityTier::kIdeal);
    for (std::size_t i = 0; i < y1.size(); ++i) ASSERT_EQ(y1[i], y2[i]);
  }
}

TEST(FidelityConformance, CnnAccuracyAcrossTiers) {
  util::Rng rng(9);
  const auto train = generate_digits(600, rng, 0.1);
  const auto test = generate_digits(150, rng, 0.1);
  SmallCnn cnn(4, rng);
  cnn.fit(train, 30, 0.03, rng);
  ASSERT_GT(cnn.accuracy(test), 0.85);

  CrossbarCnn xcnn(cnn, quiet_cfg(13));
  const double full = xcnn.accuracy(test, nullptr, FidelityTier::kFull);
  const double fast =
      xcnn.accuracy(test, nullptr, FidelityTier::kCalibrated);
  const double ideal = xcnn.accuracy(test, nullptr, FidelityTier::kIdeal);

  ASSERT_GT(full, 0.7);
  EXPECT_NEAR(fast, full, kAccuracyBudget);
  EXPECT_NEAR(ideal, full, kAccuracyBudget);
}

TEST(FidelityConformance, CnnBatchPoolIndependentPerTier) {
  util::Rng rng(11);
  SmallCnn cnn(4, rng);
  const auto data = generate_digits(3, rng, 0.1);

  for (FidelityTier tier : {FidelityTier::kCalibrated, FidelityTier::kIdeal}) {
    CrossbarCnn serial(cnn, quiet_cfg(17));
    CrossbarCnn pooled(cnn, quiet_cfg(17));
    util::ThreadPool pool(4);
    for (std::size_t s = 0; s < data.size(); ++s) {
      const int ps = serial.predict(data.features.row(s), nullptr, tier);
      const int pp = pooled.predict(data.features.row(s), &pool, tier);
      ASSERT_EQ(ps, pp) << "tier " << static_cast<int>(tier);
    }
  }
}

}  // namespace
}  // namespace cim::nn
