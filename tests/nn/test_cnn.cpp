#include "nn/cnn.hpp"

#include <gtest/gtest.h>

namespace cim::nn {
namespace {

TEST(Cnn, Im2colExtractsPatches) {
  std::vector<double> image(64);
  for (std::size_t i = 0; i < 64; ++i) image[i] = static_cast<double>(i);
  const auto patches = SmallCnn::im2col(image, 8, 3);
  EXPECT_EQ(patches.rows(), 36u);
  EXPECT_EQ(patches.cols(), 9u);
  // Patch (0,0) = rows 0..2, cols 0..2.
  EXPECT_DOUBLE_EQ(patches(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(patches(0, 4), 9.0);   // (1,1)
  EXPECT_DOUBLE_EQ(patches(0, 8), 18.0);  // (2,2)
  // Patch (5,5) = rows 5..7, cols 5..7; last entry = pixel (7,7) = 63.
  EXPECT_DOUBLE_EQ(patches(35, 8), 63.0);
}

TEST(Cnn, Im2colValidation) {
  std::vector<double> bad(10);
  EXPECT_THROW((void)SmallCnn::im2col(bad, 8, 3), std::invalid_argument);
}

TEST(Cnn, ForwardShapes) {
  util::Rng rng(3);
  SmallCnn cnn(4, rng);
  std::vector<double> image(64, 0.5);
  const auto logits = cnn.forward(image);
  EXPECT_EQ(logits.size(), static_cast<std::size_t>(kClasses));
  const int p = cnn.predict(image);
  EXPECT_GE(p, 0);
  EXPECT_LT(p, kClasses);
}

TEST(Cnn, TrainsToHighAccuracy) {
  util::Rng rng(5);
  const auto train = generate_digits(600, rng, 0.1);
  const auto test = generate_digits(200, rng, 0.1);
  SmallCnn cnn(4, rng);
  cnn.fit(train, 30, 0.03, rng);
  EXPECT_GT(cnn.accuracy(train), 0.93);
  EXPECT_GT(cnn.accuracy(test), 0.85);
}

TEST(Cnn, TrainingReducesLoss) {
  util::Rng rng(7);
  const auto data = generate_digits(300, rng, 0.1);
  SmallCnn cnn(4, rng);
  const double l0 = cnn.train_epoch(data, 0.03, rng);
  double l_last = l0;
  for (int e = 0; e < 8; ++e) l_last = cnn.train_epoch(data, 0.03, rng);
  EXPECT_LT(l_last, 0.6 * l0);
}

TEST(Cnn, CrossbarInferenceTracksSoftware) {
  util::Rng rng(9);
  const auto train = generate_digits(600, rng, 0.1);
  const auto test = generate_digits(150, rng, 0.1);
  SmallCnn cnn(4, rng);
  cnn.fit(train, 30, 0.03, rng);
  const double sw = cnn.accuracy(test);
  ASSERT_GT(sw, 0.85);

  CrossbarLinearConfig cfg;
  cfg.array.seed = 11;
  cfg.array.model_ir_drop = false;
  cfg.program_verify = true;
  CrossbarCnn xcnn(cnn, cfg);
  EXPECT_GT(xcnn.accuracy(test), sw - 0.15);
  EXPECT_GT(xcnn.energy_pj(), 0.0);
}

TEST(Cnn, YieldFaultsDegradeCnnToo) {
  util::Rng rng(11);
  const auto train = generate_digits(500, rng, 0.1);
  const auto test = generate_digits(120, rng, 0.1);
  SmallCnn cnn(4, rng);
  cnn.fit(train, 30, 0.03, rng);

  CrossbarLinearConfig cfg;
  cfg.array.seed = 13;
  cfg.array.model_ir_drop = false;
  cfg.program_verify = true;
  CrossbarCnn clean(cnn, cfg);
  CrossbarCnn faulty(cnn, cfg);
  util::Rng frng(15);
  faulty.apply_yield(0.7, frng);
  EXPECT_LT(faulty.accuracy(test), clean.accuracy(test));
}

TEST(Cnn, EmptyDatasetThrows) {
  util::Rng rng(17);
  SmallCnn cnn(2, rng);
  Dataset empty;
  EXPECT_THROW((void)cnn.train_epoch(empty, 0.01, rng), std::invalid_argument);
  EXPECT_EQ(cnn.accuracy(empty), 0.0);
}

}  // namespace
}  // namespace cim::nn
