#include "nn/dataset.hpp"

#include <gtest/gtest.h>

#include <set>

namespace cim::nn {
namespace {

TEST(Dataset, TemplatesAreDistinct) {
  std::set<std::vector<double>> seen;
  for (int d = 0; d < kClasses; ++d) {
    const auto t = digit_template(d);
    EXPECT_EQ(t.size(), kPixels);
    EXPECT_TRUE(seen.insert(t).second) << "duplicate template for " << d;
  }
}

TEST(Dataset, TemplatesAreBinary) {
  for (int d = 0; d < kClasses; ++d)
    for (const double v : digit_template(d)) EXPECT_TRUE(v == 0.0 || v == 1.0);
}

TEST(Dataset, TemplatesHaveInk) {
  for (int d = 0; d < kClasses; ++d) {
    double ink = 0.0;
    for (const double v : digit_template(d)) ink += v;
    EXPECT_GE(ink, 8.0) << "digit " << d;
    EXPECT_LE(ink, 40.0) << "digit " << d;
  }
}

TEST(Dataset, BadDigitThrows) {
  EXPECT_THROW((void)digit_template(-1), std::out_of_range);
  EXPECT_THROW((void)digit_template(10), std::out_of_range);
}

TEST(Dataset, GenerateShapesAndRanges) {
  util::Rng rng(3);
  const auto ds = generate_digits(100, rng);
  EXPECT_EQ(ds.size(), 100u);
  EXPECT_EQ(ds.features.rows(), 100u);
  EXPECT_EQ(ds.features.cols(), kPixels);
  for (const double v : ds.features.flat()) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
  for (const int label : ds.labels) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, kClasses);
  }
}

TEST(Dataset, AllClassesAppear) {
  util::Rng rng(5);
  const auto ds = generate_digits(500, rng);
  std::set<int> classes(ds.labels.begin(), ds.labels.end());
  EXPECT_EQ(classes.size(), static_cast<std::size_t>(kClasses));
}

TEST(Dataset, NoiseZeroSamplesMatchShiftedTemplates) {
  util::Rng rng(7);
  const auto ds = generate_digits(50, rng, 0.0);
  // Each noise-free sample has only 0/1 pixels.
  for (const double v : ds.features.flat()) EXPECT_TRUE(v == 0.0 || v == 1.0);
}

TEST(Dataset, DeterministicGivenSeed) {
  util::Rng a(11), b(11);
  const auto da = generate_digits(20, a);
  const auto db = generate_digits(20, b);
  EXPECT_EQ(da.labels, db.labels);
  EXPECT_TRUE(da.features == db.features);
}

}  // namespace
}  // namespace cim::nn
