#include "nn/crossbar_linear.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/stats.hpp"

namespace cim::nn {
namespace {

CrossbarLinearConfig quiet_cfg() {
  CrossbarLinearConfig cfg;
  cfg.array.seed = 33;
  cfg.array.model_ir_drop = false;
  cfg.program_verify = true;
  return cfg;
}

TEST(CrossbarLinear, ReproducesSmallAffineMap) {
  util::Matrix w = {{0.5, -0.25}, {-1.0, 1.0}};
  const std::vector<double> bias = {0.1, -0.1};
  CrossbarLinear layer(w, bias, quiet_cfg());
  layer.set_x_max(1.0);

  const std::vector<double> x = {1.0, 0.5};
  // Average to suppress read noise.
  std::vector<double> mean(2, 0.0);
  const int reps = 64;
  for (int k = 0; k < reps; ++k) {
    const auto y = layer.forward(x);
    for (std::size_t i = 0; i < 2; ++i) mean[i] += y[i] / reps;
  }
  EXPECT_NEAR(mean[0], 0.5 - 0.125 + 0.1, 0.08);
  EXPECT_NEAR(mean[1], -1.0 + 0.5 - 0.1, 0.08);
}

TEST(CrossbarLinear, DimensionsExposed) {
  util::Matrix w(3, 5);
  w(0, 0) = 1.0;
  CrossbarLinear layer(w, {}, quiet_cfg());
  EXPECT_EQ(layer.in_dim(), 5u);
  EXPECT_EQ(layer.out_dim(), 3u);
}

TEST(CrossbarLinear, BiasSizeMismatchThrows) {
  util::Matrix w(2, 2, 1.0);
  const std::vector<double> bad_bias = {1.0};
  EXPECT_THROW(CrossbarLinear(w, bad_bias, quiet_cfg()), std::invalid_argument);
}

TEST(CrossbarLinear, InputDimMismatchThrows) {
  util::Matrix w(2, 3, 1.0);
  CrossbarLinear layer(w, {}, quiet_cfg());
  std::vector<double> bad(2, 0.5);
  EXPECT_THROW((void)layer.forward(bad), std::invalid_argument);
}

TEST(CrossbarLinear, AdcQuantizationAddsBoundedError) {
  util::Rng wrng(3);
  util::Matrix w(4, 16);
  for (auto& v : w.flat()) v = wrng.normal(0.0, 1.0);

  auto cfg_hi = quiet_cfg();
  cfg_hi.use_adc = true;
  cfg_hi.adc_bits = 10;
  auto cfg_lo = quiet_cfg();
  cfg_lo.use_adc = true;
  cfg_lo.adc_bits = 3;

  CrossbarLinear hi(w, {}, cfg_hi), lo(w, {}, cfg_lo);
  CrossbarLinear ref(w, {}, quiet_cfg());

  std::vector<double> x(16, 0.5);
  util::RunningStats err_hi, err_lo;
  for (int k = 0; k < 32; ++k) {
    const auto yr = ref.forward(x);
    const auto yh = hi.forward(x);
    const auto yl = lo.forward(x);
    for (std::size_t i = 0; i < 4; ++i) {
      err_hi.add(std::abs(yh[i] - yr[i]));
      err_lo.add(std::abs(yl[i] - yr[i]));
    }
  }
  // Section II.E: quantization error increases as resolution drops.
  EXPECT_GT(err_lo.mean(), err_hi.mean());
}

TEST(CrossbarLinear, YieldFaultsDegradeOutputs) {
  util::Rng wrng(5);
  util::Matrix w(8, 32);
  for (auto& v : w.flat()) v = wrng.normal(0.0, 1.0);

  CrossbarLinear clean(w, {}, quiet_cfg());
  CrossbarLinear faulty(w, {}, quiet_cfg());
  util::Rng frng(7);
  faulty.apply_yield(0.7, frng);

  std::vector<double> x(32, 0.8);
  util::RunningStats err_clean, err_faulty;
  for (int k = 0; k < 16; ++k) {
    const auto oracle = w.matvec(x);
    const auto yc = clean.forward(x);
    const auto yf = faulty.forward(x);
    for (std::size_t i = 0; i < 8; ++i) {
      err_clean.add(std::abs(yc[i] - oracle[i]));
      err_faulty.add(std::abs(yf[i] - oracle[i]));
    }
  }
  EXPECT_GT(err_faulty.mean(), 2.0 * err_clean.mean());
}

TEST(CrossbarLinear, EnergyAccumulatesAcrossForwards) {
  util::Matrix w(2, 2, 1.0);
  CrossbarLinear layer(w, {}, quiet_cfg());
  const double e0 = layer.energy_pj();
  std::vector<double> x(2, 1.0);
  (void)layer.forward(x);
  EXPECT_GT(layer.energy_pj(), e0);
}

TEST(CrossbarLinear, XMaxValidation) {
  util::Matrix w(1, 1, 1.0);
  CrossbarLinear layer(w, {}, quiet_cfg());
  EXPECT_THROW(layer.set_x_max(0.0), std::invalid_argument);
  layer.set_x_max(2.0);
  EXPECT_DOUBLE_EQ(layer.x_max(), 2.0);
}

}  // namespace
}  // namespace cim::nn
