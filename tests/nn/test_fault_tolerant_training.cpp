#include "nn/fault_tolerant_training.hpp"

#include <gtest/gtest.h>

namespace cim::nn {
namespace {

CrossbarLinearConfig quiet_cfg(std::uint64_t seed) {
  CrossbarLinearConfig cfg;
  cfg.array.seed = seed;
  cfg.array.model_ir_drop = false;
  cfg.program_verify = true;
  return cfg;
}

TEST(FaultTolerantTraining, RecoversAccuracyAfterFaults) {
  util::Rng rng(3);
  const auto train = generate_digits(500, rng, 0.1);
  const auto test = generate_digits(150, rng, 0.1);
  Mlp net({kPixels, 24, kClasses}, rng);
  net.fit(train, 40, 0.05, rng);

  CrossbarLinear l0(net.layers()[0].w, net.layers()[0].b, quiet_cfg(11));
  CrossbarLinear l1(net.layers()[1].w, net.layers()[1].b, quiet_cfg(12));
  const double clean = crossbar_accuracy(l0, l1, test);
  ASSERT_GT(clean, 0.8);

  util::Rng frng(13);
  l0.apply_yield(0.88, frng);
  l1.apply_yield(0.88, frng);

  const auto res =
      fault_tolerant_retrain(net, l0, l1, train, test, {.epochs = 6, .lr = 0.02}, rng);
  EXPECT_LT(res.accuracy_before, clean - 0.1);  // faults hurt
  EXPECT_GT(res.accuracy_after, res.accuracy_before + 0.1);  // retraining heals
  EXPECT_EQ(res.epochs_run, 6u);
}

TEST(FaultTolerantTraining, NoFaultsNoHarm) {
  util::Rng rng(5);
  const auto train = generate_digits(300, rng, 0.1);
  Mlp net({kPixels, 16, kClasses}, rng);
  net.fit(train, 30, 0.05, rng);

  CrossbarLinear l0(net.layers()[0].w, net.layers()[0].b, quiet_cfg(21));
  CrossbarLinear l1(net.layers()[1].w, net.layers()[1].b, quiet_cfg(22));
  const auto res =
      fault_tolerant_retrain(net, l0, l1, train, train, {.epochs = 2, .lr = 0.01}, rng);
  EXPECT_GE(res.accuracy_after, res.accuracy_before - 0.05);
}

TEST(FaultTolerantTraining, ShapeValidation) {
  util::Rng rng(7);
  Mlp small({4, 3, 2}, rng);
  Mlp deep({4, 3, 3, 2}, rng);
  CrossbarLinear l0(small.layers()[0].w, small.layers()[0].b, quiet_cfg(31));
  CrossbarLinear l1(small.layers()[1].w, small.layers()[1].b, quiet_cfg(32));
  Dataset empty;
  EXPECT_THROW((void)fault_tolerant_retrain(deep, l0, l1, empty, empty, {}, rng),
               std::invalid_argument);
}

TEST(CrossbarLinearReprogram, UpdatesWeights) {
  util::Matrix w1 = {{1.0, 0.0}, {0.0, 1.0}};
  util::Matrix w2 = {{0.0, 1.0}, {1.0, 0.0}};
  CrossbarLinear layer(w1, {}, quiet_cfg(41));
  layer.set_x_max(1.0);

  auto mean_forward = [&](const std::vector<double>& x) {
    std::vector<double> acc(2, 0.0);
    for (int k = 0; k < 32; ++k) {
      const auto y = layer.forward(x);
      for (std::size_t i = 0; i < 2; ++i) acc[i] += y[i] / 32.0;
    }
    return acc;
  };

  const std::vector<double> x = {1.0, 0.0};
  const auto before = mean_forward(x);
  EXPECT_GT(before[0], before[1]);
  layer.reprogram(w2, {});
  const auto after = mean_forward(x);
  EXPECT_GT(after[1], after[0]);  // the swap took effect
}

TEST(CrossbarLinearReprogram, ShapeMismatchThrows) {
  util::Matrix w(2, 2, 1.0);
  CrossbarLinear layer(w, {}, quiet_cfg(51));
  util::Matrix wrong(3, 2, 1.0);
  EXPECT_THROW(layer.reprogram(wrong, {}), std::invalid_argument);
  std::vector<double> bad_bias(3, 0.0);
  EXPECT_THROW(layer.reprogram(w, bad_bias), std::invalid_argument);
}

}  // namespace
}  // namespace cim::nn
