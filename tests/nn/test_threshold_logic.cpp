#include "nn/threshold_logic.hpp"

#include <gtest/gtest.h>

namespace cim::nn {
namespace {

std::vector<bool> bits_of(std::uint64_t m, std::size_t n) {
  std::vector<bool> x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = (m >> i) & 1ULL;
  return x;
}

CrossbarLinearConfig quiet_cfg() {
  CrossbarLinearConfig cfg;
  cfg.array.seed = 3;
  cfg.array.model_ir_drop = false;
  cfg.program_verify = true;
  return cfg;
}

TEST(ThresholdGate, ClassicGates) {
  const std::size_t n = 4;
  const auto g_and = threshold_and(n);
  const auto g_or = threshold_or(n);
  const auto g_maj = threshold_majority(5);
  for (std::uint64_t m = 0; m < 16; ++m) {
    const auto x = bits_of(m, n);
    const int ones = __builtin_popcountll(m);
    EXPECT_EQ(g_and.eval(x), ones == 4);
    EXPECT_EQ(g_or.eval(x), ones >= 1);
  }
  for (std::uint64_t m = 0; m < 32; ++m) {
    EXPECT_EQ(g_maj.eval(bits_of(m, 5)), __builtin_popcountll(m) >= 3);
  }
}

TEST(ThresholdGate, AtLeastK) {
  for (std::size_t k = 1; k <= 5; ++k) {
    const auto g = threshold_at_least(5, k);
    for (std::uint64_t m = 0; m < 32; ++m)
      EXPECT_EQ(g.eval(bits_of(m, 5)),
                static_cast<std::size_t>(__builtin_popcountll(m)) >= k);
  }
}

TEST(ThresholdGate, InputSizeMismatchThrows) {
  const auto g = threshold_and(3);
  EXPECT_THROW((void)g.eval({true, false}), std::invalid_argument);
}

TEST(CrossbarThresholdLayer, MatchesReferenceExhaustively) {
  std::vector<ThresholdGate> gates = {threshold_and(5), threshold_or(5),
                                      threshold_majority(5),
                                      threshold_at_least(5, 2)};
  CrossbarThresholdLayer layer(gates, quiet_cfg());
  for (std::uint64_t m = 0; m < 32; ++m) {
    const auto x = bits_of(m, 5);
    EXPECT_EQ(layer.eval(x), layer.eval_reference(x)) << "m=" << m;
  }
}

TEST(CrossbarThresholdLayer, SignedWeightsWork) {
  // Fires iff x0 - x1 >= 1 (i.e. x0 and not x1).
  ThresholdGate g{{1.0, -1.0}, 1.0};
  CrossbarThresholdLayer layer({g}, quiet_cfg());
  EXPECT_FALSE(layer.eval({false, false})[0]);
  EXPECT_TRUE(layer.eval({true, false})[0]);
  EXPECT_FALSE(layer.eval({false, true})[0]);
  EXPECT_FALSE(layer.eval({true, true})[0]);
}

TEST(CrossbarThresholdLayer, Validation) {
  EXPECT_THROW(CrossbarThresholdLayer({}, quiet_cfg()), std::invalid_argument);
  std::vector<ThresholdGate> ragged = {threshold_and(2), threshold_and(3)};
  EXPECT_THROW(CrossbarThresholdLayer(std::move(ragged), quiet_cfg()),
               std::invalid_argument);
}

TEST(ThresholdNetwork, ParityDepthTwoCircuit) {
  for (const std::size_t n : {2u, 3u, 4u, 5u}) {
    auto net = ThresholdNetwork::parity(n, quiet_cfg());
    EXPECT_EQ(net.layers(), 2u);
    for (std::uint64_t m = 0; m < (1ULL << n); ++m) {
      const auto x = bits_of(m, n);
      const bool expected = __builtin_popcountll(m) & 1;
      EXPECT_EQ(net.eval_reference(x)[0], expected) << "n=" << n << " m=" << m;
      EXPECT_EQ(net.eval(x)[0], expected) << "n=" << n << " m=" << m;
    }
  }
}

TEST(ThresholdNetwork, EnergyAccumulates) {
  auto net = ThresholdNetwork::parity(4, quiet_cfg());
  const double e0 = net.energy_pj();
  (void)net.eval(bits_of(5, 4));
  EXPECT_GT(net.energy_pj(), e0);
}

TEST(ThresholdNetwork, LayerWidthMismatchThrows) {
  ThresholdNetwork net;
  net.add_layer({threshold_and(3)}, quiet_cfg());
  EXPECT_THROW(net.add_layer({threshold_and(3)}, quiet_cfg()),
               std::invalid_argument);  // previous layer has width 1
}

}  // namespace
}  // namespace cim::nn
