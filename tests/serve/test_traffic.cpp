/// Open-loop traffic generator: determinism, arrival-process statistics,
/// and the payload/arrival stream separation the serving bench's
/// controlled comparisons rest on.
#include "serve/traffic.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace cim::serve {
namespace {

TrafficConfig small_cfg() {
  TrafficConfig cfg;
  cfg.requests = 200;
  cfg.rate_rps = 1.0e6;
  cfg.in_dim = 8;
  cfg.seed = 42;
  return cfg;
}

TEST(Traffic, DeterministicAndWellFormed) {
  const auto a = generate(small_cfg());
  const auto b = generate(small_cfg());
  ASSERT_EQ(a.size(), 200u);
  ASSERT_EQ(a.size(), b.size());
  double prev = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, i);
    EXPECT_GE(a[i].arrival_ns, prev);
    prev = a[i].arrival_ns;
    EXPECT_EQ(a[i].input.size(), 8u);
    for (const auto v : a[i].input) EXPECT_LT(v, 16u);  // 4-bit payload
    // Bit-identical regeneration.
    EXPECT_EQ(a[i].arrival_ns, b[i].arrival_ns);
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].input, b[i].input);
  }
}

TEST(Traffic, PayloadsInvariantUnderArrivalProcess) {
  auto cfg = small_cfg();
  const auto poisson = generate(cfg);
  cfg.process = ArrivalProcess::kMmpp;
  const auto mmpp = generate(cfg);
  // Arrival clocks differ, but request id i carries the same payload — the
  // controlled-variable property (payloads come from per-id sub-streams).
  ASSERT_EQ(poisson.size(), mmpp.size());
  bool some_arrival_differs = false;
  for (std::size_t i = 0; i < poisson.size(); ++i) {
    EXPECT_EQ(poisson[i].kind, mmpp[i].kind);
    EXPECT_EQ(poisson[i].input, mmpp[i].input);
    if (poisson[i].arrival_ns != mmpp[i].arrival_ns)
      some_arrival_differs = true;
  }
  EXPECT_TRUE(some_arrival_differs);
}

TEST(Traffic, PoissonMeanRateMatchesConfig) {
  auto cfg = small_cfg();
  cfg.requests = 20000;
  cfg.rate_rps = 2.0e6;
  const auto reqs = generate(cfg);
  const double span_s = reqs.back().arrival_ns * 1e-9;
  const double rate = static_cast<double>(reqs.size()) / span_s;
  // 20k exponential inter-arrivals: the mean is within a few percent.
  EXPECT_NEAR(rate / cfg.rate_rps, 1.0, 0.05);
}

TEST(Traffic, MmppLongRunRateMatchesConfigAndIsBurstier) {
  auto cfg = small_cfg();
  cfg.requests = 40000;
  cfg.rate_rps = 2.0e6;
  cfg.process = ArrivalProcess::kMmpp;
  const auto reqs = generate(cfg);
  const double span_s = reqs.back().arrival_ns * 1e-9;
  const double rate = static_cast<double>(reqs.size()) / span_s;
  // The idle rate is solved so the stationary mean equals rate_rps; the
  // tolerance is looser because dwell-time variance decays slowly.
  EXPECT_NEAR(rate / cfg.rate_rps, 1.0, 0.15);

  // Burstiness: the squared coefficient of variation of inter-arrival
  // times exceeds the Poisson value of 1.
  auto scv = [](const std::vector<Request>& rs) {
    double sum = 0.0, sum2 = 0.0;
    const std::size_t n = rs.size() - 1;
    for (std::size_t i = 1; i < rs.size(); ++i) {
      const double dt = rs[i].arrival_ns - rs[i - 1].arrival_ns;
      sum += dt;
      sum2 += dt * dt;
    }
    const double mean = sum / static_cast<double>(n);
    return (sum2 / static_cast<double>(n) - mean * mean) / (mean * mean);
  };
  auto pcfg = cfg;
  pcfg.process = ArrivalProcess::kPoisson;
  EXPECT_GT(scv(reqs), 1.5 * scv(generate(pcfg)));
}

TEST(Traffic, InferenceFractionEdges) {
  auto cfg = small_cfg();
  cfg.inference_frac = 0.0;
  for (const auto& r : generate(cfg)) EXPECT_EQ(r.kind, RequestKind::kVmm);
  cfg.inference_frac = 1.0;
  for (const auto& r : generate(cfg))
    EXPECT_EQ(r.kind, RequestKind::kInference);
}

TEST(Traffic, RejectsMalformedConfig) {
  auto cfg = small_cfg();
  cfg.rate_rps = 0.0;
  EXPECT_THROW(generate(cfg), std::invalid_argument);
  cfg = small_cfg();
  cfg.input_bits = 17;
  EXPECT_THROW(generate(cfg), std::invalid_argument);
  cfg = small_cfg();
  cfg.in_dim = 0;
  EXPECT_THROW(generate(cfg), std::invalid_argument);
  cfg = small_cfg();
  cfg.process = ArrivalProcess::kMmpp;
  cfg.burst_dwell_ns = 0.0;
  EXPECT_THROW(generate(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace cim::serve
