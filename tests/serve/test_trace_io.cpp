/// cim-trace-v1 round-trips: generated streams survive dump -> parse
/// bit-exactly, dump -> parse -> dump is a fixpoint (also against the
/// checked-in tests/data fixture), and malformed traces fail with
/// line-numbered errors — the cim-prog-v1 contract applied to request
/// traces.
#include "serve/trace_io.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "serve/traffic.hpp"

#ifndef CIM_TEST_DATA_DIR
#define CIM_TEST_DATA_DIR "tests/data"
#endif

namespace cim::serve {
namespace {

TEST(TraceIo, GeneratedStreamRoundTripsBitExactly) {
  TrafficConfig cfg;
  cfg.requests = 64;
  cfg.in_dim = 8;
  cfg.process = ArrivalProcess::kMmpp;
  cfg.tier = crossbar::FidelityTier::kCalibrated;
  cfg.seed = 7;
  const auto reqs = generate(cfg);

  std::ostringstream os;
  dump_trace(os, reqs);
  std::istringstream is(os.str());
  std::string error;
  const auto parsed = parse_trace(is, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  ASSERT_EQ(parsed->size(), reqs.size());
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    EXPECT_EQ((*parsed)[i].id, reqs[i].id);
    // %.17g makes the double survive the text round-trip bit-exactly.
    EXPECT_EQ((*parsed)[i].arrival_ns, reqs[i].arrival_ns);
    EXPECT_EQ((*parsed)[i].kind, reqs[i].kind);
    EXPECT_EQ((*parsed)[i].input_bits, reqs[i].input_bits);
    EXPECT_EQ((*parsed)[i].tier, reqs[i].tier);
    EXPECT_EQ((*parsed)[i].input, reqs[i].input);
  }

  // dump(parse(dump(x))) == dump(x).
  std::ostringstream os2;
  dump_trace(os2, *parsed);
  EXPECT_EQ(os.str(), os2.str());
}

TEST(TraceIo, FixtureParsesAndIsAFixpoint) {
  const std::string path =
      std::string(CIM_TEST_DATA_DIR) + "/mixed_poisson.cimtrace";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing fixture " << path;
  std::string error;
  const auto parsed = parse_trace(in, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  ASSERT_EQ(parsed->size(), 8u);

  EXPECT_EQ((*parsed)[0].kind, RequestKind::kVmm);
  EXPECT_EQ((*parsed)[1].kind, RequestKind::kInference);
  EXPECT_EQ((*parsed)[2].tier, crossbar::FidelityTier::kCalibrated);
  EXPECT_EQ((*parsed)[7].tier, crossbar::FidelityTier::kIdeal);
  EXPECT_EQ((*parsed)[3].input.size(), 8u);
  EXPECT_DOUBLE_EQ((*parsed)[0].arrival_ns, 0.0);

  std::ostringstream once;
  dump_trace(once, *parsed);
  std::istringstream again(once.str());
  const auto reparsed = parse_trace(again, &error);
  ASSERT_TRUE(reparsed.has_value()) << error;
  std::ostringstream twice;
  dump_trace(twice, *reparsed);
  EXPECT_EQ(once.str(), twice.str());
}

TEST(TraceIo, CommentsAndBlanksAreIgnored) {
  std::istringstream is(
      "# leading comment\n"
      "\n"
      "cim-trace-v1\n"
      "# interior comment\n"
      "req 0 0 vmm 4 full 2 1 2\n"
      "\n"
      "req 1 10.5 infer 4 calibrated 2 3 4\n");
  const auto parsed = parse_trace(is);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ((*parsed)[1].input, (std::vector<std::uint32_t>{3, 4}));
}

TEST(TraceIo, ToleratesCrlfAndTrailingWhitespace) {
  // A trace that crossed a windows checkout (CRLF) or an editor that pads
  // line ends must still parse — and reparse to the same requests.
  std::istringstream is(
      "cim-trace-v1\r\n"
      "req 0 0 vmm 4 full 2 1 2 \r\n"
      "req 1 10.5 infer 4 calibrated 2 3 4\t\r\n");
  std::string error;
  const auto parsed = parse_trace(is, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ((*parsed)[0].input, (std::vector<std::uint32_t>{1, 2}));
  EXPECT_DOUBLE_EQ((*parsed)[1].arrival_ns, 10.5);

  // The damaged parse re-dumps to the same text a clean parse does:
  // dump(parse(damaged)) == dump(parse(clean)).
  std::istringstream clean(
      "cim-trace-v1\n"
      "req 0 0 vmm 4 full 2 1 2\n"
      "req 1 10.5 infer 4 calibrated 2 3 4\n");
  const auto parsed_clean = parse_trace(clean, &error);
  ASSERT_TRUE(parsed_clean.has_value()) << error;
  std::ostringstream from_damaged;
  std::ostringstream from_clean;
  dump_trace(from_damaged, *parsed);
  dump_trace(from_clean, *parsed_clean);
  EXPECT_EQ(from_damaged.str(), from_clean.str());
}

TEST(TraceIo, ErrorsCarryLineNumbers) {
  const struct {
    const char* text;
    const char* needle;
  } cases[] = {
      {"bogus-header\n", "line 1"},
      {"cim-trace-v1\nreq 0 0 warp 4 full 1 1\n", "line 2"},
      {"cim-trace-v1\nreq 0 0 vmm 4 turbo 1 1\n", "unknown fidelity"},
      {"cim-trace-v1\nreq 0 0 vmm 99 full 1 1\n", "input_bits"},
      {"cim-trace-v1\nreq 0 5 vmm 4 full 1 1\nreq 1 4 vmm 4 full 1 1\n",
       "decreased"},
      {"cim-trace-v1\nreq 0 0 vmm 4 full 3 1 2\n", "declares 3"},
      {"cim-trace-v1\nreq 0 0 vmm 4 full 1 1 9\n", "trailing"},
      {"", "missing"},
  };
  for (const auto& c : cases) {
    std::istringstream is(c.text);
    std::string error;
    const auto parsed = parse_trace(is, &error);
    EXPECT_FALSE(parsed.has_value()) << c.text;
    EXPECT_NE(error.find(c.needle), std::string::npos)
        << "error '" << error << "' lacks '" << c.needle << "'";
  }
}

}  // namespace
}  // namespace cim::serve
