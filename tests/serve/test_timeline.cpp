/// Request-lifecycle observability (`ctest -L timeline`): the bitwise
/// latency-decomposition identity on every completion, the windowed
/// SLO series and its thread-count determinism contract, flight-recorder
/// auto-dumps on forced SLO breaches and shed spikes, Chrome-trace flow
/// events, and the occupancy/throughput edge-case guards.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/obs.hpp"
#include "serve/controller.hpp"
#include "serve/traffic.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace cim::serve {
namespace {

util::Matrix test_weights(std::size_t out, std::size_t in) {
  util::Rng rng(11);
  util::Matrix w(out, in);
  for (auto& v : w.flat())
    v = static_cast<double>(static_cast<long>(rng.uniform_int(15)) - 7);
  return w;
}

TilePoolConfig pool_cfg(std::size_t replicas = 2) {
  TilePoolConfig cfg;
  cfg.replicas = replicas;
  cfg.system.tile.tile.rows = 8;
  cfg.system.tile.tile.cols = 8;
  cfg.system.tile.array.model_ir_drop = false;
  cfg.seed = 77;
  return cfg;
}

TrafficConfig traffic_cfg(std::size_t n, double rate_rps) {
  TrafficConfig cfg;
  cfg.requests = n;
  cfg.rate_rps = rate_rps;
  cfg.in_dim = 8;
  cfg.seed = 5;
  return cfg;
}

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

// The tentpole acceptance gate: on every completion the five components
// sum to the end-to-end latency *bitwise* (done_ns is constructed as
// arrival + the same left-to-right sum), and the service components are
// exactly the pool's closed-form split.
TEST(Timeline, DecompositionSumsToLatencyBitwise) {
  TilePool pool(test_weights(8, 8), pool_cfg(3));
  ControllerConfig ccfg;
  ccfg.tier_escalation = true;
  ccfg.escalation_queue_depth = 8;
  auto tcfg = traffic_cfg(400, 2.0e7);
  tcfg.process = ArrivalProcess::kMmpp;
  tcfg.inference_frac = 0.4;
  Controller ctl(pool, ccfg);
  const auto r = ctl.run(generate(tcfg));

  ASSERT_GT(r.completions.size(), 0u);
  for (const Completion& c : r.completions) {
    EXPECT_EQ(c.arrival_ns + c.decomposition_sum(), c.done_ns) << c.id;
    EXPECT_GE(c.batch_wait_ns, 0.0);
    EXPECT_GE(c.queue_wait_ns, 0.0);
    EXPECT_EQ(c.issue_wait_ns, ccfg.issue_overhead_ns);
    // Service split is the closed-form system decomposition, bitwise.
    const auto parts = pool.request_latency_parts(4);
    EXPECT_EQ(c.bitserial_ns, parts.bitserial_ns);
    EXPECT_EQ(c.reduce_ns, parts.reduce_ns);
  }
  // The aggregate means decompose the mean latency the same way (issue is
  // amortized per batch in the aggregate, so the identity is <=).
  EXPECT_GT(r.stats.mean_queue_wait_ns + r.stats.mean_batch_wait_ns, 0.0);
  EXPECT_LE(r.stats.mean_batch_wait_ns + r.stats.mean_queue_wait_ns +
                r.stats.mean_issue_share_ns + r.stats.mean_bitserial_ns +
                r.stats.mean_reduce_ns,
            r.stats.mean_ns + 1e-6);
}

// Satellite: a <= 1-request run must report zero throughput/utilization
// (one completion would make throughput 1/latency — a nonsense rate).
TEST(Timeline, SingleRequestRunReportsZeroRates) {
  TilePool pool(test_weights(8, 8), pool_cfg());
  Controller ctl(pool, ControllerConfig{});
  const auto r = ctl.run(generate(traffic_cfg(1, 1.0e6)));
  ASSERT_EQ(r.stats.completed, 1u);
  EXPECT_EQ(r.stats.throughput_rps, 0.0);
  for (const double u : r.stats.per_replica_utilization) EXPECT_EQ(u, 0.0);
  EXPECT_GT(r.stats.mean_ns, 0.0);  // latency itself is still real

  // Two completions span a real makespan: rates come back.
  TilePool pool2(test_weights(8, 8), pool_cfg());
  Controller ctl2(pool2, ControllerConfig{});
  const auto r2 = ctl2.run(generate(traffic_cfg(2, 1.0e6)));
  ASSERT_EQ(r2.stats.completed, 2u);
  EXPECT_GT(r2.stats.throughput_rps, 0.0);
}

// Satellite: occupancy is sampled at completion events too. Two spaced
// requests with max_batch=1: at each arrival the request is dispatched
// but unstarted (queue depth 1), at each completion the system is empty
// (depth 0) -> samples [1, 0, 1, 0], mean 0.5, hand-computed.
TEST(Timeline, OccupancySamplesCompletionEventsHandComputed) {
  TilePool pool(test_weights(8, 8), pool_cfg(1));
  ControllerConfig ccfg;
  ccfg.max_batch = 1;
  const double service = pool.request_latency_ns(4);

  std::vector<Request> reqs(2);
  for (std::size_t i = 0; i < 2; ++i) {
    reqs[i].id = i;
    reqs[i].kind = RequestKind::kVmm;
    // Far enough apart that the first fully completes before the second
    // arrives (issue + service plus slack).
    reqs[i].arrival_ns =
        static_cast<double>(i) * (ccfg.issue_overhead_ns + service + 1e6);
    reqs[i].input_bits = 4;
    reqs[i].tier = crossbar::FidelityTier::kIdeal;
    reqs[i].input.assign(8, 1);
  }

  Controller ctl(pool, ccfg);
  const auto r = ctl.run(reqs);
  ASSERT_EQ(r.stats.completed, 2u);
  // 2 arrival samples + 2 completion samples.
  EXPECT_EQ(r.stats.occupancy_samples, 4u);
  EXPECT_DOUBLE_EQ(r.stats.mean_queue_depth, 0.5);
  EXPECT_DOUBLE_EQ(r.stats.mean_inflight, 0.0);
  EXPECT_EQ(r.stats.max_queue_depth, 1u);
}

ControllerConfig windowed_cfg() {
  ControllerConfig ccfg;
  ccfg.window_ns = 20000.0;
  ccfg.slo_target_ns = 50000.0;
  ccfg.slo_objective = 0.99;
  return ccfg;
}

TEST(Timeline, WindowedSeriesPopulatesRows) {
  TilePool pool(test_weights(8, 8), pool_cfg());
  Controller ctl(pool, windowed_cfg());
  const auto r = ctl.run(generate(traffic_cfg(300, 1.0e7)));

  ASSERT_GT(r.stats.windows.size(), 1u);
  std::uint64_t completed = 0;
  for (std::size_t i = 0; i < r.stats.windows.size(); ++i) {
    const WindowStat& w = r.stats.windows[i];
    if (i > 0) {
      EXPECT_GT(w.index, r.stats.windows[i - 1].index);
    }
    EXPECT_DOUBLE_EQ(w.start_ns, static_cast<double>(w.index) * 20000.0);
    completed += w.completed;
    if (w.completed > 0) {
      EXPECT_GT(w.rate_rps, 0.0);
      EXPECT_GT(w.p99_ns, 0.0);
      EXPECT_GE(w.p99_ns, w.p50_ns);
    }
  }
  // Every completion lands in exactly one window.
  EXPECT_EQ(completed, r.stats.completed);
  EXPECT_TRUE(r.stats.slo.enabled);
  EXPECT_EQ(r.stats.slo.good + r.stats.slo.bad,
            static_cast<std::uint64_t>(r.stats.completed));
}

// The determinism contract extended to the windowed series: the per-window
// tail latencies, burn rates, and the SLO summary are bit-identical at any
// thread count (they are a pure post-pass over the serial schedule).
TEST(Timeline, WindowedSeriesDeterministicAcrossThreadCounts) {
  auto run_with = [](util::ThreadPool* tp) {
    TilePool pool(test_weights(12, 8), pool_cfg(3));
    auto tcfg = traffic_cfg(300, 1.0e7);
    tcfg.process = ArrivalProcess::kMmpp;
    tcfg.inference_frac = 0.4;
    Controller ctl(pool, windowed_cfg());
    return ctl.run(generate(tcfg), tp).stats;
  };

  util::ThreadPool one(1);
  util::ThreadPool four(4);
  const auto serial = run_with(nullptr);
  const auto t1 = run_with(&one);
  const auto t4 = run_with(&four);

  for (const auto* st : {&t1, &t4}) {
    ASSERT_EQ(serial.windows.size(), st->windows.size());
    for (std::size_t i = 0; i < serial.windows.size(); ++i) {
      const WindowStat& a = serial.windows[i];
      const WindowStat& b = st->windows[i];
      EXPECT_EQ(a.index, b.index);
      EXPECT_EQ(a.completed, b.completed);
      EXPECT_EQ(a.rejected, b.rejected);
      EXPECT_EQ(a.rate_rps, b.rate_rps);  // bitwise
      EXPECT_EQ(a.p50_ns, b.p50_ns);
      EXPECT_EQ(a.p99_ns, b.p99_ns);
      EXPECT_EQ(a.p999_ns, b.p999_ns);
      EXPECT_EQ(a.slo_violations, b.slo_violations);
      EXPECT_EQ(a.burn_rate, b.burn_rate);
    }
    EXPECT_EQ(serial.slo.good, st->slo.good);
    EXPECT_EQ(serial.slo.bad, st->slo.bad);
    EXPECT_EQ(serial.slo.budget_consumed, st->slo.budget_consumed);
    EXPECT_EQ(serial.slo.fast_alerts, st->slo.fast_alerts);
    EXPECT_EQ(serial.slo.breached, st->slo.breached);
  }
}

// The ISSUE acceptance test: force an SLO breach and require the flight
// recorder to land a post-mortem dump naming an SLO trigger.
TEST(Timeline, FlightRecorderDumpsOnForcedSloBreach) {
  const std::string path =
      std::string(::testing::TempDir()) + "flight_slo_breach.json";
  std::remove(path.c_str());

  TilePool pool(test_weights(8, 8), pool_cfg());
  ControllerConfig ccfg;
  ccfg.window_ns = 20000.0;
  ccfg.slo_target_ns = 1.0;  // impossible target: every completion violates
  ccfg.slo_objective = 0.99;
  ccfg.flight_dump_path = path;
  ccfg.flight_capacity = 32;
  Controller ctl(pool, ccfg);
  const auto r = ctl.run(generate(traffic_cfg(200, 1.0e7)));

  EXPECT_TRUE(r.stats.slo.breached);
  EXPECT_EQ(r.stats.flight_dumps, 1u);
  const std::string dump = slurp(path);
  ASSERT_FALSE(dump.empty()) << "missing flight dump " << path;
  const std::string header = dump.substr(0, dump.find('\n'));
  EXPECT_NE(header.find("\"format\":\"cim-flight-v1\""), std::string::npos);
  EXPECT_NE(header.find("\"reason\":\"slo-"), std::string::npos);
  // The ring held actual lifecycle records leading up to the breach.
  EXPECT_NE(dump.find("\"event\":\"done\""), std::string::npos);
  EXPECT_NE(dump.find("\"event\":\"batch\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(Timeline, FlightRecorderDumpsOnShedSpike) {
  const std::string path =
      std::string(::testing::TempDir()) + "flight_shed_spike.json";
  std::remove(path.c_str());

  TilePool pool(test_weights(8, 8), pool_cfg());
  ControllerConfig ccfg;
  ccfg.window_ns = 1.0e9;  // one wide window: all rejections land together
  ccfg.queue_capacity = 16;
  ccfg.flight_dump_path = path;
  ccfg.flight_shed_spike = 8;
  Controller ctl(pool, ccfg);
  const auto r = ctl.run(generate(traffic_cfg(300, 1.0e15)));  // saturating

  ASSERT_GE(r.stats.rejected, 8u);
  EXPECT_EQ(r.stats.flight_dumps, 1u);
  const std::string dump = slurp(path);
  ASSERT_FALSE(dump.empty());
  EXPECT_NE(dump.find("\"reason\":\"shed-spike\""), std::string::npos);
  EXPECT_NE(dump.find("\"event\":\"rejected\""), std::string::npos);
  std::remove(path.c_str());
}

// Tracing: each completion gets simulated-time wait/exec spans on pid 2
// joined by a flow arrow keyed on the request id (the trace id).
TEST(Timeline, ChromeTraceCarriesFlowEvents) {
  obs::reset();
  obs::set_mode(obs::Mode::kTrace);
  TilePool pool(test_weights(8, 8), pool_cfg());
  Controller ctl(pool, ControllerConfig{});
  ctl.run(generate(traffic_cfg(50, 1.0e7)));
  std::ostringstream os;
  obs::write_chrome_trace(os);
  obs::set_mode(obs::Mode::kOff);
  obs::reset();

  const std::string trace = os.str();
  EXPECT_NE(trace.find("\"name\":\"req.wait\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"req.exec\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"serve.batch\""), std::string::npos);
  // Flow start/finish pairs with binding point "enclosing slice".
  EXPECT_NE(trace.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"f\""), std::string::npos);
  EXPECT_NE(trace.find("\"bp\":\"e\""), std::string::npos);
  // Simulated-time lanes live on their own pid, apart from wall-clock spans.
  EXPECT_NE(trace.find("\"pid\":2"), std::string::npos);
}

TEST(Timeline, EnvOverridesParseObservabilityKnobs) {
  TrafficConfig t;
  ControllerConfig c;
  ::setenv("CIM_SERVE_WINDOW_NS", "50000", 1);
  ::setenv("CIM_SERVE_SLO_TARGET_NS", "1e5", 1);
  ::setenv("CIM_SERVE_SLO_OBJECTIVE", "0.95", 1);
  ::setenv("CIM_SERVE_FLIGHT_FILE", "/tmp/flight.json", 1);
  apply_env_overrides(t, c);
  EXPECT_DOUBLE_EQ(c.window_ns, 50000.0);
  EXPECT_DOUBLE_EQ(c.slo_target_ns, 1e5);
  EXPECT_DOUBLE_EQ(c.slo_objective, 0.95);
  EXPECT_EQ(c.flight_dump_path, "/tmp/flight.json");

  // An out-of-range objective is ignored, not applied.
  ::setenv("CIM_SERVE_SLO_OBJECTIVE", "1.5", 1);
  apply_env_overrides(t, c);
  EXPECT_DOUBLE_EQ(c.slo_objective, 0.95);

  for (const char* k : {"CIM_SERVE_WINDOW_NS", "CIM_SERVE_SLO_TARGET_NS",
                        "CIM_SERVE_SLO_OBJECTIVE", "CIM_SERVE_FLIGHT_FILE"})
    ::unsetenv(k);
}

}  // namespace
}  // namespace cim::serve
