/// Process-wide Prometheus endpoint lifecycle: explicit start/stop by
/// non-CimSystem front-ends, idempotent double-start, rebind refusal, and
/// the quantile gauge family the serving dashboards scrape.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>

#include "obs/obs.hpp"
#include "obs/prom.hpp"

namespace cim::obs {
namespace {

TEST(PromLifecycle, EnvHookDeclinesWhenUnsetOrDisabled) {
  ::unsetenv("CIM_OBS_PROM_PORT");
  set_mode(Mode::kMetrics);
  EXPECT_EQ(maybe_start_prometheus_from_env(), 0);
  EXPECT_FALSE(global_prom_server().running());
  set_mode(Mode::kOff);
}

TEST(PromLifecycle, ExplicitStartIsIdempotentAndStoppable) {
  // Explicit lifecycle needs no CimSystem and no telemetry mode.
  const std::uint16_t port = start_global_prometheus(0);
  ASSERT_NE(port, 0);
  EXPECT_TRUE(global_prom_server().running());

  // Double-start: no-op, reports the already-bound port.
  EXPECT_EQ(start_global_prometheus(0), port);
  EXPECT_EQ(start_global_prometheus(port), port);
  // Rebinding to a different port while running is refused.
  EXPECT_EQ(start_global_prometheus(static_cast<std::uint16_t>(port + 1)), 0);
  EXPECT_EQ(global_prom_server().port(), port);

  stop_global_prometheus();
  EXPECT_FALSE(global_prom_server().running());
  stop_global_prometheus();  // stop when stopped is a no-op

  // The endpoint can come back after a stop.
  ASSERT_NE(start_global_prometheus(0), 0);
  stop_global_prometheus();
}

TEST(PromLifecycle, HistogramQuantileGaugesExported) {
  Registry::global().reset();
  auto& h = Registry::global().histogram(
      "serve.test.latency", std::vector<double>{10.0, 20.0, 40.0});
  for (int i = 0; i < 100; ++i) h.observe(15.0);

  std::ostringstream os;
  write_prometheus_text(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("cim_serve_test_latency_q{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("cim_serve_test_latency_q{quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(text.find("cim_serve_test_latency_q{quantile=\"0.999\"}"),
            std::string::npos);
  // All mass at the (10, 20] bucket midpointish estimates: within bounds.
  const auto pos = text.find("_q{quantile=\"0.5\"} ");
  ASSERT_NE(pos, std::string::npos);
  const double p50 = std::strtod(
      text.c_str() + pos + std::string("_q{quantile=\"0.5\"} ").size(),
      nullptr);
  EXPECT_GT(p50, 10.0);
  EXPECT_LE(p50, 20.0);
  Registry::global().reset();
}

}  // namespace
}  // namespace cim::obs
