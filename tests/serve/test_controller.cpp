/// SLO-aware batching controller: execution correctness against the ideal
/// oracle, batching/queueing semantics, admission control, tier
/// escalation, wear-aware routing, and the headline determinism contract —
/// bit-identical per-request results and aggregate latency stats at any
/// thread count (the `serve` slice of the sanitizer gate).
#include "serve/controller.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "obs/health.hpp"
#include "obs/obs.hpp"
#include "serve/traffic.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace cim::serve {
namespace {

util::Matrix test_weights(std::size_t out, std::size_t in) {
  util::Rng rng(11);
  util::Matrix w(out, in);
  for (auto& v : w.flat())
    v = static_cast<double>(static_cast<long>(rng.uniform_int(15)) - 7);
  return w;
}

TilePoolConfig pool_cfg(std::size_t replicas = 4) {
  TilePoolConfig cfg;
  cfg.replicas = replicas;
  cfg.system.tile.tile.rows = 8;
  cfg.system.tile.tile.cols = 8;
  cfg.system.tile.tile.adc_bits = 10;
  cfg.system.tile.weight_bits = 4;
  cfg.system.tile.array.model_ir_drop = false;
  cfg.seed = 77;
  return cfg;
}

TrafficConfig traffic_cfg(std::size_t n, double rate_rps) {
  TrafficConfig cfg;
  cfg.requests = n;
  cfg.rate_rps = rate_rps;
  cfg.in_dim = 8;
  cfg.seed = 5;
  return cfg;
}

TEST(Controller, IdealTierResultsMatchReferenceAndTimingsAreSane) {
  TilePool pool(test_weights(8, 8), pool_cfg(2));
  auto tcfg = traffic_cfg(120, 5.0e6);
  tcfg.tier = crossbar::FidelityTier::kIdeal;
  const auto reqs = generate(tcfg);

  Controller ctl(pool, ControllerConfig{});
  const auto report = ctl.run(reqs);

  // kIdeal advances no RNG and evolves no device state, so a fresh system
  // serving each request standalone is the exact reference for any
  // batching, routing, or dispatch order the controller chose.
  core::CimSystem ref(test_weights(8, 8), pool_cfg(2).system);

  ASSERT_EQ(report.stats.completed, reqs.size());
  EXPECT_EQ(report.stats.rejected, 0u);
  ASSERT_EQ(report.completions.size(), reqs.size());
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    const Completion& c = report.completions[i];
    EXPECT_EQ(c.id, reqs[i].id);  // sorted by id
    EXPECT_GE(c.dispatch_ns, c.arrival_ns);
    EXPECT_GT(c.done_ns, c.dispatch_ns);
    EXPECT_LT(c.replica, pool.size());
    EXPECT_EQ(c.result, ref.vmm_int(reqs[i].input, reqs[i].input_bits, nullptr,
                                    crossbar::FidelityTier::kIdeal));
    if (c.kind == RequestKind::kInference) {
      ASSERT_GE(c.label, 0);
      for (const long v : c.result) EXPECT_LE(v, c.result[c.label]);
    } else {
      EXPECT_EQ(c.label, -1);
    }
  }
}

TEST(Controller, CoalescesUnderLoadAndHonorsDeadlineWhenIdle) {
  TilePool pool(test_weights(8, 8), pool_cfg(2));
  ControllerConfig ccfg;
  ccfg.max_batch = 8;
  ccfg.batch_deadline_ns = 2000.0;

  // Overload: arrivals far faster than service -> full batches.
  {
    Controller ctl(pool, ccfg);
    const auto r = ctl.run(generate(traffic_cfg(400, 5.0e7)));
    EXPECT_GT(r.stats.mean_batch, 4.0);
    EXPECT_GT(r.stats.max_queue_depth, 0u);
  }
  // Near-idle: deadline flushes dominate, and no request queues longer
  // than the deadline (replicas are never the bottleneck here).
  {
    Controller ctl(pool, ccfg);
    const auto r = ctl.run(generate(traffic_cfg(100, 1.0e4)));
    EXPECT_LT(r.stats.mean_batch, 2.0);
    for (const Completion& c : r.completions)
      EXPECT_LE(c.queue_ns(), ccfg.batch_deadline_ns + 1e-9);
  }
}

TEST(Controller, BatchingBeatsRequestAtATimeThroughput) {
  // The bench gate in miniature: same stream, batch=16 vs batch=1, on a
  // saturating load. Issue overhead is pinned at 3x the service time so
  // the amortization ratio (o + s) / (o/B + s) is architecture-independent.
  TilePool pool_batched(test_weights(8, 8), pool_cfg(4));
  TilePool pool_single(test_weights(8, 8), pool_cfg(4));
  const double s = pool_batched.request_latency_ns(4);

  ControllerConfig ccfg;
  ccfg.issue_overhead_ns = 3.0 * s;
  ccfg.queue_capacity = 100000;
  const auto reqs = generate(traffic_cfg(2000, 1.0e15));  // saturating

  ccfg.max_batch = 16;
  Controller batched(pool_batched, ccfg);
  const auto rb = batched.run(reqs);
  ccfg.max_batch = 1;
  Controller single(pool_single, ccfg);
  const auto rs = single.run(reqs);

  ASSERT_EQ(rb.stats.completed, reqs.size());
  ASSERT_EQ(rs.stats.completed, reqs.size());
  EXPECT_GE(rb.stats.throughput_rps, 2.0 * rs.stats.throughput_rps);
  // At saturation the backlog dominates latency, so faster draining also
  // means an equal-or-better tail.
  EXPECT_LE(rb.stats.p99_ns, rs.stats.p99_ns);
}

TEST(Controller, AdmissionControlShedsBeyondCapacity) {
  TilePool pool(test_weights(8, 8), pool_cfg(2));
  ControllerConfig ccfg;
  ccfg.queue_capacity = 32;
  ccfg.max_batch = 4;
  Controller ctl(pool, ccfg);
  const auto reqs = generate(traffic_cfg(500, 1.0e15));
  const auto r = ctl.run(reqs);
  EXPECT_GT(r.stats.rejected, 0u);
  EXPECT_EQ(r.stats.completed + r.stats.rejected, r.stats.offered);
  EXPECT_LE(r.stats.max_queue_depth, ccfg.queue_capacity);
}

TEST(Controller, TierEscalationShedsLoadUnderDeepQueues) {
  TilePool pool(test_weights(8, 8), pool_cfg(2));
  ControllerConfig ccfg;
  ccfg.tier_escalation = true;
  ccfg.escalation_queue_depth = 8;
  ccfg.max_batch = 4;
  Controller ctl(pool, ccfg);
  const auto r = ctl.run(generate(traffic_cfg(300, 1.0e15)));
  EXPECT_GT(r.stats.escalated, 0u);
  bool saw_calibrated = false;
  for (const Completion& c : r.completions)
    if (c.tier == crossbar::FidelityTier::kCalibrated) saw_calibrated = true;
  EXPECT_TRUE(saw_calibrated);

  // Off by default: nothing escalates.
  TilePool pool2(test_weights(8, 8), pool_cfg(2));
  Controller plain(pool2, ControllerConfig{});
  EXPECT_EQ(plain.run(generate(traffic_cfg(300, 1.0e15))).stats.escalated, 0u);
}

TEST(Controller, WearAwareRoutingShiftsTrafficOffWornReplica) {
  obs::set_mode(obs::Mode::kHealth);
  auto run_policy = [&](RoutingPolicy policy) {
    TilePool pool(test_weights(8, 8), pool_cfg(4));
    // Pre-age replica 0: heavy recorded write wear on its arrays.
    auto& worn = pool.replica(0);
    for (std::size_t b = 0; b < worn.tile_count(); ++b)
      worn.tile(b).plus_array().health_monitor().record_write(0, 0, 100000);
    ControllerConfig ccfg;
    ccfg.routing = policy;
    Controller ctl(pool, ccfg);
    // Saturating load: backlog dominates the tiny health differences among
    // the healthy replicas, so wear-aware both sheds the worn replica AND
    // load-balances the rest (at light load it would just pin the single
    // healthiest replica — also correct, but not the property under test).
    return ctl.run(generate(traffic_cfg(400, 5.0e7))).stats;
  };

  const auto rr = run_policy(RoutingPolicy::kRoundRobin);
  const auto wear = run_policy(RoutingPolicy::kWearAware);
  obs::set_mode(obs::Mode::kOff);

  // Round-robin is health-blind: near-even split (batch granularity).
  for (std::size_t r = 0; r < 4; ++r) {
    EXPECT_GT(rr.per_replica_requests[r], 70u);
    EXPECT_LT(rr.per_replica_requests[r], 130u);
  }
  // Wear-aware starves the worn replica relative to every healthy one.
  for (std::size_t r = 1; r < 4; ++r)
    EXPECT_LT(wear.per_replica_requests[0] + 50,
              wear.per_replica_requests[r]);
}

TEST(Controller, DeterministicAcrossThreadCounts) {
  auto run_with = [](util::ThreadPool* tp) {
    TilePool pool(test_weights(12, 8), pool_cfg(3));
    auto tcfg = traffic_cfg(300, 1.0e7);
    tcfg.process = ArrivalProcess::kMmpp;
    tcfg.inference_frac = 0.4;
    Controller ctl(pool, ControllerConfig{});
    return ctl.run(generate(tcfg), tp);
  };

  util::ThreadPool one(1);
  util::ThreadPool four(4);
  const auto serial = run_with(nullptr);
  const auto t1 = run_with(&one);
  const auto t4 = run_with(&four);

  ASSERT_EQ(serial.completions.size(), t4.completions.size());
  for (std::size_t i = 0; i < serial.completions.size(); ++i) {
    const auto& a = serial.completions[i];
    for (const auto* b : {&t1.completions[i], &t4.completions[i]}) {
      EXPECT_EQ(a.id, b->id);
      EXPECT_EQ(a.result, b->result);  // bit-identical device results
      EXPECT_EQ(a.label, b->label);
      EXPECT_EQ(a.dispatch_ns, b->dispatch_ns);
      EXPECT_EQ(a.done_ns, b->done_ns);
      EXPECT_EQ(a.replica, b->replica);
      EXPECT_EQ(a.tier, b->tier);
    }
  }
  for (const auto* st : {&t1.stats, &t4.stats}) {
    EXPECT_EQ(serial.stats.p50_ns, st->p50_ns);
    EXPECT_EQ(serial.stats.p99_ns, st->p99_ns);
    EXPECT_EQ(serial.stats.p999_ns, st->p999_ns);
    EXPECT_EQ(serial.stats.throughput_rps, st->throughput_rps);
    EXPECT_EQ(serial.stats.mean_queue_depth, st->mean_queue_depth);
  }
}

TEST(Controller, ExportsSloMetricsToObsRegistry) {
  obs::reset();
  TilePool pool(test_weights(8, 8), pool_cfg(2));
  Controller ctl(pool, ControllerConfig{});
  const auto r = ctl.run(generate(traffic_cfg(200, 1.0e7)));

  const auto snap = obs::snapshot();
  std::uint64_t served = 0;
  bool saw_latency = false;
  for (const auto& [name, v] : snap.counters)
    if (name == "serve.requests") served = v;
  EXPECT_EQ(served, 200u);
  for (const auto& h : snap.histograms)
    if (h.name == "serve.latency_ns") {
      saw_latency = true;
      EXPECT_EQ(h.data.count, r.stats.completed);
      // The scrape-side estimate brackets the exact tail within a bucket.
      EXPECT_GT(h.data.p99(), 0.0);
    }
  EXPECT_TRUE(saw_latency);
  obs::reset();
}

TEST(Controller, EnvOverridesParseKnownKnobs) {
  TrafficConfig t;
  ControllerConfig c;
  ::setenv("CIM_SERVE_REQUESTS", "123", 1);
  ::setenv("CIM_SERVE_RATE_RPS", "5e6", 1);
  ::setenv("CIM_SERVE_PROCESS", "mmpp", 1);
  ::setenv("CIM_SERVE_BATCH", "32", 1);
  ::setenv("CIM_SERVE_DEADLINE_NS", "1500", 1);
  ::setenv("CIM_SERVE_POLICY", "wear", 1);
  ::setenv("CIM_SERVE_ESCALATE", "1", 1);
  apply_env_overrides(t, c);
  EXPECT_EQ(t.requests, 123u);
  EXPECT_DOUBLE_EQ(t.rate_rps, 5e6);
  EXPECT_EQ(t.process, ArrivalProcess::kMmpp);
  EXPECT_EQ(c.max_batch, 32u);
  EXPECT_DOUBLE_EQ(c.batch_deadline_ns, 1500.0);
  EXPECT_EQ(c.routing, RoutingPolicy::kWearAware);
  EXPECT_TRUE(c.tier_escalation);

  // Malformed values leave fields untouched.
  ::setenv("CIM_SERVE_BATCH", "not-a-number", 1);
  apply_env_overrides(t, c);
  EXPECT_EQ(c.max_batch, 32u);

  for (const char* k :
       {"CIM_SERVE_REQUESTS", "CIM_SERVE_RATE_RPS", "CIM_SERVE_PROCESS",
        "CIM_SERVE_BATCH", "CIM_SERVE_DEADLINE_NS", "CIM_SERVE_POLICY",
        "CIM_SERVE_ESCALATE"})
    ::unsetenv(k);
}

}  // namespace
}  // namespace cim::serve
