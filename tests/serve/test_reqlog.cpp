/// cim-reqlog-v1 round-trips: serving runs survive dump -> parse
/// field-exactly (doubles bitwise via %.17g), dump -> parse -> dump is a
/// byte-exact fixpoint, CRLF/trailing-whitespace-damaged logs still parse
/// (the robustness contract shared with cim-trace-v1), malformed logs
/// fail with line-numbered errors, and the CIM_OBS_REQLOG_FILE env hook
/// writes the crash-safe export from Controller::run.
#include "serve/reqlog.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "obs/obs.hpp"
#include "serve/controller.hpp"
#include "serve/traffic.hpp"
#include "util/rng.hpp"

namespace cim::serve {
namespace {

util::Matrix test_weights(std::size_t out, std::size_t in) {
  util::Rng rng(11);
  util::Matrix w(out, in);
  for (auto& v : w.flat())
    v = static_cast<double>(static_cast<long>(rng.uniform_int(15)) - 7);
  return w;
}

TilePoolConfig pool_cfg(std::size_t replicas = 2) {
  TilePoolConfig cfg;
  cfg.replicas = replicas;
  cfg.system.tile.tile.rows = 8;
  cfg.system.tile.tile.cols = 8;
  cfg.system.tile.array.model_ir_drop = false;
  cfg.seed = 77;
  return cfg;
}

/// A saturating run with a small queue: produces completions with
/// non-trivial decompositions AND rejections, exercising both record types.
ServeReport shedding_report() {
  TilePool pool(test_weights(8, 8), pool_cfg());
  ControllerConfig ccfg;
  ccfg.queue_capacity = 32;
  ccfg.max_batch = 4;
  Controller ctl(pool, ccfg);
  TrafficConfig tcfg;
  tcfg.requests = 200;
  tcfg.rate_rps = 1.0e15;
  tcfg.in_dim = 8;
  tcfg.seed = 5;
  return ctl.run(generate(tcfg));
}

TEST(ReqLog, ServingRunRoundTripsFieldExactly) {
  const auto report = shedding_report();
  ASSERT_GT(report.completions.size(), 0u);
  ASSERT_GT(report.rejections.size(), 0u);

  std::ostringstream os;
  write_reqlog(os, report);
  std::istringstream is(os.str());
  const ReqLog log = read_reqlog(is);

  ASSERT_EQ(log.completions.size(), report.completions.size());
  ASSERT_EQ(log.rejections.size(), report.rejections.size());
  for (std::size_t i = 0; i < log.completions.size(); ++i) {
    const Completion& a = report.completions[i];
    const Completion& b = log.completions[i];
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.tier, b.tier);
    EXPECT_EQ(a.escalated, b.escalated);
    EXPECT_EQ(a.replica, b.replica);
    EXPECT_EQ(a.batch_size, b.batch_size);
    EXPECT_EQ(a.label, b.label);
    // %.17g makes every double survive the text round trip bitwise, so
    // the decomposition identity survives parsing too.
    EXPECT_EQ(a.arrival_ns, b.arrival_ns);
    EXPECT_EQ(a.dispatch_ns, b.dispatch_ns);
    EXPECT_EQ(a.done_ns, b.done_ns);
    EXPECT_EQ(a.batch_wait_ns, b.batch_wait_ns);
    EXPECT_EQ(a.queue_wait_ns, b.queue_wait_ns);
    EXPECT_EQ(a.issue_wait_ns, b.issue_wait_ns);
    EXPECT_EQ(a.bitserial_ns, b.bitserial_ns);
    EXPECT_EQ(a.reduce_ns, b.reduce_ns);
    EXPECT_EQ(b.arrival_ns + b.decomposition_sum(), b.done_ns);
  }
  for (std::size_t i = 0; i < log.rejections.size(); ++i) {
    EXPECT_EQ(log.rejections[i].id, report.rejections[i].id);
    EXPECT_EQ(log.rejections[i].kind, report.rejections[i].kind);
    EXPECT_EQ(log.rejections[i].arrival_ns, report.rejections[i].arrival_ns);
  }
}

TEST(ReqLog, DumpParseDumpIsAByteExactFixpoint) {
  const auto report = shedding_report();
  std::ostringstream once;
  write_reqlog(once, report);
  std::istringstream is(once.str());
  const ReqLog log = read_reqlog(is);
  std::ostringstream twice;
  write_reqlog(twice, log);
  EXPECT_EQ(once.str(), twice.str());
}

TEST(ReqLog, ToleratesCrlfTrailingWhitespaceAndBlankLines) {
  const auto report = shedding_report();
  std::ostringstream os;
  write_reqlog(os, report);
  const std::string clean = os.str();

  // Re-damage the log the way a windows checkout or an editor would:
  // CRLF line endings, trailing spaces/tabs, interleaved blank lines.
  std::string damaged;
  std::istringstream lines(clean);
  std::string line;
  while (std::getline(lines, line)) {
    damaged += line;
    damaged += " \t\r\n\r\n";
  }
  std::istringstream is(damaged);
  const ReqLog log = read_reqlog(is);
  ASSERT_EQ(log.completions.size(), report.completions.size());
  ASSERT_EQ(log.rejections.size(), report.rejections.size());

  // The damaged parse still re-dumps to the clean fixpoint.
  std::ostringstream redump;
  write_reqlog(redump, log);
  EXPECT_EQ(redump.str(), clean);
}

TEST(ReqLog, MalformedLogsFailWithLineNumbers) {
  const char* kHeader =
      "{\"format\":\"cim-reqlog-v1\",\"completions\":0,\"rejections\":0}\n";
  const struct {
    std::string text;
    const char* needle;
  } cases[] = {
      {"", "no header"},
      {"{\"format\":\"cim-reqlog-v2\"}\n", "line 1"},
      {"not json\n", "line 1"},
      {std::string(kHeader) + "{\"id\":0}\n", "missing 'event'"},
      {std::string(kHeader) + "{\"event\":\"warp\",\"id\":0}\n",
       "unknown event"},
      {std::string(kHeader) +
           "{\"event\":\"rejected\",\"id\":0,\"kind\":\"quantum\","
           "\"arrival_ns\":0}\n",
       "unknown kind"},
      {std::string(kHeader) +
           "{\"event\":\"rejected\",\"id\":0,\"kind\":\"vmm\"}\n",
       "line 2"},
  };
  for (const auto& c : cases) {
    std::istringstream is(c.text);
    try {
      read_reqlog(is);
      FAIL() << "expected parse failure for: " << c.text;
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find(c.needle), std::string::npos)
          << "error '" << e.what() << "' lacks '" << c.needle << "'";
    }
  }
}

TEST(ReqLog, EnvHookExportsFromControllerRun) {
  const std::string path =
      std::string(::testing::TempDir()) + "reqlog_env_export.cimreqlog";
  std::remove(path.c_str());

  // Disabled telemetry: no export even when the path is set.
  obs::set_mode(obs::Mode::kOff);
  ::setenv("CIM_OBS_REQLOG_FILE", path.c_str(), 1);
  const auto report = shedding_report();
  EXPECT_FALSE(std::ifstream(path).good());

  // Enabled: Controller::run writes the crash-safe export.
  obs::set_mode(obs::Mode::kMetrics);
  const auto report2 = shedding_report();
  obs::set_mode(obs::Mode::kOff);
  ::unsetenv("CIM_OBS_REQLOG_FILE");

  const ReqLog log = read_reqlog_file(path);
  EXPECT_EQ(log.completions.size(), report2.completions.size());
  EXPECT_EQ(log.rejections.size(), report2.rejections.size());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cim::serve
