#include "device/technology.hpp"

#include <gtest/gtest.h>

#include <string>

namespace cim::device {
namespace {

class TechnologyParamTest : public ::testing::TestWithParam<Technology> {};

TEST_P(TechnologyParamTest, ParametersAreWellFormed) {
  const auto p = technology_params(GetParam());
  EXPECT_EQ(p.tech, GetParam());
  EXPECT_GT(p.r_on_kohm, 0.0);
  EXPECT_GT(p.r_off_kohm, p.r_on_kohm);
  EXPECT_GE(p.max_levels, 2);
  EXPECT_GT(p.v_set, 0.0);
  EXPECT_LT(p.v_reset, 0.0);
  EXPECT_GT(p.v_read, 0.0);
  EXPECT_GT(p.t_write_ns, 0.0);
  EXPECT_GT(p.t_read_ns, 0.0);
  EXPECT_GT(p.e_write_pj, 0.0);
  EXPECT_GT(p.e_read_pj, 0.0);
  EXPECT_GT(p.endurance_mean, 0.0);
  EXPECT_GE(p.write_sigma_log, 0.0);
  EXPECT_GE(p.read_noise_frac, 0.0);
  EXPECT_GT(p.cell_area_f2, 0.0);
}

TEST_P(TechnologyParamTest, ConductanceConsistency) {
  const auto p = technology_params(GetParam());
  EXPECT_GT(p.g_on_us(), p.g_off_us());
  EXPECT_NEAR(p.g_on_us() * p.r_on_kohm, 1e3, 1e-6);
}

TEST_P(TechnologyParamTest, NameIsKnown) {
  EXPECT_NE(technology_name(GetParam()), "unknown");
}

INSTANTIATE_TEST_SUITE_P(AllTechnologies, TechnologyParamTest,
                         ::testing::ValuesIn(all_technologies()),
                         [](const auto& info) {
                           std::string name(technology_name(info.param));
                           for (char& c : name)
                             if (c == '-') c = '_';
                           return name;
                         });

TEST(Technology, ReRamIsDenserThanSram) {
  const auto reram = technology_params(Technology::kReRamHfOx);
  const auto sram = technology_params(Technology::kSram);
  EXPECT_LT(reram.cell_area_um2(), sram.cell_area_um2());
}

TEST(Technology, VolatilityFlags) {
  EXPECT_TRUE(technology_params(Technology::kReRamHfOx).nonvolatile);
  EXPECT_TRUE(technology_params(Technology::kPcm).nonvolatile);
  EXPECT_FALSE(technology_params(Technology::kSram).nonvolatile);
  EXPECT_FALSE(technology_params(Technology::kDram).nonvolatile);
}

TEST(Technology, MramIsBinary) {
  EXPECT_EQ(technology_params(Technology::kSttMram).max_levels, 2);
}

TEST(Technology, CellAreaScalesWithNode) {
  auto p = technology_params(Technology::kReRamHfOx);
  const double a32 = p.cell_area_um2();
  p.feature_nm = 16.0;
  EXPECT_NEAR(p.cell_area_um2(), a32 / 4.0, 1e-9);
}

TEST(Technology, AllTechnologiesListIsComplete) {
  EXPECT_EQ(all_technologies().size(), 6u);
}

}  // namespace
}  // namespace cim::device
