#include "device/memristor.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace cim::device {
namespace {

TEST(Memristor, ResistanceInterpolatesBetweenRonRoff) {
  MemristorParams p;
  p.w_init = 0.0;
  Memristor m(p);
  EXPECT_DOUBLE_EQ(m.resistance_kohm(), p.r_off_kohm);
  m.set_state(1.0);
  EXPECT_DOUBLE_EQ(m.resistance_kohm(), p.r_on_kohm);
  m.set_state(0.5);
  EXPECT_DOUBLE_EQ(m.resistance_kohm(), 0.5 * (p.r_on_kohm + p.r_off_kohm));
}

TEST(Memristor, PositiveVoltageSets) {
  Memristor m({.w_init = 0.2});
  const double w0 = m.state();
  m.apply_voltage(2.0, 100.0);
  EXPECT_GT(m.state(), w0);
}

TEST(Memristor, NegativeVoltageResets) {
  Memristor m({.w_init = 0.8});
  const double w0 = m.state();
  m.apply_voltage(-2.0, 100.0);
  EXPECT_LT(m.state(), w0);
}

TEST(Memristor, StateStaysBounded) {
  Memristor m({.w_init = 0.5});
  m.apply_voltage(5.0, 100000.0);
  EXPECT_LE(m.state(), 1.0);
  m.apply_voltage(-5.0, 100000.0);
  EXPECT_GE(m.state(), 0.0);
}

TEST(Memristor, ZeroVoltageRetainsState) {
  Memristor m({.w_init = 0.37});
  m.apply_voltage(0.0, 1000.0);
  EXPECT_DOUBLE_EQ(m.state(), 0.37);  // non-volatility
}

TEST(Memristor, CurrentFollowsOhm) {
  Memristor m({.w_init = 0.0});
  // Tiny pulse so the state barely moves: I = V/R * 1e3 uA.
  const double i = m.apply_voltage(1.0, 1e-6);
  EXPECT_NEAR(i, 1.0 / m.resistance_kohm() * 1e3, 1.0);
}

TEST(Memristor, SweepProducesPinchedHysteresis) {
  Memristor m({.mobility = 5e-2, .w_init = 0.1});
  const auto trace = m.sweep_sinusoid(1.5, 2000.0, 400);
  ASSERT_EQ(trace.size(), 400u);
  // Current near zero whenever voltage is near zero (pinched at origin).
  for (const auto& pt : trace) {
    if (std::abs(pt.voltage_v) < 1e-3) {
      EXPECT_LT(std::abs(pt.current_ua), 5.0);
    }
  }
  // The state must actually move during the sweep (hysteresis exists).
  double wmin = 1.0, wmax = 0.0;
  for (const auto& pt : trace) {
    wmin = std::min(wmin, pt.state_w);
    wmax = std::max(wmax, pt.state_w);
  }
  EXPECT_GT(wmax - wmin, 0.05);
}

TEST(Memristor, WindowSuppressesDriftAtBoundaries) {
  Memristor at_edge({.w_init = 1.0});
  Memristor mid({.w_init = 0.5});
  at_edge.apply_voltage(1.0, 1.0);
  const double w_mid_before = mid.state();
  mid.apply_voltage(1.0, 1.0);
  // The mid-state device moves; the boundary device cannot exceed 1.
  EXPECT_GT(mid.state(), w_mid_before);
  EXPECT_DOUBLE_EQ(at_edge.state(), 1.0);
}

TEST(Memristor, InvalidParamsThrow) {
  MemristorParams bad;
  bad.r_on_kohm = 10.0;
  bad.r_off_kohm = 5.0;  // off < on
  EXPECT_THROW(Memristor{bad}, std::invalid_argument);
  MemristorParams bad2;
  bad2.window_p = 0;
  EXPECT_THROW(Memristor{bad2}, std::invalid_argument);
}

TEST(Memristor, NegativeDtThrows) {
  Memristor m;
  EXPECT_THROW(m.apply_voltage(1.0, -1.0), std::invalid_argument);
}

}  // namespace
}  // namespace cim::device
