#include "device/reram_cell.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace cim::device {
namespace {

class ReRamCellTest : public ::testing::Test {
 protected:
  TechnologyParams tech_ = technology_params(Technology::kReRamHfOx);
  util::Rng rng_{42};
};

TEST_F(ReRamCellTest, LevelSchemeSpacing) {
  LevelScheme sch(16, 1.0, 100.0);
  EXPECT_EQ(sch.levels(), 16);
  EXPECT_DOUBLE_EQ(sch.level_conductance_us(0), 1.0);
  EXPECT_DOUBLE_EQ(sch.level_conductance_us(15), 100.0);
  EXPECT_NEAR(sch.step_us(), 99.0 / 15.0, 1e-12);
}

TEST_F(ReRamCellTest, NearestLevelRoundsAndClamps) {
  LevelScheme sch(4, 0.0 + 1.0, 4.0);  // levels at 1, 2, 3, 4
  EXPECT_EQ(sch.nearest_level(1.1), 0);
  EXPECT_EQ(sch.nearest_level(2.4), 1);
  EXPECT_EQ(sch.nearest_level(2.6), 2);
  EXPECT_EQ(sch.nearest_level(-5.0), 0);
  EXPECT_EQ(sch.nearest_level(50.0), 3);
}

TEST_F(ReRamCellTest, LevelSchemeValidation) {
  EXPECT_THROW(LevelScheme(1, 1.0, 2.0), std::invalid_argument);
  EXPECT_THROW(LevelScheme(4, 2.0, 1.0), std::invalid_argument);
  LevelScheme ok(4, 1.0, 4.0);
  EXPECT_THROW((void)ok.level_conductance_us(4), std::out_of_range);
}

TEST_F(ReRamCellTest, UnverifiedWriteLandsNearTarget) {
  ReRamCell cell(tech_, 16, rng_);
  const double target = cell.scheme().level_conductance_us(8);
  cell.write_conductance(target, rng_);
  // Within a few write-sigma multiples of the target.
  EXPECT_NEAR(cell.true_conductance_us(), target,
              4.0 * tech_.write_sigma_log * target);
}

TEST_F(ReRamCellTest, VerifiedWriteLandsWithinGuardBand) {
  ReRamCell cell(tech_, 16, rng_);
  int success = 0;
  for (int lvl = 0; lvl < 16; ++lvl) {
    const auto res = cell.write_level(lvl, rng_, /*verify=*/true, 16);
    if (res.success) ++success;
  }
  EXPECT_GE(success, 14);  // the overwhelming majority converge
}

TEST_F(ReRamCellTest, VerifyUsesMultipleAttemptsWhenNeeded) {
  util::Rng rng(1);
  int multi = 0;
  for (int t = 0; t < 50; ++t) {
    ReRamCell cell(tech_, 16, rng);
    const auto res = cell.write_level(8, rng, true, 16);
    if (res.attempts > 1) ++multi;
  }
  EXPECT_GT(multi, 0);
}

TEST_F(ReRamCellTest, WriteCostAccumulates) {
  ReRamCell cell(tech_, 16, rng_);
  const auto res = cell.write_level(5, rng_, true, 8);
  EXPECT_GE(res.attempts, 1);
  EXPECT_GE(res.time_ns, tech_.t_write_ns);
  EXPECT_GE(res.energy_pj, tech_.e_write_pj);
}

TEST_F(ReRamCellTest, ReadNoiseHasConfiguredSpread) {
  ReRamCell cell(tech_, 16, rng_);
  cell.force_conductance(50.0);
  double sum = 0.0, sumsq = 0.0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    const double g = cell.read_conductance_us(rng_);
    sum += g;
    sumsq += g * g;
  }
  const double mean = sum / n;
  const double sd = std::sqrt(sumsq / n - mean * mean);
  EXPECT_NEAR(mean, 50.0, 0.5);
  EXPECT_NEAR(sd, tech_.read_noise_frac * 50.0, 0.15);
}

TEST_F(ReRamCellTest, StuckAtZeroIgnoresWrites) {
  ReRamCell cell(tech_, 16, rng_);
  cell.force_stuck(StuckMode::kStuckAtZero);
  cell.write_level(15, rng_, true, 8);
  EXPECT_DOUBLE_EQ(cell.true_conductance_us(), tech_.g_off_us());
  EXPECT_EQ(cell.stuck(), StuckMode::kStuckAtZero);
}

TEST_F(ReRamCellTest, StuckAtOneIgnoresWrites) {
  ReRamCell cell(tech_, 16, rng_);
  cell.force_stuck(StuckMode::kStuckAtOne);
  cell.write_level(0, rng_, true, 8);
  EXPECT_DOUBLE_EQ(cell.true_conductance_us(), tech_.g_on_us());
}

TEST_F(ReRamCellTest, TransitionUpFaultBlocksSetOnly) {
  ReRamCell cell(tech_, 16, rng_);
  cell.write_level(15, rng_, true, 8);
  cell.force_transition_faults({.up_fails = true, .down_fails = false});
  // Down transition still works.
  cell.write_level(0, rng_, true, 8);
  EXPECT_EQ(cell.scheme().nearest_level(cell.true_conductance_us()), 0);
  // Up transition is blocked.
  cell.write_level(15, rng_, true, 8);
  EXPECT_LT(cell.true_conductance_us(), 0.5 * tech_.g_on_us());
}

TEST_F(ReRamCellTest, TransitionDownFaultBlocksResetOnly) {
  ReRamCell cell(tech_, 16, rng_);
  cell.write_level(15, rng_, true, 8);
  cell.force_transition_faults({.up_fails = false, .down_fails = true});
  cell.write_level(0, rng_, true, 8);
  EXPECT_GT(cell.true_conductance_us(), 0.5 * tech_.g_on_us());
}

TEST_F(ReRamCellTest, EnduranceWearoutEventuallySticks) {
  auto tech = tech_;
  tech.endurance_mean = 50.0;
  tech.endurance_sigma_log = 0.1;
  util::Rng rng(7);
  ReRamCell cell(tech, 4, rng);
  for (int i = 0; i < 500 && cell.stuck() == StuckMode::kNone; ++i)
    cell.write_level(i % 2 ? 3 : 0, rng);
  EXPECT_NE(cell.stuck(), StuckMode::kNone);
  EXPECT_TRUE(cell.worn_out());
}

TEST_F(ReRamCellTest, WriteSigmaScaleWidensDistribution) {
  util::Rng rng(9);
  auto spread = [&](double scale) {
    double sum = 0.0, sumsq = 0.0;
    const int n = 400;
    for (int i = 0; i < n; ++i) {
      ReRamCell cell(tech_, 16, rng);
      cell.force_write_sigma_scale(scale);
      cell.write_level(8, rng);
      const double g = cell.true_conductance_us();
      sum += g;
      sumsq += g * g;
    }
    const double mean = sum / n;
    return std::sqrt(sumsq / n - mean * mean);
  };
  EXPECT_GT(spread(5.0), 2.0 * spread(1.0));
}

TEST_F(ReRamCellTest, ReadDisturbScaleMovesState) {
  auto tech = tech_;
  tech.read_disturb_prob = 1e-4;
  util::Rng rng(11);
  ReRamCell cell(tech, 16, rng);
  cell.write_level(0, rng, true, 8);
  cell.force_disturb_scales(1e4, 1.0);  // read-disturb fault
  const double g0 = cell.true_conductance_us();
  for (int i = 0; i < 200; ++i) (void)cell.read_conductance_us(rng);
  EXPECT_GT(cell.true_conductance_us(), g0);
}

}  // namespace
}  // namespace cim::device
