#include <gtest/gtest.h>

#include "crossbar/crossbar.hpp"

namespace cim::crossbar {
namespace {

// Stateful logic is exercised on a low-noise binary technology so logic
// thresholds are unambiguous.
CrossbarConfig logic_cfg() {
  CrossbarConfig cfg;
  cfg.rows = 2;
  cfg.cols = 16;
  cfg.tech = device::Technology::kSttMram;
  cfg.levels = 2;
  cfg.model_ir_drop = false;
  cfg.seed = 5;
  return cfg;
}

class ImplyTruth : public ::testing::TestWithParam<std::pair<bool, bool>> {};

TEST_P(ImplyTruth, PaperConventionDestGetsDestImpliesSrc) {
  const auto [p, q] = GetParam();
  Crossbar xbar(logic_cfg());
  xbar.write_bit(0, 0, p);
  xbar.write_bit(0, 1, q);
  xbar.imply(0, 0, 0, 1);  // NS_p = S_p -> S_q
  EXPECT_EQ(xbar.read_bit(0, 0), !p || q);
  EXPECT_EQ(xbar.read_bit(0, 1), q);  // source unchanged
}

INSTANTIATE_TEST_SUITE_P(AllInputs, ImplyTruth,
                         ::testing::Values(std::pair{false, false},
                                           std::pair{false, true},
                                           std::pair{true, false},
                                           std::pair{true, true}));

TEST(CrossbarLogic, SetFalseResets) {
  Crossbar xbar(logic_cfg());
  xbar.write_bit(0, 0, true);
  xbar.set_false(0, 0);
  EXPECT_FALSE(xbar.read_bit(0, 0));
}

class MagicNorTruth
    : public ::testing::TestWithParam<std::tuple<bool, bool, bool>> {};

TEST_P(MagicNorTruth, ThreeInputNor) {
  const auto [a, b, c] = GetParam();
  Crossbar xbar(logic_cfg());
  xbar.write_bit(0, 0, a);
  xbar.write_bit(0, 1, b);
  xbar.write_bit(0, 2, c);
  xbar.write_bit(0, 3, true);  // MAGIC precondition: output pre-SET
  const std::size_t ins[] = {0, 1, 2};
  xbar.magic_nor(0, ins, 3);
  EXPECT_EQ(xbar.read_bit(0, 3), !(a || b || c));
  // Inputs unchanged.
  EXPECT_EQ(xbar.read_bit(0, 0), a);
  EXPECT_EQ(xbar.read_bit(0, 1), b);
  EXPECT_EQ(xbar.read_bit(0, 2), c);
}

INSTANTIATE_TEST_SUITE_P(
    AllInputs, MagicNorTruth,
    ::testing::Combine(::testing::Bool(), ::testing::Bool(), ::testing::Bool()));

TEST(CrossbarLogic, MagicNotInverts) {
  Crossbar xbar(logic_cfg());
  for (const bool in : {false, true}) {
    xbar.write_bit(0, 0, in);
    xbar.write_bit(0, 1, true);
    xbar.magic_not(0, 0, 1);
    EXPECT_EQ(xbar.read_bit(0, 1), !in);
  }
}

TEST(CrossbarLogic, MagicNorRequiresInputs) {
  Crossbar xbar(logic_cfg());
  EXPECT_THROW(xbar.magic_nor(0, {}, 3), std::invalid_argument);
}

class MajorityTruth
    : public ::testing::TestWithParam<std::tuple<bool, bool, bool>> {};

TEST_P(MajorityTruth, RevampSemantics) {
  const auto [s, wl, bl] = GetParam();
  Crossbar xbar(logic_cfg());
  xbar.write_bit(0, 0, s);
  xbar.majority_write(0, 0, wl, bl);
  const int votes = int(s) + int(wl) + int(!bl);
  EXPECT_EQ(xbar.read_bit(0, 0), votes >= 2);
}

INSTANTIATE_TEST_SUITE_P(
    AllInputs, MajorityTruth,
    ::testing::Combine(::testing::Bool(), ::testing::Bool(), ::testing::Bool()));

TEST(CrossbarLogic, MajorityImplementsSetAndReset) {
  Crossbar xbar(logic_cfg());
  // SET: V_wl=1, V_bl=0 -> MAJ(S, 1, 1) = 1.
  xbar.write_bit(0, 0, false);
  xbar.majority_write(0, 0, true, false);
  EXPECT_TRUE(xbar.read_bit(0, 0));
  // RESET: V_wl=0, V_bl=1 -> MAJ(S, 0, 0) = 0.
  xbar.majority_write(0, 0, false, true);
  EXPECT_FALSE(xbar.read_bit(0, 0));
}

class ScoutTruth : public ::testing::TestWithParam<std::pair<bool, bool>> {};

TEST_P(ScoutTruth, OrAndXorReads) {
  const auto [a, b] = GetParam();
  Crossbar xbar(logic_cfg());
  xbar.write_bit(0, 0, a);
  xbar.write_bit(1, 0, b);
  EXPECT_EQ(xbar.scout_read(0, 1, 0, ScoutOp::kOr), a || b);
  EXPECT_EQ(xbar.scout_read(0, 1, 0, ScoutOp::kAnd), a && b);
  EXPECT_EQ(xbar.scout_read(0, 1, 0, ScoutOp::kXor), a != b);
}

INSTANTIATE_TEST_SUITE_P(AllInputs, ScoutTruth,
                         ::testing::Values(std::pair{false, false},
                                           std::pair{false, true},
                                           std::pair{true, false},
                                           std::pair{true, true}));

TEST(CrossbarLogic, LogicOpsCountAndCharge) {
  Crossbar xbar(logic_cfg());
  xbar.write_bit(0, 0, true);
  xbar.write_bit(0, 1, false);
  const auto before = xbar.stats().logic_ops;
  xbar.imply(0, 0, 0, 1);
  xbar.set_false(0, 1);
  xbar.majority_write(0, 0, true, false);
  EXPECT_EQ(xbar.stats().logic_ops, before + 3);
}

}  // namespace
}  // namespace cim::crossbar
