#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "crossbar/crossbar.hpp"
#include "util/stats.hpp"

namespace cim::crossbar {
namespace {

CrossbarConfig vmm_cfg(std::size_t n = 16) {
  CrossbarConfig cfg;
  cfg.rows = n;
  cfg.cols = n;
  cfg.levels = 16;
  cfg.verified_writes = true;
  cfg.seed = 7;
  return cfg;
}

util::Matrix random_levels(std::size_t n, int levels, std::uint64_t seed) {
  util::Rng rng(seed);
  util::Matrix m(n, n);
  for (auto& v : m.flat())
    v = static_cast<double>(rng.uniform_int(static_cast<std::uint64_t>(levels)));
  return m;
}

TEST(CrossbarVmm, MatchesIdealWithinTolerance) {
  Crossbar xbar(vmm_cfg());
  xbar.program_levels(random_levels(16, 16, 3));
  std::vector<double> v(16, 0.2);
  const auto ideal = xbar.ideal_vmm(v);
  const auto meas = xbar.vmm(v);
  for (std::size_t c = 0; c < 16; ++c) {
    EXPECT_NEAR(meas[c], ideal[c], 0.12 * std::abs(ideal[c]) + 2.0)
        << "col " << c;
  }
}

TEST(CrossbarVmm, ZeroInputGivesNearZeroCurrent) {
  Crossbar xbar(vmm_cfg());
  xbar.program_levels(random_levels(16, 16, 5));
  std::vector<double> v(16, 0.0);
  for (const double i : xbar.vmm(v)) EXPECT_NEAR(i, 0.0, 1e-9);
}

TEST(CrossbarVmm, CurrentScalesLinearlyWithVoltage) {
  auto cfg = vmm_cfg();
  cfg.model_ir_drop = false;
  Crossbar xbar(cfg);
  xbar.program_levels(random_levels(16, 16, 9));
  std::vector<double> v1(16, 0.1), v2(16, 0.2);
  const auto i1 = xbar.ideal_vmm(v1);
  const auto i2 = xbar.ideal_vmm(v2);
  for (std::size_t c = 0; c < 16; ++c) EXPECT_NEAR(i2[c], 2.0 * i1[c], 1e-9);
}

TEST(CrossbarVmm, SingleRowSelectsMatrixRow) {
  auto cfg = vmm_cfg(8);
  cfg.model_ir_drop = false;
  Crossbar xbar(cfg);
  util::Matrix lv(8, 8, 0.0);
  for (std::size_t c = 0; c < 8; ++c) lv(3, c) = static_cast<double>(c % 16);
  xbar.program_levels(lv);
  std::vector<double> v(8, 0.0);
  v[3] = xbar.tech().v_read;
  const auto ideal = xbar.ideal_vmm(v);
  for (std::size_t c = 0; c < 8; ++c) {
    const double expected =
        xbar.tech().v_read *
        xbar.scheme().level_conductance_us(static_cast<int>(c % 16));
    EXPECT_NEAR(ideal[c], expected, 1e-9);
  }
}

TEST(CrossbarVmm, IrDropReducesCurrents) {
  auto ideal_cfg = vmm_cfg();
  ideal_cfg.model_ir_drop = false;
  auto drop_cfg = vmm_cfg();
  drop_cfg.model_ir_drop = true;
  drop_cfg.wire_resistance_ohm = 500.0;  // exaggerated to dominate noise

  Crossbar a(ideal_cfg), b(drop_cfg);
  const auto lv = random_levels(16, 16, 11);
  a.program_levels(lv);
  b.program_levels(lv);
  std::vector<double> v(16, 0.2);
  const double sum_a = [&] {
    const auto i = a.vmm(v);
    return std::accumulate(i.begin(), i.end(), 0.0);
  }();
  const double sum_b = [&] {
    const auto i = b.vmm(v);
    return std::accumulate(i.begin(), i.end(), 0.0);
  }();
  EXPECT_LT(sum_b, sum_a);
}

TEST(CrossbarVmm, PassiveArrayAddsSneakBackground) {
  auto active = vmm_cfg();
  auto passive = vmm_cfg();
  passive.passive_array = true;
  Crossbar a(active), b(passive);
  const auto lv = random_levels(16, 16, 13);
  a.program_levels(lv);
  b.program_levels(lv);
  std::vector<double> v(16, 0.0);
  v[0] = 0.2;
  // Average many reads so read noise washes out; the sneak background is a
  // deterministic positive offset on the passive array.
  double sa = 0.0, sb = 0.0;
  for (int k = 0; k < 50; ++k) {
    const auto ia = a.vmm(v);
    const auto ib = b.vmm(v);
    sa += std::accumulate(ia.begin(), ia.end(), 0.0);
    sb += std::accumulate(ib.begin(), ib.end(), 0.0);
  }
  EXPECT_GT(sb / 50.0, sa / 50.0 + 1.0);
}

TEST(CrossbarVmm, EnergyGrowsWithActivity) {
  Crossbar xbar(vmm_cfg());
  xbar.program_levels(random_levels(16, 16, 15));
  std::vector<double> quiet(16, 0.0), busy(16, 0.2);
  quiet[0] = 0.2;
  (void)xbar.vmm(quiet);
  const double e_quiet = xbar.last_op_energy_pj();
  (void)xbar.vmm(busy);
  const double e_busy = xbar.last_op_energy_pj();
  EXPECT_GT(e_busy, 4.0 * e_quiet);
}

TEST(CrossbarVmm, WrongInputSizeThrows) {
  Crossbar xbar(vmm_cfg());
  std::vector<double> bad(8, 0.1);
  EXPECT_THROW((void)xbar.vmm(bad), std::invalid_argument);
  EXPECT_THROW((void)xbar.ideal_vmm(bad), std::invalid_argument);
}

TEST(CrossbarVmm, VmmIsO1InArrayReads) {
  // One VMM op regardless of size: the op counter increments once.
  for (const std::size_t n : {8u, 16u, 32u}) {
    Crossbar xbar(vmm_cfg(n));
    std::vector<double> v(n, 0.1);
    (void)xbar.vmm(v);
    EXPECT_EQ(xbar.stats().vmm_ops, 1u);
  }
}

TEST(CrossbarVmm, WordlineSenseSumsActiveBitlines) {
  auto cfg = vmm_cfg(8);
  cfg.model_ir_drop = false;
  Crossbar xbar(cfg);
  util::Matrix lv(8, 8, 0.0);
  lv(2, 1) = 15;
  lv(2, 5) = 15;
  xbar.program_levels(lv);

  std::vector<bool> mask(8, false);
  mask[1] = true;
  const double i_one = xbar.wordline_sense(2, mask);
  mask[5] = true;
  const double i_two = xbar.wordline_sense(2, mask);
  const double unit = xbar.tech().v_read * xbar.scheme().level_conductance_us(15);
  EXPECT_NEAR(i_one, unit, 0.15 * unit);
  EXPECT_NEAR(i_two, 2.0 * unit, 0.15 * 2.0 * unit);

  // Inactive bitlines contribute nothing beyond HRS leakage.
  std::vector<bool> off(8, false);
  EXPECT_NEAR(xbar.wordline_sense(2, off), 0.0, 1e-9);
}

TEST(CrossbarVmm, WordlineSenseValidation) {
  Crossbar xbar(vmm_cfg(8));
  std::vector<bool> wrong(4, true);
  EXPECT_THROW((void)xbar.wordline_sense(0, wrong), std::invalid_argument);
  std::vector<bool> ok(8, true);
  EXPECT_THROW((void)xbar.wordline_sense(8, ok), std::out_of_range);
}

TEST(CrossbarVmm, TechOverrideTakesEffect) {
  auto cfg = vmm_cfg(4);
  auto tech = device::technology_params(cfg.tech);
  tech.r_on_kohm = 2.0;  // different LRS conductance than the preset
  cfg.tech_override = tech;
  Crossbar xbar(cfg);
  EXPECT_DOUBLE_EQ(xbar.tech().g_on_us(), 500.0);
}

TEST(CrossbarVmm, SneakWindowedReadConsistentWithIdeal) {
  Crossbar xbar(vmm_cfg(8));
  xbar.program_levels(random_levels(8, 16, 17));
  const double ideal = xbar.ideal_current_with_sneak(4, 4, 2);
  const double meas = xbar.read_current_with_sneak(4, 4, 2);
  EXPECT_NEAR(meas, ideal, 0.25 * ideal);
  // Larger window -> more sneak loops -> strictly more current.
  const double wide = xbar.ideal_current_with_sneak(4, 4, 7);
  EXPECT_GT(wide, ideal);
}

}  // namespace
}  // namespace cim::crossbar
