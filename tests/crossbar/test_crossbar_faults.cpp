#include <gtest/gtest.h>

#include "crossbar/crossbar.hpp"
#include "fault/fault_map.hpp"

namespace cim::crossbar {
namespace {

CrossbarConfig cfg8() {
  CrossbarConfig cfg;
  cfg.rows = 8;
  cfg.cols = 8;
  cfg.seed = 21;
  return cfg;
}

TEST(CrossbarFaults, Sa0CellReadsZeroForever) {
  Crossbar xbar(cfg8());
  fault::FaultMap map(8, 8);
  map.add({fault::FaultKind::kStuckAtZero, 2, 2, 0, 0, 1.0});
  xbar.apply_faults(map);
  xbar.write_bit(2, 2, true);
  EXPECT_FALSE(xbar.read_bit(2, 2));
}

TEST(CrossbarFaults, Sa1CellReadsOneForever) {
  Crossbar xbar(cfg8());
  fault::FaultMap map(8, 8);
  map.add({fault::FaultKind::kStuckAtOne, 5, 1, 0, 0, 1.0});
  xbar.apply_faults(map);
  xbar.write_bit(5, 1, false);
  EXPECT_TRUE(xbar.read_bit(5, 1));
}

TEST(CrossbarFaults, OverFormingBehavesAsSa1) {
  Crossbar xbar(cfg8());
  fault::FaultMap map(8, 8);
  map.add({fault::FaultKind::kOverForming, 0, 0, 0, 0, 1.0});
  xbar.apply_faults(map);
  xbar.write_bit(0, 0, false);
  EXPECT_TRUE(xbar.read_bit(0, 0));
}

TEST(CrossbarFaults, DecoderFaultRedirectsAccesses) {
  Crossbar xbar(cfg8());
  fault::FaultMap map(8, 8);
  map.add({fault::FaultKind::kAddressDecoder, 1, 0, /*aux_row=*/4, 0, 1.0});
  xbar.apply_faults(map);
  // A write addressed to row 1 lands in row 4; reading row 1 also reads
  // row 4, so the cell appears consistent through the faulty decoder...
  xbar.write_bit(1, 3, true);
  EXPECT_TRUE(xbar.read_bit(1, 3));
  // ...but the physical row 4 was modified (visible via the oracle), while
  // physical row 1 was not.
  EXPECT_GT(xbar.true_conductance(4, 3), 0.5 * xbar.tech().g_on_us());
  EXPECT_LT(xbar.true_conductance(1, 3), 0.5 * xbar.tech().g_on_us());
}

TEST(CrossbarFaults, CouplingFaultSetsVictimOnAggressorUpWrite) {
  Crossbar xbar(cfg8());
  fault::FaultMap map(8, 8);
  map.add({fault::FaultKind::kCoupling, 3, 3, /*victim=*/3, 4, 1.0});
  xbar.apply_faults(map);
  xbar.write_bit(3, 4, false);  // victim at 0
  xbar.write_bit(3, 3, true);   // aggressor up-transition
  EXPECT_TRUE(xbar.read_bit(3, 4));
}

TEST(CrossbarFaults, CouplingFaultInertOnDownWrite) {
  Crossbar xbar(cfg8());
  fault::FaultMap map(8, 8);
  map.add({fault::FaultKind::kCoupling, 3, 3, 3, 4, 1.0});
  xbar.apply_faults(map);
  xbar.write_bit(3, 4, false);
  xbar.write_bit(3, 3, false);  // down write: no coupling pulse
  EXPECT_FALSE(xbar.read_bit(3, 4));
}

TEST(CrossbarFaults, SizeMismatchThrows) {
  Crossbar xbar(cfg8());
  fault::FaultMap wrong(4, 4);
  EXPECT_THROW(xbar.apply_faults(wrong), std::invalid_argument);
}

TEST(CrossbarFaults, StuckCellsDistortVmm) {
  auto cfg = cfg8();
  cfg.verified_writes = true;
  Crossbar clean(cfg), faulty(cfg);
  util::Matrix lv(8, 8, 8.0);
  clean.program_levels(lv);

  fault::FaultMap map(8, 8);
  for (std::size_t c = 0; c < 8; ++c)
    map.add({fault::FaultKind::kStuckAtOne, 0, c, 0, 0, 1.0});
  faulty.apply_faults(map);
  faulty.program_levels(lv);

  std::vector<double> v(8, 0.2);
  const auto ic = clean.vmm(v);
  const auto if_ = faulty.vmm(v);
  double sum_c = 0.0, sum_f = 0.0;
  for (std::size_t c = 0; c < 8; ++c) {
    sum_c += ic[c];
    sum_f += if_[c];
  }
  EXPECT_GT(sum_f, sum_c * 1.02);  // SA1 row pulls extra current
}

TEST(CrossbarFaults, FaultMapAccessibleAfterApply) {
  Crossbar xbar(cfg8());
  fault::FaultMap map(8, 8);
  map.add({fault::FaultKind::kStuckAtZero, 1, 1, 0, 0, 1.0});
  xbar.apply_faults(map);
  EXPECT_EQ(xbar.faults().cell_fault_count(), 1u);
}

}  // namespace
}  // namespace cim::crossbar
