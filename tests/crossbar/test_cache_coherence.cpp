/// \file test_cache_coherence.cpp
/// \brief Conductance-cache coherence suite (ctest label `cache`).
///
/// The incremental dirty-tracked cache (CrossbarConfig::incremental_cache)
/// promises bit-identical observable behaviour to the legacy whole-cache
/// rebuild. Every mutating operation is driven on two crossbars that differ
/// only in that flag; since the flag never touches the RNG stream, the two
/// arrays hold identical state, and any divergence in a subsequent VMM can
/// only come from a stale or mis-repaired cache.
///
/// Also hosts the perf smoke gate (a single write_bit between two VMMs must
/// take the O(|dirty|) delta path, not a full rebuild), the dirty-list
/// spill check, and the bulk-programming endurance accounting assertion.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "crossbar/crossbar.hpp"
#include "fault/fault_map.hpp"
#include "util/matrix.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

using cim::crossbar::Crossbar;
using cim::crossbar::CrossbarConfig;
using cim::crossbar::ScoutOp;
using cim::util::Matrix;
using cim::util::Rng;

constexpr std::size_t kN = 24;

enum class Op {
  kWriteBit,
  kApplyFaults,
  kImply,
  kMagicNor,
  kMajorityWrite,
  kSetFalse,
  kReadDisturb,
  kScoutRead,
  kProgramCell,
  kProgramBulk,
};

struct Case {
  Op op;
  bool passive;
};

std::string case_name(const testing::TestParamInfo<Case>& info) {
  static const char* names[] = {"WriteBit",      "ApplyFaults", "Imply",
                                "MagicNor",      "MajorityWrite", "SetFalse",
                                "ReadDisturb",   "ScoutRead",   "ProgramCell",
                                "ProgramBulk"};
  return std::string(names[static_cast<int>(info.param.op)]) +
         (info.param.passive ? "_Passive" : "_Active");
}

CrossbarConfig base_config(bool incremental, bool passive) {
  CrossbarConfig cfg;
  cfg.rows = cfg.cols = kN;
  cfg.levels = 8;
  cfg.seed = 77;
  cfg.incremental_cache = incremental;
  cfg.passive_array = passive;
  // Crank the disturb rates so drift-prone reads actually mutate cells and
  // the dirty-marking-on-change paths get exercised — but keep the per-VMM
  // expected disturb count (0.05 * 576 ≈ 29 cells) below the dirty-list
  // spill threshold (max(32, 576/8) = 72) so the delta path stays live.
  cim::device::TechnologyParams tech =
      cim::device::technology_params(cfg.tech);
  tech.read_disturb_prob = 0.05;
  tech.write_disturb_prob = 1e-3;
  cfg.tech_override = tech;
  return cfg;
}

/// Config for the cache-mechanics tests: disturb physics off, so every
/// dirty mark is an explicitly requested mutation and the rebuild/delta
/// counters are exactly predictable.
CrossbarConfig maintenance_config(bool incremental) {
  CrossbarConfig cfg;
  cfg.rows = cfg.cols = kN;
  cfg.levels = 8;
  cfg.seed = 77;
  cfg.incremental_cache = incremental;
  cim::device::TechnologyParams tech =
      cim::device::technology_params(cfg.tech);
  tech.read_disturb_prob = 0.0;
  tech.write_disturb_prob = 0.0;
  cfg.tech_override = tech;
  return cfg;
}

Crossbar make_programmed_cfg(const CrossbarConfig& cfg) {
  Crossbar xbar(cfg);
  Rng rng(91);
  Matrix lv(kN, kN);
  for (auto& v : lv.flat()) v = static_cast<double>(rng.uniform_int(8));
  xbar.program_levels(lv);
  return xbar;
}

Crossbar make_programmed(bool incremental, bool passive) {
  return make_programmed_cfg(base_config(incremental, passive));
}

/// Applies the parametrized mutating op to one crossbar. `rng` drives the
/// op operands only (never the crossbar's own stream), so both members of
/// a pair see the same address sequence.
void apply_op(Crossbar& xbar, Op op, Rng& rng) {
  const std::size_t r = rng.uniform_int(kN);
  const std::size_t c = rng.uniform_int(kN);
  switch (op) {
    case Op::kWriteBit:
      xbar.write_bit(r, c, rng.bernoulli(0.5));
      break;
    case Op::kApplyFaults: {
      cim::fault::FaultMap map(kN, kN);
      map.add({cim::fault::FaultKind::kStuckAtZero, r, c, 0, 0, 1.0});
      map.add({cim::fault::FaultKind::kStuckAtOne, (r + 1) % kN, c, 0, 0, 1.0});
      xbar.apply_faults(map);
      break;
    }
    case Op::kImply:
      xbar.imply(r, c, r, (c + 1) % kN);
      break;
    case Op::kMagicNor: {
      const std::size_t ins[] = {(c + 1) % kN, (c + 2) % kN};
      xbar.magic_nor(r, ins, c);
      break;
    }
    case Op::kMajorityWrite:
      xbar.majority_write(r, c, rng.bernoulli(0.5), rng.bernoulli(0.5));
      break;
    case Op::kSetFalse:
      xbar.set_false(r, c);
      break;
    case Op::kReadDisturb:
      // Drift-prone reads: with read_disturb_prob = 0.2, 16 reads disturb
      // ~3 cells per round.
      for (int k = 0; k < 8; ++k) {
        (void)xbar.read_bit(rng.uniform_int(kN), rng.uniform_int(kN));
        (void)xbar.read_conductance(rng.uniform_int(kN), rng.uniform_int(kN));
      }
      break;
    case Op::kScoutRead:
      (void)xbar.scout_read(r, (r + 1) % kN, c, ScoutOp::kOr);
      (void)xbar.scout_read(r, (r + 2) % kN, c, ScoutOp::kAnd);
      break;
    case Op::kProgramCell:
      (void)xbar.program_cell(r, c,
                              xbar.scheme().level_conductance_us(
                                  static_cast<int>(rng.uniform_int(8))));
      break;
    case Op::kProgramBulk: {
      Matrix lv(kN, kN);
      Rng lrng(rng());  // same sub-seed for both crossbars of the pair
      for (auto& v : lv.flat()) v = static_cast<double>(lrng.uniform_int(8));
      xbar.program_levels(lv);
      break;
    }
  }
}

Matrix dense_input(std::uint64_t seed) {
  Rng rng(seed);
  Matrix v(4, kN);
  for (auto& x : v.flat()) x = rng.uniform(0.0, 0.3);
  return v;
}

class CacheCoherence : public testing::TestWithParam<Case> {};

// Every mutating op, interleaved with VMMs: the incremental crossbar's
// outputs must be bitwise-equal to the full-rebuild crossbar's at every
// step — including repeated delta repairs between rebuilds.
TEST_P(CacheCoherence, VmmBitIdenticalToFullRebuild) {
  const auto [op, passive] = GetParam();
  auto incr = make_programmed(/*incremental=*/true, passive);
  auto full = make_programmed(/*incremental=*/false, passive);
  Rng op_rng_a(131), op_rng_b(131);

  std::vector<double> v(kN, 0.2);
  for (int round = 0; round < 4; ++round) {
    apply_op(incr, op, op_rng_a);
    apply_op(full, op, op_rng_b);
    const auto out_incr = incr.vmm(v);
    const auto out_full = full.vmm(v);
    ASSERT_EQ(out_incr.size(), out_full.size());
    for (std::size_t i = 0; i < out_incr.size(); ++i)
      ASSERT_EQ(out_incr[i], out_full[i])
          << "round " << round << " col " << i;
  }
  // Ops that mutate unconditionally must have exercised the delta path
  // (bulk ops legitimately rebuild; conditional ops may not fire a write).
  if (op == Op::kWriteBit || op == Op::kSetFalse || op == Op::kProgramCell) {
    EXPECT_GT(incr.stats().cache_delta_updates, 0u);
  }
}

// Same contract through the batched path (vmm_batch shares the caches).
TEST_P(CacheCoherence, VmmBatchBitIdenticalToFullRebuild) {
  const auto [op, passive] = GetParam();
  auto incr = make_programmed(/*incremental=*/true, passive);
  auto full = make_programmed(/*incremental=*/false, passive);
  Rng op_rng_a(151), op_rng_b(151);
  const auto v = dense_input(157);
  cim::util::ThreadPool pool(2);

  Matrix out_incr, out_full;
  for (int round = 0; round < 3; ++round) {
    apply_op(incr, op, op_rng_a);
    apply_op(full, op, op_rng_b);
    incr.vmm_batch(v, out_incr, &pool);
    full.vmm_batch(v, out_full, &pool);
    const auto fi = out_incr.flat();
    const auto ff = out_full.flat();
    ASSERT_EQ(fi.size(), ff.size());
    for (std::size_t i = 0; i < fi.size(); ++i)
      ASSERT_EQ(fi[i], ff[i]) << "round " << round << " flat " << i;
  }
}

// The sneak-path read current is the other consumer of g_true_cache_.
TEST_P(CacheCoherence, SneakReadBitIdenticalToFullRebuild) {
  const auto [op, passive] = GetParam();
  auto incr = make_programmed(/*incremental=*/true, passive);
  auto full = make_programmed(/*incremental=*/false, passive);
  Rng op_rng_a(173), op_rng_b(173);

  apply_op(incr, op, op_rng_a);
  apply_op(full, op, op_rng_b);
  for (std::size_t k = 0; k < 4; ++k) {
    const double a = incr.read_current_with_sneak(k, k, 4);
    const double b = full.read_current_with_sneak(k, k, 4);
    ASSERT_EQ(a, b) << "target cell (" << k << "," << k << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMutatingOps, CacheCoherence,
    testing::Values(Case{Op::kWriteBit, false}, Case{Op::kWriteBit, true},
                    Case{Op::kApplyFaults, false},
                    Case{Op::kImply, false}, Case{Op::kMagicNor, false},
                    Case{Op::kMajorityWrite, false},
                    Case{Op::kSetFalse, false}, Case{Op::kSetFalse, true},
                    Case{Op::kReadDisturb, false},
                    Case{Op::kReadDisturb, true},
                    Case{Op::kScoutRead, false},
                    Case{Op::kProgramCell, false},
                    Case{Op::kProgramCell, true},
                    Case{Op::kProgramBulk, false}),
    case_name);

// Perf smoke gate: a single write_bit between two VMMs must be served by a
// delta update, not a second full rebuild. This is the ctest-visible proof
// that the write/VMM interleave hot path stays O(|dirty|).
TEST(CacheMaintenance, SingleWriteBetweenVmmsTakesDeltaPath) {
  auto xbar = make_programmed_cfg(maintenance_config(/*incremental=*/true));
  xbar.reset_stats();
  std::vector<double> v(kN, 0.2);

  (void)xbar.vmm(v);
  EXPECT_EQ(xbar.stats().cache_full_rebuilds, 1u)
      << "first VMM after programming must rebuild once";

  xbar.write_bit(3, 5, true);
  (void)xbar.vmm(v);
  const auto& st = xbar.stats();
  EXPECT_EQ(st.cache_full_rebuilds, 1u)
      << "the write after the first VMM must NOT force a rebuild";
  EXPECT_EQ(st.cache_delta_updates, 1u);
  EXPECT_GE(st.cache_dirty_cells, 1u);
}

// Mutating more cells than the spill threshold falls back to one rebuild.
TEST(CacheMaintenance, DirtyListSpillsToFullRebuild) {
  auto xbar = make_programmed_cfg(maintenance_config(/*incremental=*/true));
  xbar.reset_stats();
  std::vector<double> v(kN, 0.2);
  (void)xbar.vmm(v);

  // 24x24 array: threshold is max(32, 576/8) = 72 dirty cells.
  for (std::size_t r = 0; r < kN; ++r)
    for (std::size_t c = 0; c < 4; ++c) xbar.set_false(r, c);
  (void)xbar.vmm(v);
  EXPECT_EQ(xbar.stats().cache_full_rebuilds, 2u);
  EXPECT_EQ(xbar.stats().cache_delta_updates, 0u);
}

// Legacy mode: every mutation forces a rebuild (the pre-incremental cost
// model the bench compares against).
TEST(CacheMaintenance, LegacyModeRebuildsEveryTime) {
  auto xbar = make_programmed_cfg(maintenance_config(/*incremental=*/false));
  xbar.reset_stats();
  std::vector<double> v(kN, 0.2);
  (void)xbar.vmm(v);
  xbar.write_bit(1, 1, true);
  (void)xbar.vmm(v);
  EXPECT_EQ(xbar.stats().cache_full_rebuilds, 2u);
  EXPECT_EQ(xbar.stats().cache_delta_updates, 0u);
}

// Bulk programming batches the cache work into one whole-array update and
// counts each cell write exactly once in the endurance accounting (the
// wear-out model depends on this: double-counting would halve predicted
// lifetime).
TEST(CacheMaintenance, BulkProgrammingCountsEachCellWriteOnce) {
  CrossbarConfig cfg;
  cfg.rows = cfg.cols = kN;
  cfg.levels = 8;
  cfg.seed = 201;
  Crossbar xbar(cfg);
  Rng rng(203);
  Matrix lv(kN, kN);
  for (auto& v : lv.flat()) v = static_cast<double>(rng.uniform_int(8));

  xbar.program_levels(lv);
  EXPECT_EQ(xbar.stats().analog_writes, kN * kN)
      << "bulk programming must account exactly one analog write per cell";

  // Programming via conductances is the other bulk entry point: a second
  // pass must add exactly rows*cols writes again (no per-cell double
  // counting from the batched cache handling).
  Matrix g(kN, kN);
  for (auto& x : g.flat())
    x = xbar.scheme().level_conductance_us(
        static_cast<int>(rng.uniform_int(8)));
  xbar.program_conductances(g);
  EXPECT_EQ(xbar.stats().analog_writes, 2 * kN * kN);

  std::vector<double> v(kN, 0.2);
  xbar.reset_stats();
  (void)xbar.vmm(v);
  EXPECT_EQ(xbar.stats().cache_full_rebuilds, 1u)
      << "bulk programming must collapse to a single cache update";
  EXPECT_EQ(xbar.stats().cache_delta_updates, 0u);
}

}  // namespace
