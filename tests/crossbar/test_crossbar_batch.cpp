/// \file test_crossbar_batch.cpp
/// \brief Batched VMM contract tests: shape validation, the bit-identical
///        determinism guarantee across pool sizes, agreement with the ideal
///        VMM, conductance-cache invalidation on array mutation, and the
///        span-overload equivalence.
#include <gtest/gtest.h>

#include <cmath>
#include <span>
#include <stdexcept>
#include <vector>

#include "crossbar/crossbar.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

using cim::crossbar::Crossbar;
using cim::crossbar::CrossbarConfig;
using cim::util::Matrix;
using cim::util::Rng;
using cim::util::ThreadPool;

Crossbar make_xbar(std::uint64_t seed, std::size_t n = 24) {
  CrossbarConfig cfg;
  cfg.rows = cfg.cols = n;
  cfg.levels = 8;
  cfg.verified_writes = false;
  cfg.seed = seed;
  Crossbar xbar(cfg);
  Rng rng(seed + 1);
  Matrix lv(n, n);
  for (auto& v : lv.flat()) v = static_cast<double>(rng.uniform_int(8));
  xbar.program_levels(lv);
  return xbar;
}

Matrix make_batch(std::size_t batch, std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Matrix v(batch, n);
  for (auto& x : v.flat()) x = rng.uniform(0.0, 0.3);
  return v;
}

TEST(CrossbarBatch, RejectsWrongInputWidth) {
  auto xbar = make_xbar(3);
  Matrix bad(4, 23);  // array is 24 wide
  Matrix out;
  EXPECT_THROW(xbar.vmm_batch(bad, out, nullptr), std::invalid_argument);

  std::vector<std::vector<double>> rows = {std::vector<double>(23, 0.1)};
  EXPECT_THROW(
      xbar.vmm_batch(std::span<const std::vector<double>>(rows), nullptr),
      std::invalid_argument);
}

TEST(CrossbarBatch, EmptyBatchProducesEmptyOutput) {
  auto xbar = make_xbar(3);
  Matrix v(0, 24);
  Matrix out;
  xbar.vmm_batch(v, out, nullptr);
  EXPECT_EQ(out.rows(), 0u);
}

// The engine's core guarantee: identical crossbars fed the same batch give
// bitwise-identical outputs for any pool size, including the serial path.
TEST(CrossbarBatch, BitIdenticalAcrossPoolSizes) {
  const auto v = make_batch(32, 24, 9);
  ThreadPool pool1(1), pool2(2), pool8(8);

  auto ref_xbar = make_xbar(5);
  Matrix ref;
  ref_xbar.vmm_batch(v, ref, &pool1);

  auto x2 = make_xbar(5);
  Matrix out2;
  x2.vmm_batch(v, out2, &pool2);

  auto x8 = make_xbar(5);
  Matrix out8;
  x8.vmm_batch(v, out8, &pool8);

  auto xs = make_xbar(5);
  Matrix outs;
  xs.vmm_batch(v, outs, nullptr);  // serial fallback path

  ASSERT_EQ(ref.rows(), 32u);
  ASSERT_EQ(ref.cols(), 24u);
  for (std::size_t i = 0; i < ref.flat().size(); ++i) {
    EXPECT_EQ(ref.flat()[i], out2.flat()[i]) << "pool=2 flat index " << i;
    EXPECT_EQ(ref.flat()[i], out8.flat()[i]) << "pool=8 flat index " << i;
    EXPECT_EQ(ref.flat()[i], outs.flat()[i]) << "serial flat index " << i;
  }
}

TEST(CrossbarBatch, TracksIdealVmm) {
  auto xbar = make_xbar(7);
  const auto v = make_batch(16, 24, 11);
  Matrix out;
  ThreadPool pool(2);
  xbar.vmm_batch(v, out, &pool);

  double rel_err_sum = 0.0;
  std::size_t n_terms = 0;
  for (std::size_t s = 0; s < v.rows(); ++s) {
    const auto row = v.row(s);
    const auto ideal =
        xbar.ideal_vmm(std::vector<double>(row.begin(), row.end()));
    for (std::size_t c = 0; c < ideal.size(); ++c) {
      if (std::abs(ideal[c]) < 1.0) continue;
      rel_err_sum += std::abs(out(s, c) - ideal[c]) / std::abs(ideal[c]);
      ++n_terms;
    }
  }
  ASSERT_GT(n_terms, 0u);
  EXPECT_LT(rel_err_sum / static_cast<double>(n_terms), 0.25);
}

TEST(CrossbarBatch, StatsMatchSequentialAccounting) {
  auto xbar = make_xbar(13);
  xbar.reset_stats();
  const auto v = make_batch(10, 24, 15);
  Matrix out;
  xbar.vmm_batch(v, out, nullptr);
  EXPECT_EQ(xbar.stats().vmm_ops, 10u);
}

// Mutating the array between batches must invalidate the cached effective
// conductances — stale caches would silently return the old matrix.
TEST(CrossbarBatch, CacheInvalidatedByProgramAndFaults) {
  auto xbar = make_xbar(17);
  const auto v = make_batch(4, 24, 19);
  Matrix before;
  xbar.vmm_batch(v, before, nullptr);

  // Reprogram a column of cells to the opposite extreme.
  const auto& sch = xbar.scheme();
  for (std::size_t r = 0; r < 24; ++r)
    xbar.program_cell(r, 0, sch.level_conductance_us(7));
  Matrix after_prog;
  xbar.vmm_batch(v, after_prog, nullptr);
  double delta = 0.0;
  for (std::size_t s = 0; s < 4; ++s)
    delta += std::abs(after_prog(s, 0) - before(s, 0));
  EXPECT_GT(delta, 1e-9) << "reprogramming did not reach the batch path";

  // Fault injection must equally invalidate the cache.
  cim::fault::FaultMap map(24, 24);
  for (std::size_t r = 0; r < 24; ++r)
    map.add({cim::fault::FaultKind::kStuckAtZero, r, 1, 0, 0, 1.0});
  xbar.apply_faults(map);
  Matrix after_fault;
  xbar.vmm_batch(v, after_fault, nullptr);
  double fdelta = 0.0;
  for (std::size_t s = 0; s < 4; ++s)
    fdelta += std::abs(after_fault(s, 1) - after_prog(s, 1));
  EXPECT_GT(fdelta, 1e-9) << "fault injection did not reach the batch path";
}

TEST(CrossbarBatch, SpanOverloadMatchesMatrixOverload) {
  const auto v = make_batch(8, 24, 21);
  auto xm = make_xbar(23);
  Matrix out;
  xm.vmm_batch(v, out, nullptr);

  auto xs = make_xbar(23);
  std::vector<std::vector<double>> rows(8);
  for (std::size_t s = 0; s < 8; ++s) {
    const auto r = v.row(s);
    rows[s].assign(r.begin(), r.end());
  }
  const auto res =
      xs.vmm_batch(std::span<const std::vector<double>>(rows), nullptr);
  ASSERT_EQ(res.size(), 8u);
  for (std::size_t s = 0; s < 8; ++s)
    for (std::size_t c = 0; c < 24; ++c)
      EXPECT_EQ(res[s][c], out(s, c)) << "sample " << s << " col " << c;
}

}  // namespace
