#include <gtest/gtest.h>

#include "crossbar/crossbar.hpp"

namespace cim::crossbar {
namespace {

CrossbarConfig small_cfg() {
  CrossbarConfig cfg;
  cfg.rows = 8;
  cfg.cols = 8;
  cfg.levels = 16;
  cfg.seed = 99;
  return cfg;
}

TEST(CrossbarBasic, ConstructionAndGeometry) {
  Crossbar xbar(small_cfg());
  EXPECT_EQ(xbar.rows(), 8u);
  EXPECT_EQ(xbar.cols(), 8u);
  EXPECT_EQ(xbar.scheme().levels(), 16);
}

TEST(CrossbarBasic, EmptyConfigThrows) {
  CrossbarConfig cfg;
  cfg.rows = 0;
  EXPECT_THROW(Crossbar{cfg}, std::invalid_argument);
}

TEST(CrossbarBasic, BitRoundTrip) {
  Crossbar xbar(small_cfg());
  for (std::size_t r = 0; r < 8; ++r) {
    for (std::size_t c = 0; c < 8; ++c) {
      const bool v = (r + c) % 2 == 0;
      xbar.write_bit(r, c, v);
      EXPECT_EQ(xbar.read_bit(r, c), v) << "(" << r << "," << c << ")";
    }
  }
}

TEST(CrossbarBasic, BitOpsOutOfRangeThrow) {
  Crossbar xbar(small_cfg());
  EXPECT_THROW(xbar.write_bit(8, 0, true), std::out_of_range);
  EXPECT_THROW((void)xbar.read_bit(0, 8), std::out_of_range);
}

TEST(CrossbarBasic, ProgramCellHitsTarget) {
  auto cfg = small_cfg();
  cfg.verified_writes = true;
  Crossbar xbar(cfg);
  const double target = xbar.scheme().level_conductance_us(10);
  xbar.program_cell(3, 4, target);
  EXPECT_NEAR(xbar.true_conductance(3, 4), target,
              xbar.scheme().guard_band_us());
}

TEST(CrossbarBasic, ProgramLevelsShapeMismatchThrows) {
  Crossbar xbar(small_cfg());
  util::Matrix wrong(4, 4);
  EXPECT_THROW(xbar.program_levels(wrong), std::invalid_argument);
}

TEST(CrossbarBasic, StatsAccumulate) {
  Crossbar xbar(small_cfg());
  xbar.write_bit(0, 0, true);
  (void)xbar.read_bit(0, 0);
  EXPECT_EQ(xbar.stats().bit_writes, 1u);
  EXPECT_EQ(xbar.stats().bit_reads, 1u);
  EXPECT_GT(xbar.stats().time_ns, 0.0);
  EXPECT_GT(xbar.stats().energy_pj, 0.0);
  xbar.reset_stats();
  EXPECT_EQ(xbar.stats().bit_writes, 0u);
}

TEST(CrossbarBasic, DeterministicAcrossSameSeed) {
  Crossbar a(small_cfg());
  Crossbar b(small_cfg());
  for (std::size_t r = 0; r < 8; ++r)
    for (std::size_t c = 0; c < 8; ++c) {
      a.write_bit(r, c, true);
      b.write_bit(r, c, true);
      EXPECT_DOUBLE_EQ(a.true_conductance(r, c), b.true_conductance(r, c));
    }
}

TEST(CrossbarBasic, LastOpEnergyTracksMostRecentOp) {
  Crossbar xbar(small_cfg());
  xbar.write_bit(0, 0, true);
  const double e_write = xbar.last_op_energy_pj();
  (void)xbar.read_bit(0, 0);
  const double e_read = xbar.last_op_energy_pj();
  EXPECT_GT(e_write, e_read);  // writes cost more than reads
}

}  // namespace
}  // namespace cim::crossbar
