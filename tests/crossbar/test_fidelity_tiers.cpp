/// \file test_fidelity_tiers.cpp
/// \brief Fidelity-dial conformance gate (ISSUE 7): tier 1 (calibrated fast
///        path) and tier 2 (pure ideal) VMM validated against the tier-0
///        full analog model.
///
/// Error budget (documented in DESIGN.md "SIMD dispatch and fidelity
/// tiers"): with default technology noise, tier 1's per-column expected
/// current matches tier 0 bitwise before noise, its noise std matches the
/// tier-0 column std within 10% for uniform-|v| inputs (exact calibration
/// point — the tile layer's bit-sliced DACs) and within 25% per column for
/// arbitrary inputs; tier 2 is bit-identical to the ideal_vmm() oracle.
/// Every tier is deterministic and thread-count independent.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "crossbar/crossbar.hpp"
#include "device/technology.hpp"
#include "util/matrix.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

using cim::crossbar::Crossbar;
using cim::crossbar::CrossbarConfig;
using cim::crossbar::FidelityTier;
using cim::util::Matrix;
using cim::util::Rng;
using cim::util::ThreadPool;

CrossbarConfig base_cfg(std::uint64_t seed, std::size_t rows,
                        std::size_t cols) {
  CrossbarConfig cfg;
  cfg.rows = rows;
  cfg.cols = cols;
  cfg.levels = 16;
  cfg.seed = seed;
  return cfg;
}

/// Disables the stochastic read effects so tier 0's output is exactly its
/// pre-noise accumulation (the quantity tier 1 must reproduce bitwise).
void zero_read_noise(CrossbarConfig& cfg) {
  auto p = cim::device::technology_params(cfg.tech);
  p.read_noise_frac = 0.0;
  p.read_disturb_prob = 0.0;
  cfg.tech_override = p;
}

/// Keeps read noise but pins disturb off so the array state stays frozen
/// across repeated statistical draws.
void freeze_array(CrossbarConfig& cfg) {
  auto p = cim::device::technology_params(cfg.tech);
  p.read_disturb_prob = 0.0;
  cfg.tech_override = p;
}

Crossbar make_programmed(CrossbarConfig cfg) {
  Crossbar xbar(cfg);
  Rng rng(cfg.seed + 17);
  Matrix lv(cfg.rows, cfg.cols);
  for (auto& v : lv.flat())
    v = static_cast<double>(rng.uniform_int(static_cast<std::size_t>(cfg.levels)));
  xbar.program_levels(lv);
  return xbar;
}

std::vector<double> uniform_input(std::size_t n, double v) {
  return std::vector<double>(n, v);
}

std::vector<double> random_input(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.uniform(0.0, 0.3);
  return v;
}

}  // namespace

TEST(FidelityTiers, IdealTierMatchesOracleBitwise) {
  auto xbar = make_programmed(base_cfg(7, 48, 40));
  for (std::uint64_t s = 0; s < 4; ++s) {
    const auto v = random_input(48, 100 + s);
    const auto oracle = xbar.ideal_vmm(v);
    const auto got = xbar.vmm(v, FidelityTier::kIdeal);
    ASSERT_EQ(got.size(), oracle.size());
    for (std::size_t c = 0; c < got.size(); ++c)
      ASSERT_EQ(got[c], oracle[c]) << "col " << c;
  }
}

TEST(FidelityTiers, IdealTierDoesNotAdvanceRngOrState) {
  // A tier-2 read is side-effect-free on the stochastic state: interleaving
  // it must not change the subsequent tier-0 sequence.
  const auto cfg = base_cfg(11, 32, 32);
  auto a = make_programmed(cfg);
  auto b = make_programmed(cfg);
  const auto v = random_input(32, 5);

  const auto a0 = a.vmm(v, FidelityTier::kFull);

  (void)b.vmm(v, FidelityTier::kIdeal);
  (void)b.vmm(v, FidelityTier::kIdeal);
  const auto b0 = b.vmm(v, FidelityTier::kFull);

  for (std::size_t c = 0; c < a0.size(); ++c) ASSERT_EQ(a0[c], b0[c]);
}

TEST(FidelityTiers, CalibratedPreNoiseBitIdenticalToFull) {
  // With read noise and disturb pinned to zero, tier 0 degenerates to its
  // pre-noise accumulation — which tier 1 must reproduce bit-for-bit (same
  // per-row mul-then-add order through the dispatched kernels).
  auto cfg = base_cfg(13, 64, 48);
  zero_read_noise(cfg);
  auto xbar = make_programmed(cfg);
  for (std::uint64_t s = 0; s < 4; ++s) {
    const auto v = s == 0 ? uniform_input(64, 0.2) : random_input(64, 50 + s);
    const auto full = xbar.vmm(v, FidelityTier::kFull);
    const auto fast = xbar.vmm(v, FidelityTier::kCalibrated);
    for (std::size_t c = 0; c < full.size(); ++c)
      ASSERT_EQ(fast[c], full[c]) << "col " << c;
  }
}

TEST(FidelityTiers, CalibratedTierIsDeterministic) {
  const auto cfg = [] {
    auto c = base_cfg(19, 40, 40);
    freeze_array(c);
    return c;
  }();
  auto a = make_programmed(cfg);
  auto b = make_programmed(cfg);
  const auto v = random_input(40, 9);
  for (int rep = 0; rep < 3; ++rep) {
    const auto ya = a.vmm(v, FidelityTier::kCalibrated);
    const auto yb = b.vmm(v, FidelityTier::kCalibrated);
    for (std::size_t c = 0; c < ya.size(); ++c) ASSERT_EQ(ya[c], yb[c]);
  }
}

TEST(FidelityTiers, CalibratedNoiseStdWithinBudget) {
  // Sample statistics of tier 1 vs tier 0 on a frozen array. The mean must
  // agree (both are unbiased around the pre-noise currents) and the
  // per-column noise std must match within the documented budget: 10% at
  // the uniform-|v| calibration point, 25% per column for arbitrary inputs
  // (mean-field approximation; sampling error at kReps is ~1.6%).
  auto cfg = base_cfg(23, 64, 24);
  freeze_array(cfg);
  auto xbar = make_programmed(cfg);

  auto noiseless_cfg = cfg;
  zero_read_noise(noiseless_cfg);
  auto oracle = make_programmed(noiseless_cfg);

  constexpr int kReps = 2000;
  const struct {
    std::vector<double> v;
    double std_budget;
  } cases[] = {{uniform_input(64, 0.2), 0.10},
               {random_input(64, 77), 0.25}};

  for (const auto& tc : cases) {
    const auto base = oracle.vmm(tc.v, FidelityTier::kCalibrated);
    const std::size_t cols = base.size();
    std::vector<double> m0(cols, 0.0), s0(cols, 0.0);
    std::vector<double> m1(cols, 0.0), s1(cols, 0.0);
    for (int rep = 0; rep < kReps; ++rep) {
      const auto y0 = xbar.vmm(tc.v, FidelityTier::kFull);
      const auto y1 = xbar.vmm(tc.v, FidelityTier::kCalibrated);
      for (std::size_t c = 0; c < cols; ++c) {
        const double d0 = y0[c] - base[c];
        const double d1 = y1[c] - base[c];
        m0[c] += d0;
        s0[c] += d0 * d0;
        m1[c] += d1;
        s1[c] += d1 * d1;
      }
    }
    for (std::size_t c = 0; c < cols; ++c) {
      const double mean0 = m0[c] / kReps;
      const double mean1 = m1[c] / kReps;
      const double std0 = std::sqrt(s0[c] / kReps - mean0 * mean0);
      const double std1 = std::sqrt(s1[c] / kReps - mean1 * mean1);
      ASSERT_GT(std0, 0.0);
      // Unbiasedness: the mean deviation is small vs the noise scale.
      EXPECT_LT(std::abs(mean0), 0.1 * std0) << "col " << c;
      EXPECT_LT(std::abs(mean1), 0.1 * std0) << "col " << c;
      EXPECT_NEAR(std1 / std0, 1.0, tc.std_budget) << "col " << c;
    }
  }
}

TEST(FidelityTiers, CalibratedBatchBitIdenticalAcrossPoolSizes) {
  const auto cfg = [] {
    auto c = base_cfg(29, 48, 32);
    freeze_array(c);
    return c;
  }();
  const auto batch = [] {
    Rng rng(31);
    Matrix v(6, 48);
    for (auto& x : v.flat()) x = rng.uniform(0.0, 0.3);
    return v;
  }();

  auto serial = make_programmed(cfg);
  ThreadPool pool1(1);
  Matrix out1;
  serial.vmm_batch(batch, out1, &pool1, FidelityTier::kCalibrated);

  auto parallel = make_programmed(cfg);
  ThreadPool pool4(4);
  Matrix out4;
  parallel.vmm_batch(batch, out4, &pool4, FidelityTier::kCalibrated);

  ASSERT_EQ(out1.rows(), out4.rows());
  ASSERT_EQ(out1.cols(), out4.cols());
  for (std::size_t i = 0; i < out1.flat().size(); ++i)
    ASSERT_EQ(out1.flat()[i], out4.flat()[i]);
}

TEST(FidelityTiers, IdealBatchMatchesSerialLoop) {
  const auto cfg = base_cfg(37, 40, 28);
  auto xbar = make_programmed(cfg);
  const auto batch = [] {
    Rng rng(41);
    Matrix v(5, 40);
    for (auto& x : v.flat()) x = rng.uniform(0.0, 0.3);
    return v;
  }();

  ThreadPool pool(3);
  Matrix out;
  xbar.vmm_batch(batch, out, &pool, FidelityTier::kIdeal);
  ASSERT_EQ(out.rows(), batch.rows());
  for (std::size_t b = 0; b < batch.rows(); ++b) {
    std::vector<double> v(batch.cols());
    for (std::size_t r = 0; r < batch.cols(); ++r) v[r] = batch(b, r);
    const auto serial = xbar.vmm(v, FidelityTier::kIdeal);
    for (std::size_t c = 0; c < serial.size(); ++c)
      ASSERT_EQ(out(b, c), serial[c]) << "sample " << b << " col " << c;
  }
}

TEST(FidelityTiers, PassiveArrayKeepsSneakBackgroundInCalibratedTier) {
  // The sneak-path background is a deterministic shift, so the fast tier
  // must keep it: compare tier 1 on a passive vs an otherwise identical
  // active array (noise off isolates the background term).
  auto cfg = base_cfg(43, 32, 32);
  zero_read_noise(cfg);
  auto active = make_programmed(cfg);
  cfg.passive_array = true;
  auto passive = make_programmed(cfg);

  const auto v = uniform_input(32, 0.2);
  const auto ya = active.vmm(v, FidelityTier::kCalibrated);
  const auto yp = passive.vmm(v, FidelityTier::kCalibrated);
  const auto yp_full = passive.vmm(v, FidelityTier::kFull);
  for (std::size_t c = 0; c < ya.size(); ++c) {
    EXPECT_GT(yp[c], ya[c]) << "col " << c;  // background adds current
    ASSERT_EQ(yp[c], yp_full[c]) << "col " << c;  // and matches tier 0
  }
}

TEST(FidelityTiers, StatsAndEnergyAccounting) {
  // Every tier accounts one vmm op and a positive energy; tier 1/2 energy
  // agrees with tier 0's (closed form vs per-cell sum) to reassociation
  // ulps on a noise-free array.
  auto cfg = base_cfg(47, 32, 32);
  zero_read_noise(cfg);
  auto xbar = make_programmed(cfg);
  const auto v = random_input(32, 3);

  const auto& st = xbar.stats();
  const auto ops0 = st.vmm_ops;

  const double e0_before = st.energy_pj;
  (void)xbar.vmm(v, FidelityTier::kFull);
  const double e_full = st.energy_pj - e0_before;

  const double e1_before = st.energy_pj;
  (void)xbar.vmm(v, FidelityTier::kCalibrated);
  const double e_fast = st.energy_pj - e1_before;

  const double e2_before = st.energy_pj;
  (void)xbar.vmm(v, FidelityTier::kIdeal);
  const double e_ideal = st.energy_pj - e2_before;

  EXPECT_EQ(st.vmm_ops, ops0 + 3);
  EXPECT_GT(e_full, 0.0);
  EXPECT_NEAR(e_fast, e_full, 1e-9 * e_full);
  // Ideal energy uses target (not variation-perturbed) conductances: same
  // magnitude, not identical.
  EXPECT_NEAR(e_ideal, e_full, 0.2 * e_full);
}
