/// Parameterized smoke invariants across every memory technology preset:
/// the "CIM core functional units are independent of the adopted memory
/// technology" claim of Section II.B, as a test.
#include <gtest/gtest.h>

#include <string>

#include "crossbar/crossbar.hpp"

namespace cim::crossbar {
namespace {

class CrossbarPerTechnology
    : public ::testing::TestWithParam<device::Technology> {
 protected:
  CrossbarConfig cfg() const {
    CrossbarConfig c;
    c.rows = c.cols = 8;
    c.tech = GetParam();
    c.levels = 16;  // clamped per technology
    c.model_ir_drop = false;
    c.verified_writes = true;
    c.seed = 99;
    return c;
  }
};

TEST_P(CrossbarPerTechnology, BitRoundTrip) {
  Crossbar xbar(cfg());
  for (std::size_t r = 0; r < 8; ++r)
    for (std::size_t c = 0; c < 8; ++c) {
      const bool v = (r * 8 + c) % 3 == 0;
      xbar.write_bit(r, c, v);
      EXPECT_EQ(xbar.read_bit(r, c), v) << "(" << r << "," << c << ")";
    }
}

TEST_P(CrossbarPerTechnology, VmmTracksIdeal) {
  Crossbar xbar(cfg());
  const int levels = xbar.scheme().levels();
  util::Matrix lv(8, 8);
  util::Rng rng(3);
  for (auto& v : lv.flat())
    v = static_cast<double>(rng.uniform_int(static_cast<std::uint64_t>(levels)));
  xbar.program_levels(lv);
  std::vector<double> volts(8, xbar.tech().v_read);
  // Average reads to squeeze out read noise.
  std::vector<double> mean(8, 0.0);
  const int reps = 16;
  for (int k = 0; k < reps; ++k) {
    const auto i = xbar.vmm(volts);
    for (std::size_t c = 0; c < 8; ++c) mean[c] += i[c] / reps;
  }
  const auto ideal = xbar.ideal_vmm(volts);
  for (std::size_t c = 0; c < 8; ++c)
    EXPECT_NEAR(mean[c], ideal[c], 0.15 * std::abs(ideal[c]) + 1e-6) << c;
}

TEST_P(CrossbarPerTechnology, StatefulLogicWorks) {
  Crossbar xbar(cfg());
  xbar.write_bit(0, 0, true);
  xbar.write_bit(0, 1, false);
  // IMPLY: 1 -> 0 = 0.
  xbar.imply(0, 0, 0, 1);
  EXPECT_FALSE(xbar.read_bit(0, 0));
  // MAGIC NOT of 0 = 1 (output pre-SET).
  xbar.write_bit(0, 2, true);
  xbar.magic_not(0, 1, 2);
  EXPECT_TRUE(xbar.read_bit(0, 2));
  // Majority SET/RESET.
  xbar.majority_write(0, 3, true, false);
  EXPECT_TRUE(xbar.read_bit(0, 3));
}

TEST_P(CrossbarPerTechnology, StuckFaultsBehaveUniformly) {
  Crossbar xbar(cfg());
  fault::FaultMap map(8, 8);
  map.add({fault::FaultKind::kStuckAtZero, 1, 1, 0, 0, 1.0});
  map.add({fault::FaultKind::kStuckAtOne, 2, 2, 0, 0, 1.0});
  xbar.apply_faults(map);
  xbar.write_bit(1, 1, true);
  xbar.write_bit(2, 2, false);
  EXPECT_FALSE(xbar.read_bit(1, 1));
  EXPECT_TRUE(xbar.read_bit(2, 2));
}

INSTANTIATE_TEST_SUITE_P(AllTechnologies, CrossbarPerTechnology,
                         ::testing::ValuesIn(device::all_technologies()),
                         [](const auto& info) {
                           std::string name(
                               device::technology_name(info.param));
                           for (char& c : name)
                             if (c == '-') c = '_';
                           return name;
                         });

}  // namespace
}  // namespace cim::crossbar
