#include "arch/arch_class.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string_view>

namespace cim::arch {
namespace {

TEST(ArchClass, ClassificationDecisionProcedure) {
  // Fig. 2: where the result is produced decides the class.
  EXPECT_EQ(classify({"x", true, false, false}), ArchClass::kCimArray);
  EXPECT_EQ(classify({"x", false, true, false}), ArchClass::kCimPeriphery);
  EXPECT_EQ(classify({"x", false, false, true}), ArchClass::kComNear);
  EXPECT_EQ(classify({"x", false, false, false}), ArchClass::kComFar);
}

TEST(ArchClass, ArrayWinsOverPeriphery) {
  // If the result forms in the array, peripheral helpers don't demote it.
  EXPECT_EQ(classify({"x", true, true, true}), ArchClass::kCimArray);
}

TEST(ArchClass, ExampleSystemsClassifyAsInPaper) {
  for (const auto& sys : example_systems()) {
    const auto cls = classify(sys);
    if (sys.name.find("ReVAMP") != std::string_view::npos ||
        sys.name.find("MAGIC") != std::string_view::npos ||
        sys.name.find("IMPLY") != std::string_view::npos) {
      EXPECT_EQ(cls, ArchClass::kCimArray) << sys.name;
    }
    if (sys.name.find("ISAAC") != std::string_view::npos ||
        sys.name.find("Pinatubo") != std::string_view::npos ||
        sys.name.find("Scouting") != std::string_view::npos) {
      EXPECT_EQ(cls, ArchClass::kCimPeriphery) << sys.name;
    }
    if (sys.name.find("DIVA") != std::string_view::npos ||
        sys.name.find("HBM") != std::string_view::npos) {
      EXPECT_EQ(cls, ArchClass::kComNear) << sys.name;
    }
    if (sys.name == "CPU" || sys.name == "GPU" || sys.name == "TPU") {
      EXPECT_EQ(cls, ArchClass::kComFar) << sys.name;
    }
  }
}

TEST(ArchClass, TableOneDataMovementColumn) {
  // Table I: CIM classes do not move data outside the memory core.
  EXPECT_FALSE(class_traits(ArchClass::kCimArray).moves_data_outside_core);
  EXPECT_FALSE(class_traits(ArchClass::kCimPeriphery).moves_data_outside_core);
  EXPECT_TRUE(class_traits(ArchClass::kComNear).moves_data_outside_core);
  EXPECT_TRUE(class_traits(ArchClass::kComFar).moves_data_outside_core);
}

TEST(ArchClass, TableOneAlignmentColumn) {
  EXPECT_TRUE(class_traits(ArchClass::kCimArray).requires_data_alignment);
  EXPECT_TRUE(class_traits(ArchClass::kCimPeriphery).requires_data_alignment);
  EXPECT_FALSE(class_traits(ArchClass::kComNear).requires_data_alignment);
  EXPECT_FALSE(class_traits(ArchClass::kComFar).requires_data_alignment);
}

TEST(ArchClass, TableOneBandwidthOrdering) {
  // Max (CIM-A) > High-Max (CIM-P) > High (COM-N) > Low (COM-F).
  EXPECT_EQ(class_traits(ArchClass::kCimArray).available_bandwidth, Level::kMax);
  EXPECT_EQ(class_traits(ArchClass::kCimPeriphery).available_bandwidth,
            Level::kHighMax);
  EXPECT_EQ(class_traits(ArchClass::kComNear).available_bandwidth, Level::kHigh);
  EXPECT_EQ(class_traits(ArchClass::kComFar).available_bandwidth, Level::kLow);
}

TEST(ArchClass, TableOneScalability) {
  EXPECT_EQ(class_traits(ArchClass::kCimArray).scalability, Level::kLow);
  EXPECT_EQ(class_traits(ArchClass::kComFar).scalability, Level::kHigh);
}

TEST(ArchClass, TableOneComplexFunctionCosts) {
  EXPECT_EQ(class_traits(ArchClass::kCimArray).complex_function_cost,
            "High latency");
  EXPECT_EQ(class_traits(ArchClass::kCimPeriphery).complex_function_cost,
            "High cost");
  EXPECT_EQ(class_traits(ArchClass::kComFar).complex_function_cost, "Low cost");
}

TEST(ArchClass, NamesDistinct) {
  std::set<std::string_view> names;
  for (const auto c : all_arch_classes()) names.insert(arch_class_name(c));
  EXPECT_EQ(names.size(), 4u);
}

}  // namespace
}  // namespace cim::arch
