#include "arch/machine_model.hpp"

#include <gtest/gtest.h>

namespace cim::arch {
namespace {

Workload vmm_1mb() {
  Workload w;
  w.kind = WorkloadKind::kVmm;
  w.input_bytes = 1 << 20;
  w.ops = 1 << 20;
  w.output_bytes = 1 << 10;
  return w;
}

TEST(MachineModel, CimClassesMoveLessData) {
  const auto w = vmm_1mb();
  const auto cim_a = execute(ArchClass::kCimArray, w);
  const auto cim_p = execute(ArchClass::kCimPeriphery, w);
  const auto com_n = execute(ArchClass::kComNear, w);
  const auto com_f = execute(ArchClass::kComFar, w);
  EXPECT_LT(cim_a.bytes_moved, 0.01 * com_f.bytes_moved);
  EXPECT_LT(cim_p.bytes_moved, 0.1 * com_f.bytes_moved);
  EXPECT_DOUBLE_EQ(com_n.bytes_moved, com_f.bytes_moved);
}

TEST(MachineModel, MovementEnergyDominatesComF) {
  // Fig. 1's bottleneck: on a conventional machine most energy is movement.
  const auto r = execute(ArchClass::kComFar, vmm_1mb());
  EXPECT_GT(r.movement_energy_fraction, 0.8);
}

TEST(MachineModel, CimEnergyMostlyCompute) {
  const auto r = execute(ArchClass::kCimPeriphery, vmm_1mb());
  EXPECT_LT(r.movement_energy_fraction, 0.2);
}

TEST(MachineModel, EffectiveBandwidthOrdering) {
  // Table I bandwidth column, derived quantitatively.
  const auto w = vmm_1mb();
  const auto bw = [&](ArchClass c) {
    return execute(c, w).effective_bandwidth_gbps;
  };
  EXPECT_GT(bw(ArchClass::kCimArray), bw(ArchClass::kComNear));
  EXPECT_GT(bw(ArchClass::kCimPeriphery), bw(ArchClass::kComNear));
  EXPECT_GT(bw(ArchClass::kComNear), bw(ArchClass::kComFar));
}

TEST(MachineModel, ComplexFunctionsPenalizeCim) {
  Workload w = vmm_1mb();
  w.kind = WorkloadKind::kComplexFunction;
  const auto vmm = execute(ArchClass::kCimArray, vmm_1mb());
  const auto complex = execute(ArchClass::kCimArray, w);
  EXPECT_GT(complex.compute_time_ns, 10.0 * vmm.compute_time_ns);
  // COM-F executes complex functions natively at no extra per-op cost.
  const auto f_vmm = execute(ArchClass::kComFar, vmm_1mb());
  const auto f_cx = execute(ArchClass::kComFar, w);
  EXPECT_DOUBLE_EQ(f_cx.compute_time_ns, f_vmm.compute_time_ns);
}

TEST(MachineModel, ComFarIsMemoryBound) {
  const auto r = execute(ArchClass::kComFar, vmm_1mb());
  EXPECT_GT(r.movement_time_ns, r.compute_time_ns);
  EXPECT_DOUBLE_EQ(r.time_ns, r.movement_time_ns);
}

TEST(MachineModel, EnergyIsSumOfParts) {
  for (const auto cls : all_arch_classes()) {
    const auto r = execute(cls, vmm_1mb());
    EXPECT_NEAR(r.energy_pj, r.movement_energy_pj + r.compute_energy_pj, 1e-6)
        << arch_class_name(cls);
  }
}

TEST(MachineModel, BulkBitwiseFavoursCimP) {
  Workload w;
  w.kind = WorkloadKind::kBulkBitwise;
  w.input_bytes = 1 << 22;  // streaming scans are movement-dominated
  w.ops = 1 << 22;
  w.output_bytes = 1 << 10;
  const auto cim_p = execute(ArchClass::kCimPeriphery, w);
  const auto com_f = execute(ArchClass::kComFar, w);
  EXPECT_LT(cim_p.energy_pj, com_f.energy_pj);
  EXPECT_LT(cim_p.time_ns, com_f.time_ns);
}

TEST(MachineModel, CustomParametersRespected) {
  auto p = default_params(ArchClass::kComFar);
  p.boundary_bw_gbps *= 4.0;  // a faster channel shortens movement time
  Workload w = vmm_1mb();
  const auto fast = execute(p, w);
  const auto stock = execute(ArchClass::kComFar, w);
  EXPECT_LT(fast.movement_time_ns, stock.movement_time_ns);
}

TEST(MachineModel, EmptyWorkloadThrows) {
  Workload w;
  w.ops = 0;
  EXPECT_THROW((void)execute(ArchClass::kComFar, w), std::invalid_argument);
}

TEST(MachineModel, WorkloadKindNames) {
  EXPECT_EQ(workload_kind_name(WorkloadKind::kVmm), "VMM");
  EXPECT_EQ(workload_kind_name(WorkloadKind::kBulkBitwise), "bulk-bitwise");
}

}  // namespace
}  // namespace cim::arch
