#include "arch/vonneumann.hpp"

#include <gtest/gtest.h>

namespace cim::arch {
namespace {

TEST(VonNeumann, MovementEnergyDominatesAcrossSizes) {
  // Fig. 1's bottleneck: a streaming VMM has no weight reuse, so movement
  // dominates the energy at every size.
  VonNeumannParams p;
  for (const std::size_t n : {32u, 128u, 512u, 1024u}) {
    const auto r = run_vmm(p, n, n);
    EXPECT_GT(r.movement_energy_fraction, 0.8) << "n=" << n;
  }
}

TEST(VonNeumann, LargeVmmIsMemoryBound) {
  VonNeumannParams p;
  const auto r = run_vmm(p, 512, 512);
  EXPECT_DOUBLE_EQ(r.time_ns, r.memory_time_ns);
  EXPECT_GT(r.memory_time_ns, r.compute_time_ns);
}

TEST(VonNeumann, DramBytesAtLeastWeightTraffic) {
  VonNeumannParams p;
  const auto r = run_vmm(p, 128, 128, 1);
  EXPECT_GE(r.dram_bytes, 128.0 * 128.0);
}

TEST(VonNeumann, CacheOverflowAddsVectorRestreaming) {
  VonNeumannParams p;
  p.cache_bytes = 64.0;  // tiny cache: the input vector no longer fits
  const auto small_cache = run_vmm(p, 256, 256);
  VonNeumannParams big;
  big.cache_bytes = 1 << 20;
  const auto big_cache = run_vmm(big, 256, 256);
  EXPECT_GT(small_cache.dram_bytes, big_cache.dram_bytes);
}

TEST(VonNeumann, ComputeEnergyScalesWithMacs) {
  VonNeumannParams p;
  const auto a = run_vmm(p, 64, 64);
  const auto b = run_vmm(p, 128, 128);
  EXPECT_NEAR(b.compute_energy_pj / a.compute_energy_pj, 4.0, 0.01);
}

TEST(VonNeumann, FasterBusShiftsBottleneck) {
  VonNeumannParams slow;
  slow.mem_bw_bytes_per_ns = 1.0;
  VonNeumannParams fast;
  fast.mem_bw_bytes_per_ns = 10000.0;
  const auto r_slow = run_vmm(slow, 256, 256);
  const auto r_fast = run_vmm(fast, 256, 256);
  EXPECT_GT(r_slow.movement_time_fraction, 0.99);
  EXPECT_LT(r_fast.memory_time_ns, r_fast.compute_time_ns);
}

TEST(VonNeumann, EmptyProblemThrows) {
  VonNeumannParams p;
  EXPECT_THROW((void)run_vmm(p, 0, 8), std::invalid_argument);
  EXPECT_THROW((void)run_vmm(p, 8, 0), std::invalid_argument);
  EXPECT_THROW((void)run_vmm(p, 8, 8, 0), std::invalid_argument);
}

}  // namespace
}  // namespace cim::arch
