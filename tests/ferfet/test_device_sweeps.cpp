/// Parameter sweeps over the FeRFET compact model: the memory window and
/// boost requirements must follow the ferroelectric Vt shift.
#include <gtest/gtest.h>

#include <cmath>

#include "ferfet/ferfet_device.hpp"

namespace cim::ferfet {
namespace {

class VtShiftSweep : public ::testing::TestWithParam<double> {};

TEST_P(VtShiftSweep, MemoryWindowTracksShift) {
  FeRfetParams p;
  p.fe_vt_shift = GetParam();
  const FeRfet lrs(p, Polarity::kNType, VtState::kLrs);
  const FeRfet hrs(p, Polarity::kNType, VtState::kHrs);
  EXPECT_NEAR(hrs.effective_vt() - lrs.effective_vt(), GetParam(), 1e-12);
  // The LRS/HRS current ratio at the mid-gap bias grows with the shift.
  const double v_mid = 0.5 * (p.vdd + p.fe_vt_shift);
  const double ratio = lrs.drain_current_ua(v_mid, p.vdd) /
                       std::max(1e-12, hrs.drain_current_ua(v_mid, p.vdd));
  EXPECT_GT(ratio, 10.0);
}

TEST_P(VtShiftSweep, BoostAlwaysOvercomesHrs) {
  FeRfetParams p;
  p.fe_vt_shift = GetParam();
  p.v_boost = p.vdd + GetParam() + 0.6;  // boosted read level
  const FeRfet hrs(p, Polarity::kNType, VtState::kHrs);
  EXPECT_FALSE(hrs.conducts(p.vdd));
  EXPECT_TRUE(hrs.conducts(p.v_boost));
}

// Shifts below ~vdd - vt_n (0.6 V) leave the HRS branch conducting at the
// operating point — the design constraint the defaults respect; the sweep
// covers the usable region.
INSTANTIATE_TEST_SUITE_P(Shifts, VtShiftSweep,
                         ::testing::Values(0.8, 1.0, 1.4));

class ProgramVoltageSweep : public ::testing::TestWithParam<double> {};

TEST_P(ProgramVoltageSweep, ProgrammingThresholdRespected) {
  FeRfetParams p;
  p.v_program = GetParam();
  FeRfet dev(p);
  EXPECT_FALSE(dev.program_vt(-(GetParam() - 0.1)));
  EXPECT_EQ(dev.vt_state(), VtState::kLrs);
  EXPECT_TRUE(dev.program_vt(-GetParam()));
  EXPECT_EQ(dev.vt_state(), VtState::kHrs);
}

INSTANTIATE_TEST_SUITE_P(Voltages, ProgramVoltageSweep,
                         ::testing::Values(2.0, 2.5, 3.0));

TEST(FeRfetSweep, SwingShapesSubthresholdSlope) {
  FeRfetParams steep;
  steep.swing_mv_dec = 60.0;
  FeRfetParams shallow;
  shallow.swing_mv_dec = 120.0;
  const FeRfet a(steep), b(shallow);
  // Just below threshold the steeper device is further off.
  const double v = steep.vt_n - 0.2;
  EXPECT_LT(a.drain_current_ua(v, 1.0), b.drain_current_ua(v, 1.0));
}

}  // namespace
}  // namespace cim::ferfet
