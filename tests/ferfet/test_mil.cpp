#include "ferfet/mil_cells.hpp"

#include <gtest/gtest.h>

namespace cim::ferfet {
namespace {

class XorXnorTruth : public ::testing::TestWithParam<std::pair<bool, bool>> {};

TEST_P(XorXnorTruth, XnorModeComputesXnor) {
  const auto [a, b] = GetParam();
  XorXnorCell cell({}, MilFunction::kXnor);
  EXPECT_EQ(cell.eval(a, b), a == b);
}

TEST_P(XorXnorTruth, XorModeComputesXor) {
  const auto [a, b] = GetParam();
  XorXnorCell cell({}, MilFunction::kXor);
  EXPECT_EQ(cell.eval(a, b), a != b);
}

INSTANTIATE_TEST_SUITE_P(AllInputs, XorXnorTruth,
                         ::testing::Values(std::pair{false, false},
                                           std::pair{false, true},
                                           std::pair{true, false},
                                           std::pair{true, true}));

TEST(XorXnorCell, ReprogrammingSwitchesFunction) {
  XorXnorCell cell({}, MilFunction::kXnor);
  EXPECT_TRUE(cell.eval(true, true));   // XNOR(1,1)=1
  cell.program(MilFunction::kXor);
  EXPECT_FALSE(cell.eval(true, true));  // XOR(1,1)=0
  cell.program(MilFunction::kXnor);
  EXPECT_TRUE(cell.eval(true, true));
}

TEST(XorXnorCell, ProgrammingIsNonVolatileAcrossEvaluations) {
  XorXnorCell cell({}, MilFunction::kXor);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(cell.eval(true, false), true);
    EXPECT_EQ(cell.eval(false, false), false);
  }
  EXPECT_EQ(cell.function(), MilFunction::kXor);
}

TEST(XorXnorCell, StatsTrackEvaluationsAndReprograms) {
  XorXnorCell cell;
  (void)cell.eval(false, true);
  (void)cell.eval(true, true);
  cell.program(MilFunction::kXor);
  EXPECT_EQ(cell.stats().evaluations, 2u);
  EXPECT_EQ(cell.stats().reprograms, 1u);
  EXPECT_GT(cell.stats().energy_pj, 0.0);
  EXPECT_GT(cell.stats().time_ns, 0.0);
}

TEST(XorXnorCell, ProgramEnergyExceedsEvalEnergy) {
  // Programming drives the Fe layer at 2-3x vdd; switching is far cheaper.
  XorXnorCell a, b;
  (void)a.eval(true, false);
  const double eval_energy = a.stats().energy_pj;
  b.program(MilFunction::kXor);
  const double prog_energy = b.stats().energy_pj;
  EXPECT_GT(prog_energy, eval_energy);
}

TEST(XorXnorCell, FourTransistors) {
  EXPECT_EQ(XorXnorCell::transistor_count(), 4u);
}

}  // namespace
}  // namespace cim::ferfet
