#include "ferfet/bnn_engine.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace cim::ferfet {
namespace {

TEST(BnnEngine, MatchesSignDotProduct) {
  util::Matrix w = {{1.0, -1.0, 1.0}, {-1.0, -1.0, -1.0}};
  FerfetBnnEngine engine(w);
  const std::vector<bool> x = {true, false, true};  // +1, -1, +1
  const auto y = engine.forward(x);
  // Row 0: (+1)(+1) + (-1)(-1) + (+1)(+1) = 3.
  EXPECT_EQ(y[0], 3);
  // Row 1: -1 + 1 - 1 = -1.
  EXPECT_EQ(y[1], -1);
}

TEST(BnnEngine, AgreesWithSoftwareXnorPopcount) {
  util::Rng rng(3);
  util::Matrix w(8, 32);
  for (auto& v : w.flat()) v = rng.normal(0.0, 1.0);
  FerfetBnnEngine engine(w);

  for (int t = 0; t < 20; ++t) {
    std::vector<bool> x(32);
    for (std::size_t i = 0; i < 32; ++i) x[i] = rng.bernoulli(0.5);
    const auto y = engine.forward(x);
    for (std::size_t o = 0; o < 8; ++o) {
      int ref = 0;
      for (std::size_t i = 0; i < 32; ++i) {
        const int wi = w(o, i) >= 0 ? 1 : -1;
        const int xi = x[i] ? 1 : -1;
        ref += wi * xi;
      }
      EXPECT_EQ(y[o], ref) << "output " << o;
    }
  }
}

TEST(BnnEngine, Dimensions) {
  util::Matrix w(4, 16, 1.0);
  FerfetBnnEngine engine(w);
  EXPECT_EQ(engine.in_dim(), 16u);
  EXPECT_EQ(engine.out_dim(), 4u);
  EXPECT_EQ(engine.array().rows(), 32u);  // 2 rows per weight bit
  EXPECT_EQ(engine.array().cols(), 4u);
}

TEST(BnnEngine, InferenceCostsAreTracked) {
  util::Matrix w(4, 8, 1.0);
  FerfetBnnEngine engine(w);
  EXPECT_EQ(engine.costs().sensing_steps, 0u);  // programming excluded
  std::vector<bool> x(8, true);
  (void)engine.forward(x);
  const auto c = engine.costs();
  EXPECT_EQ(c.sensing_steps, 4u);  // one integrating sense per column
  EXPECT_GT(c.energy_pj, 0.0);
  EXPECT_GT(c.time_ns, 0.0);
  engine.reset_costs();
  EXPECT_EQ(engine.costs().sensing_steps, 0u);
}

TEST(BnnEngine, DigitalCostBeatsAnalogAdcPath) {
  // Section V.D: FeRFETs compute in the digital domain "without the need of
  // an extensive peripheral circuits" — per-output energy is far below one
  // 8-bit ADC conversion (~1.5 pJ).
  util::Matrix w(8, 64, 1.0);
  FerfetBnnEngine engine(w);
  std::vector<bool> x(64, true);
  (void)engine.forward(x);
  const double per_output = engine.costs().energy_pj / 8.0;
  EXPECT_LT(per_output, 1.5);
}

TEST(BnnEngine, DimMismatchThrows) {
  util::Matrix w(2, 4, 1.0);
  FerfetBnnEngine engine(w);
  std::vector<bool> bad(3, true);
  EXPECT_THROW((void)engine.forward(bad), std::invalid_argument);
}

TEST(BnnEngine, EmptyWeightsThrow) {
  util::Matrix w;
  EXPECT_THROW(FerfetBnnEngine{w}, std::invalid_argument);
}

}  // namespace
}  // namespace cim::ferfet
