#include "ferfet/lim_array.hpp"

#include <gtest/gtest.h>

namespace cim::ferfet {
namespace {

class AndCellTruth : public ::testing::TestWithParam<std::pair<bool, bool>> {};

TEST_P(AndCellTruth, Fig12aComputesOrAndNor) {
  const auto [a, b] = GetParam();
  AndArrayCell cell;
  cell.store(a);
  EXPECT_EQ(cell.read_or(b), a || b);
  EXPECT_EQ(cell.read_nor(b), !(a || b));
}

INSTANTIATE_TEST_SUITE_P(AllInputs, AndCellTruth,
                         ::testing::Values(std::pair{false, false},
                                           std::pair{false, true},
                                           std::pair{true, false},
                                           std::pair{true, true}));

TEST(AndArrayCell, StoredStateIsNonVolatile) {
  AndArrayCell cell;
  cell.store(true);
  for (int i = 0; i < 50; ++i) (void)cell.read_or(false);
  EXPECT_TRUE(cell.stored());
  EXPECT_TRUE(cell.read_or(false));  // A=1 still read back
}

TEST(NorArray, StoreAndRecall) {
  NorArray arr(4, 4);
  arr.store(1, 2, true);
  arr.store(3, 0, false);
  EXPECT_TRUE(arr.stored(1, 2));
  EXPECT_FALSE(arr.stored(3, 0));
  EXPECT_FALSE(arr.stored(0, 0));
}

class WiredAndTruth
    : public ::testing::TestWithParam<std::tuple<bool, bool, bool>> {};

TEST_P(WiredAndTruth, CellConductsOnlyWhenAllGatesAssert) {
  const auto [s, x, sel] = GetParam();
  NorArray arr(2, 2);
  arr.store(0, 0, s);
  EXPECT_EQ(arr.cell_conducts(0, 0, x, sel), s && x && sel);
}

INSTANTIATE_TEST_SUITE_P(
    AllInputs, WiredAndTruth,
    ::testing::Combine(::testing::Bool(), ::testing::Bool(), ::testing::Bool()));

TEST(NorArray, AoiComputesAndOrInvert) {
  NorArray arr(3, 2);
  arr.store(0, 0, true);
  arr.store(1, 0, true);
  arr.store(2, 0, false);
  // Column 0: !(S0&x0 | S1&x1 | S2&x2)
  std::vector<bool> sel(3, true);
  EXPECT_FALSE(arr.read_aoi(0, {true, false, true}, sel));   // S0&x0 fires
  EXPECT_TRUE(arr.read_aoi(0, {false, false, true}, sel));   // S2 is 0
  EXPECT_FALSE(arr.read_aoi(0, {false, true, false}, sel));  // S1&x1 fires
}

TEST(NorArray, SelectMasksRows) {
  NorArray arr(2, 1);
  arr.store(0, 0, true);
  arr.store(1, 0, true);
  EXPECT_TRUE(arr.read_aoi(0, {true, true}, {false, false}));  // all deselected
}

class XnorPairTruth : public ::testing::TestWithParam<std::pair<bool, bool>> {};

TEST_P(XnorPairTruth, DynamicXnorMatchesLogic) {
  const auto [w, x] = GetParam();
  NorArray arr(2, 1);
  arr.store(0, 0, w);
  arr.store(1, 0, !w);
  EXPECT_EQ(arr.read_xnor(0, 0, x), w == x);
}

INSTANTIATE_TEST_SUITE_P(AllInputs, XnorPairTruth,
                         ::testing::Values(std::pair{false, false},
                                           std::pair{false, true},
                                           std::pair{true, false},
                                           std::pair{true, true}));

TEST(NorArray, MatchCountCountsXnors) {
  NorArray arr(8, 1);  // 4 weight pairs
  const bool w[4] = {true, false, true, true};
  for (std::size_t k = 0; k < 4; ++k) {
    arr.store(2 * k, 0, w[k]);
    arr.store(2 * k + 1, 0, !w[k]);
  }
  const std::vector<bool> x = {true, true, false, true};
  // Matches: w0==x0 (1), w1!=x1 (0), w2!=x2 (0), w3==x3 (1) -> 2.
  EXPECT_EQ(arr.read_match_count(0, x), 2u);
}

TEST(NorArray, Validation) {
  EXPECT_THROW(NorArray(0, 2), std::invalid_argument);
  NorArray arr(4, 4);
  EXPECT_THROW(arr.store(4, 0, true), std::out_of_range);
  EXPECT_THROW((void)arr.read_xnor(2, 0, true), std::out_of_range);
  std::vector<bool> wrong(3, true);
  EXPECT_THROW((void)arr.read_aoi(0, wrong, wrong), std::invalid_argument);
  EXPECT_THROW((void)arr.read_match_count(0, wrong), std::invalid_argument);
}

class HalfAdderTruth : public ::testing::TestWithParam<std::pair<bool, bool>> {};

TEST_P(HalfAdderTruth, InArrayHalfAdder) {
  const auto [a, b] = GetParam();
  NorArray arr(4, 4);
  const auto res = in_array_half_adder(arr, a, b);
  EXPECT_EQ(res.sum, a != b);
  EXPECT_EQ(res.carry, a && b);
  EXPECT_GT(res.steps, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllInputs, HalfAdderTruth,
                         ::testing::Values(std::pair{false, false},
                                           std::pair{false, true},
                                           std::pair{true, false},
                                           std::pair{true, true}));

class FullAdderTruth
    : public ::testing::TestWithParam<std::tuple<bool, bool, bool>> {};

TEST_P(FullAdderTruth, InArrayFullAdder) {
  const auto [a, b, cin] = GetParam();
  NorArray arr(4, 4);
  const auto res = in_array_full_adder(arr, a, b, cin);
  const int total = int(a) + int(b) + int(cin);
  EXPECT_EQ(res.sum, (total & 1) != 0);
  EXPECT_EQ(res.carry, total >= 2);
}

INSTANTIATE_TEST_SUITE_P(
    AllInputs, FullAdderTruth,
    ::testing::Combine(::testing::Bool(), ::testing::Bool(), ::testing::Bool()));

TEST(NorArray, StatsAccumulate) {
  NorArray arr(2, 2);
  arr.store(0, 0, true);
  (void)arr.read_xnor(0, 0, true);
  EXPECT_EQ(arr.stats().stores, 1u);
  EXPECT_EQ(arr.stats().reads, 1u);
  EXPECT_GT(arr.stats().energy_pj, 0.0);
}

}  // namespace
}  // namespace cim::ferfet
