#include "ferfet/nv_logic.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace cim::ferfet {
namespace {

TEST(FerfetLut, ProgramsAndEvaluatesExhaustively) {
  const auto tt = eda::TruthTable::from_binary_string("10010110");
  FerfetLut lut(3);
  lut.program(tt);
  for (std::uint64_t m = 0; m < 8; ++m) EXPECT_EQ(lut.eval(m), tt.get(m));
  EXPECT_TRUE(lut.stored() == tt);
}

TEST(FerfetLut, ReprogrammingReplacesFunction) {
  FerfetLut lut(2);
  lut.program(eda::TruthTable::from_binary_string("0110"));  // XOR
  EXPECT_TRUE(lut.eval(1));
  lut.program(eda::TruthTable::from_binary_string("1000"));  // AND
  EXPECT_FALSE(lut.eval(1));
  EXPECT_TRUE(lut.eval(3));
  EXPECT_EQ(lut.programs(), 2u);
}

TEST(FerfetLut, RandomFunctionsRoundTrip) {
  util::Rng rng(7);
  for (int t = 0; t < 10; ++t) {
    eda::TruthTable tt(4);
    for (std::uint64_t m = 0; m < 16; ++m)
      if (rng.bernoulli(0.5)) tt.set(m, true);
    FerfetLut lut(4);
    lut.program(tt);
    EXPECT_TRUE(lut.stored() == tt);
  }
}

TEST(FerfetLut, Validation) {
  EXPECT_THROW(FerfetLut(0), std::invalid_argument);
  EXPECT_THROW(FerfetLut(7), std::invalid_argument);
  FerfetLut lut(2);
  EXPECT_THROW(lut.program(eda::TruthTable::constant(false, 3)),
               std::invalid_argument);
  EXPECT_THROW((void)lut.eval(4), std::out_of_range);
}

TEST(FerfetLut, CostAccounting) {
  FerfetLut lut(3);
  lut.program(eda::TruthTable::constant(true, 3));
  const double e_prog = lut.energy_pj();
  (void)lut.eval(0);
  EXPECT_GT(lut.energy_pj(), e_prog);
  EXPECT_EQ(lut.evals(), 1u);
}

TEST(NvFlipFlop, ClockedOperation) {
  NvFlipFlop ff;
  ff.clock(true);
  EXPECT_TRUE(ff.q());
  ff.clock(false);
  EXPECT_FALSE(ff.q());
}

TEST(NvFlipFlop, CheckpointSurvivesPowerCycle) {
  for (const bool state : {false, true}) {
    NvFlipFlop ff;
    ff.clock(state);
    ff.checkpoint();
    ff.power_cycle();
    EXPECT_FALSE(ff.valid());
    EXPECT_THROW((void)ff.q(), std::logic_error);
    ff.restore();
    EXPECT_TRUE(ff.valid());
    EXPECT_EQ(ff.q(), state);  // the Fe shadow brought the state back
  }
}

TEST(NvFlipFlop, UncheckpointedStateIsLost) {
  NvFlipFlop ff;
  ff.clock(false);
  ff.checkpoint();   // shadow = 0
  ff.clock(true);    // volatile update, no checkpoint
  ff.power_cycle();
  ff.restore();
  EXPECT_FALSE(ff.q());  // only the checkpointed state survived
}

TEST(NvFlipFlop, CheckpointRequiresValidLatch) {
  NvFlipFlop ff;
  ff.power_cycle();
  EXPECT_THROW(ff.checkpoint(), std::logic_error);
}

TEST(NvFlipFlop, EnergyTracksCheckpointCost) {
  NvFlipFlop a, b;
  a.clock(true);
  b.clock(true);
  b.checkpoint();
  EXPECT_GT(b.energy_pj(), a.energy_pj());
}

}  // namespace
}  // namespace cim::ferfet
