#include "ferfet/ferfet_device.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace cim::ferfet {
namespace {

TEST(FeRfet, DefaultStateIsNTypeLrs) {
  FeRfet dev;
  EXPECT_EQ(dev.polarity(), Polarity::kNType);
  EXPECT_EQ(dev.vt_state(), VtState::kLrs);
}

TEST(FeRfet, ProgrammingRequiresHighVoltage) {
  // "the voltage for programming has to be two to three times larger than
  // the typical operation voltage" (Section V.A).
  FeRfet dev;
  EXPECT_FALSE(dev.program_polarity(-1.0));  // vdd-level: no switch
  EXPECT_EQ(dev.polarity(), Polarity::kNType);
  EXPECT_TRUE(dev.program_polarity(-2.5));
  EXPECT_EQ(dev.polarity(), Polarity::kPType);
}

TEST(FeRfet, PolarityProgrammingIsNonVolatileAndIdempotent) {
  FeRfet dev;
  dev.program_polarity(-3.0);
  EXPECT_FALSE(dev.program_polarity(-3.0));  // already p-type
  EXPECT_EQ(dev.polarity(), Polarity::kPType);
}

TEST(FeRfet, VtProgramming) {
  FeRfet dev;
  EXPECT_TRUE(dev.program_vt(-2.5));
  EXPECT_EQ(dev.vt_state(), VtState::kHrs);
  EXPECT_TRUE(dev.program_vt(2.5));
  EXPECT_EQ(dev.vt_state(), VtState::kLrs);
}

TEST(FeRfet, FourStatesHaveDistinctThresholds) {
  const FeRfetParams p;
  const double vts[] = {
      FeRfet(p, Polarity::kNType, VtState::kLrs).effective_vt(),
      FeRfet(p, Polarity::kNType, VtState::kHrs).effective_vt(),
      FeRfet(p, Polarity::kPType, VtState::kLrs).effective_vt(),
      FeRfet(p, Polarity::kPType, VtState::kHrs).effective_vt()};
  for (int i = 0; i < 4; ++i)
    for (int j = i + 1; j < 4; ++j) EXPECT_NE(vts[i], vts[j]);
}

TEST(FeRfet, NTypeLrsConductsAtVdd) {
  FeRfet dev;
  EXPECT_TRUE(dev.conducts(dev.params().vdd));
  EXPECT_FALSE(dev.conducts(0.0));
}

TEST(FeRfet, NTypeHrsIsOffAtVddButOnWhenBoosted) {
  FeRfet dev({}, Polarity::kNType, VtState::kHrs);
  EXPECT_FALSE(dev.conducts(dev.params().vdd));
  EXPECT_TRUE(dev.conducts(dev.params().v_boost));
}

TEST(FeRfet, PTypeConductsForNegativeGate) {
  FeRfet dev({}, Polarity::kPType, VtState::kLrs);
  EXPECT_TRUE(dev.conducts(-dev.params().vdd));
  EXPECT_FALSE(dev.conducts(dev.params().vdd));
}

TEST(FeRfet, ConductsAtGateRespectsSourceRails) {
  // Circuit-level view: p-type with source at VDD conducts when the gate is
  // at ground, n-type when the gate is at VDD.
  FeRfet n({}, Polarity::kNType, VtState::kLrs);
  FeRfet p({}, Polarity::kPType, VtState::kLrs);
  EXPECT_TRUE(n.conducts_at_gate(1.0));
  EXPECT_FALSE(n.conducts_at_gate(0.0));
  EXPECT_TRUE(p.conducts_at_gate(0.0));
  EXPECT_FALSE(p.conducts_at_gate(1.0));
}

TEST(FeRfet, Fig10FourBranchesAreSeparated) {
  // Sweep Vgs like Fig. 10(b): each state's transfer curve is distinct and
  // the on/off ratio exceeds 10^2.
  const FeRfetParams p;
  const FeRfet n_lrs(p, Polarity::kNType, VtState::kLrs);
  const FeRfet n_hrs(p, Polarity::kNType, VtState::kHrs);
  const FeRfet p_lrs(p, Polarity::kPType, VtState::kLrs);
  const FeRfet p_hrs(p, Polarity::kPType, VtState::kHrs);

  const double i_on_n = n_lrs.drain_current_ua(p.vdd, p.vdd);
  const double i_off_n = n_lrs.drain_current_ua(-p.vdd, p.vdd);
  EXPECT_GT(i_on_n / std::max(1e-9, i_off_n), 100.0);

  // At Vgs = vdd: LRS conducts far more than HRS (the memory window).
  EXPECT_GT(n_lrs.drain_current_ua(p.vdd, p.vdd),
            10.0 * n_hrs.drain_current_ua(p.vdd, p.vdd));
  // p branches mirror: conduct at negative Vgs.
  EXPECT_GT(std::abs(p_lrs.drain_current_ua(-p.vdd, p.vdd)),
            10.0 * std::abs(p_hrs.drain_current_ua(-p.vdd, p.vdd)));
}

TEST(FeRfet, DrainCurrentSignFollowsVds) {
  FeRfet dev;
  EXPECT_GT(dev.drain_current_ua(1.0, 1.0), 0.0);
  EXPECT_LT(dev.drain_current_ua(1.0, -1.0), 0.0);
}

TEST(FeRfet, CurrentMonotoneInOverdrive) {
  FeRfet dev;
  double prev = -1.0;
  for (double v = -1.0; v <= 2.0; v += 0.1) {
    const double i = dev.drain_current_ua(v, dev.params().vdd);
    EXPECT_GE(i, prev);
    prev = i;
  }
}

TEST(FeRfet, NamesAreHuman) {
  EXPECT_EQ(polarity_name(Polarity::kNType), "n-type");
  EXPECT_EQ(vt_state_name(VtState::kHrs), "HRS");
}

}  // namespace
}  // namespace cim::ferfet
